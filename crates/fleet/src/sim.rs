//! The end-to-end fleet soak: coordinator + PoPs + lossy channel +
//! seeded storm, ticked in lockstep virtual time, with a packet-exact
//! conservation ledger, per-tick fencing checks, and a post-storm
//! packet-level validation of every surviving PoP through the real
//! dataplane under its own supervisor.
//!
//! Everything — channel fates, storm windows, crash truncation, traffic —
//! draws from seeded generators, so a run is a pure function of
//! `(spec, config)` and must reproduce bit-identically regardless of
//! `LEMUR_WORKERS` (the placer's parallelism is internally
//! deterministic). [`FleetReport`] implements `PartialEq` precisely so
//! soaks can assert that.

use lemur_control::chaos::{fleet_storm, FleetChaosConfig};
use lemur_control::{Supervisor, SupervisorConfig};
use lemur_core::chains::{canonical_chain, CanonicalChain};
use lemur_core::graph::ChainSpec;
use lemur_core::Slo;
use lemur_dataplane::{FaultPlan, SimConfig, Testbed, TrafficSpec};
use lemur_nf::NfKind;
use lemur_placer::hierarchy::assign_chains;
use lemur_placer::oracle::StageOracle;
use lemur_placer::parallel::Workers;
use lemur_placer::profiles::NfProfiles;
use lemur_placer::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::channel::{ChannelConfig, LossyChannel};
use crate::coordinator::{FleetConfig, FleetCoordinator};
use crate::msg::{Endpoint, Envelope, OverloadLevel};
use crate::pop::PopRuntime;

/// The workload: a chain catalog spread over a PoP fleet.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    pub chains: Vec<ChainSpec>,
    /// Traffic specs aligned with `chains` (drive validation runs).
    pub traffic: Vec<TrafficSpec>,
    /// Global indices of chains with migratable NF state.
    pub stateful: Vec<usize>,
    pub topologies: Vec<Topology>,
}

impl FleetSpec {
    /// The canonical soak workload: two chains per PoP cycling the Table 2
    /// catalog, 1 Gbps `t_min` each, distinct priorities (higher index =
    /// lower priority = shed first), two servers per rack. Chains whose
    /// graph contains a NAT are stateful.
    pub fn canonical(n_pops: usize) -> FleetSpec {
        let n_chains = n_pops * 2;
        let mut chains = Vec::new();
        let mut traffic = Vec::new();
        let mut stateful = Vec::new();
        for i in 0..n_chains {
            let which = [
                CanonicalChain::Chain2,
                CanonicalChain::Chain3,
                CanonicalChain::Chain1,
            ][i % 3];
            let graph = canonical_chain(which);
            if graph.nodes().any(|(_, n)| n.kind == NfKind::Nat) {
                stateful.push(i);
            }
            let spec = TrafficSpec::for_chain(i + 1, 1e9).expect("chain index in range");
            chains.push(ChainSpec {
                name: format!("fleet{i}"),
                aggregate: Some(spec.aggregate()),
                graph,
                slo: Some(Slo::elastic_pipe(1e9, 100e9).with_priority((n_chains - i) as u8)),
            });
            traffic.push(spec);
        }
        FleetSpec {
            chains,
            traffic,
            stateful,
            topologies: vec![Topology::with_servers(2); n_pops],
        }
    }

    pub fn n_pops(&self) -> usize {
        self.topologies.len()
    }
}

/// Soak parameters. `chaos` must target `topologies.len()` PoPs.
#[derive(Debug, Clone)]
pub struct FleetSimConfig {
    pub seed: u64,
    pub duration_ns: u64,
    pub tick_ns: u64,
    /// Synthetic packets per chain per tick.
    pub packets_per_tick: u32,
    /// PoP status-report period.
    pub report_every_ns: u64,
    pub channel: ChannelConfig,
    pub fleet: FleetConfig,
    pub chaos: FleetChaosConfig,
    pub workers: Workers,
    /// Run post-storm packet-level validation sims per surviving PoP.
    pub validate: bool,
    /// Virtual duration of each validation sim.
    pub validation_s: f64,
    /// Overload storm: `(victim PoP, start_ns, end_ns)`. Inside the
    /// window the victim's local ladder reports `Shedding` on every
    /// status; everyone else reports `Calm`. `None` leaves all PoPs calm
    /// (and keeps pre-overload soak reports bit-identical).
    pub overload_storm: Option<(usize, u64, u64)>,
}

impl FleetSimConfig {
    /// The standard 12 ms soak against [`FleetChaosConfig::soak`] weather.
    pub fn soak(seed: u64, n_pops: usize) -> FleetSimConfig {
        FleetSimConfig {
            seed,
            duration_ns: 12_000_000,
            tick_ns: 50_000,
            packets_per_tick: 4,
            report_every_ns: 250_000,
            channel: ChannelConfig {
                seed,
                ..ChannelConfig::default()
            },
            fleet: FleetConfig {
                seed,
                ..FleetConfig::default()
            },
            chaos: FleetChaosConfig::soak(seed, n_pops),
            workers: Workers::new(1),
            validate: true,
            validation_s: 0.012,
            overload_storm: None,
        }
    }
}

/// One surviving PoP's post-storm validation through the real dataplane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopValidation {
    pub pop: usize,
    /// Global chain indices validated there.
    pub chains: Vec<usize>,
    /// Whether the subproblem compiled + built at all.
    pub ran: bool,
    /// Supervisor ended Converged/GracefulDegraded.
    pub settled: bool,
    /// The dataplane's packet ledger balanced exactly.
    pub balanced: bool,
    pub commits: usize,
}

impl Serialize for PopValidation {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("pop".to_string(), self.pop.to_value()),
            ("chains".to_string(), self.chains.to_value()),
            ("ran".to_string(), self.ran.to_value()),
            ("settled".to_string(), self.settled.to_value()),
            ("balanced".to_string(), self.balanced.to_value()),
            ("commits".to_string(), self.commits.to_value()),
        ])
    }
}

/// Everything a soak measures. Integer-only (plus short strings), so
/// equality is exact and worker-count reproducibility is a `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    pub seed: u64,
    // Fleet-level packet ledger.
    pub generated: u64,
    pub forwarded: u64,
    pub nf_dropped: u64,
    pub dropped_unowned: u64,
    pub conservation_ok: bool,
    // Channel copy ledger.
    pub channel_sent: u64,
    pub channel_duplicated: u64,
    pub channel_delivered: u64,
    pub channel_dropped: u64,
    pub channel_in_flight: u64,
    pub channel_conserved: bool,
    /// Ticks on which ≥2 PoPs were simultaneously live for one chain.
    pub fencing_events: u64,
    // Storm + control-plane counters.
    pub blackout_victim: Option<usize>,
    pub coordinator_recoveries: u64,
    pub drains: u64,
    pub failovers: u64,
    pub state_failovers: u64,
    pub sheds: u64,
    pub welcomes: u64,
    pub regrants: u64,
    pub adopted: u64,
    pub gave_up: u64,
    /// Chains the coordinator moved off a PoP reporting sustained
    /// overload, before its ladder had to shed them.
    pub overload_rebalances: u64,
    /// Displaced chains sent home after their origin PoP calmed down.
    pub overload_restores: u64,
    pub state_restores: u64,
    pub fresh_starts: u64,
    pub duplicate_replays: u64,
    // Final fleet state.
    pub shed_chains: Vec<usize>,
    /// (chain, home PoP, token), ascending by chain.
    pub final_owners: Vec<(usize, usize, u64)>,
    pub pop_health: Vec<String>,
    /// Every non-shed chain live at exactly one PoP, at its journaled home.
    pub settled: bool,
    /// Coordinator + every PoP journal replays to the live state.
    pub wal_consistent: bool,
    pub validations: Vec<PopValidation>,
}

impl FleetReport {
    /// The soak's four hard invariants in one verdict.
    pub fn invariants_hold(&self) -> bool {
        self.conservation_ok
            && self.channel_conserved
            && self.fencing_events == 0
            && self.settled
            && self.wal_consistent
            && self
                .validations
                .iter()
                .all(|v| v.ran && v.settled && v.balanced)
    }
}

impl Serialize for FleetReport {
    fn to_value(&self) -> serde::Value {
        let owners: Vec<serde::Value> = self
            .final_owners
            .iter()
            .map(|&(chain, pop, token)| {
                serde::Value::Object(vec![
                    ("chain".to_string(), chain.to_value()),
                    ("pop".to_string(), pop.to_value()),
                    ("token".to_string(), token.to_value()),
                ])
            })
            .collect();
        serde::Value::Object(vec![
            ("seed".to_string(), self.seed.to_value()),
            ("generated".to_string(), self.generated.to_value()),
            ("forwarded".to_string(), self.forwarded.to_value()),
            ("nf_dropped".to_string(), self.nf_dropped.to_value()),
            (
                "dropped_unowned".to_string(),
                self.dropped_unowned.to_value(),
            ),
            (
                "conservation_ok".to_string(),
                self.conservation_ok.to_value(),
            ),
            ("channel_sent".to_string(), self.channel_sent.to_value()),
            (
                "channel_duplicated".to_string(),
                self.channel_duplicated.to_value(),
            ),
            (
                "channel_delivered".to_string(),
                self.channel_delivered.to_value(),
            ),
            (
                "channel_dropped".to_string(),
                self.channel_dropped.to_value(),
            ),
            (
                "channel_in_flight".to_string(),
                self.channel_in_flight.to_value(),
            ),
            (
                "channel_conserved".to_string(),
                self.channel_conserved.to_value(),
            ),
            ("fencing_events".to_string(), self.fencing_events.to_value()),
            (
                "blackout_victim".to_string(),
                self.blackout_victim.to_value(),
            ),
            (
                "coordinator_recoveries".to_string(),
                self.coordinator_recoveries.to_value(),
            ),
            ("drains".to_string(), self.drains.to_value()),
            ("failovers".to_string(), self.failovers.to_value()),
            (
                "state_failovers".to_string(),
                self.state_failovers.to_value(),
            ),
            ("sheds".to_string(), self.sheds.to_value()),
            ("welcomes".to_string(), self.welcomes.to_value()),
            ("regrants".to_string(), self.regrants.to_value()),
            ("adopted".to_string(), self.adopted.to_value()),
            ("gave_up".to_string(), self.gave_up.to_value()),
            (
                "overload_rebalances".to_string(),
                self.overload_rebalances.to_value(),
            ),
            (
                "overload_restores".to_string(),
                self.overload_restores.to_value(),
            ),
            ("state_restores".to_string(), self.state_restores.to_value()),
            ("fresh_starts".to_string(), self.fresh_starts.to_value()),
            (
                "duplicate_replays".to_string(),
                self.duplicate_replays.to_value(),
            ),
            ("shed_chains".to_string(), self.shed_chains.to_value()),
            ("final_owners".to_string(), serde::Value::Array(owners)),
            ("pop_health".to_string(), self.pop_health.to_value()),
            ("settled".to_string(), self.settled.to_value()),
            ("wal_consistent".to_string(), self.wal_consistent.to_value()),
            (
                "validations".to_string(),
                serde::Value::Array(self.validations.iter().map(|v| v.to_value()).collect()),
            ),
            (
                "invariants_hold".to_string(),
                self.invariants_hold().to_value(),
            ),
        ])
    }
}

/// The soak driver. Construct, then [`FleetSim::run`].
pub struct FleetSim {
    spec: FleetSpec,
    cfg: FleetSimConfig,
}

impl FleetSim {
    pub fn new(spec: FleetSpec, cfg: FleetSimConfig) -> FleetSim {
        assert_eq!(
            cfg.chaos.n_pops,
            spec.n_pops(),
            "storm must target the fleet's PoPs"
        );
        FleetSim { spec, cfg }
    }

    /// Run the whole soak. Deterministic in `(spec, cfg)`.
    pub fn run(&self, oracle: &dyn StageOracle) -> FleetReport {
        let spec = &self.spec;
        let cfg = &self.cfg;
        let n_pops = spec.n_pops();
        let n_chains = spec.chains.len();

        let storm = fleet_storm(&cfg.chaos);
        let blackout_victim = storm.blackout_victim();
        let crashes = storm.coordinator_crashes();
        let mut channel = LossyChannel::new(cfg.channel, storm.channel_faults());
        let mut coordinator = FleetCoordinator::new(
            cfg.fleet,
            spec.chains.clone(),
            spec.stateful.clone(),
            spec.topologies.clone(),
            NfProfiles::table4(),
            cfg.workers,
        );
        let mut pops: Vec<PopRuntime> = (0..n_pops)
            .map(|site| PopRuntime::new(site, &spec.stateful, cfg.report_every_ns))
            .collect();
        // Torn-tail sizes for coordinator crashes, drawn up-front so the
        // storm schedule and crash damage are one seeded stream.
        let mut crash_rng = StdRng::seed_from_u64(cfg.seed ^ 0x70a5_7c4a_53d0_0000u64);

        for env in coordinator.boot(0, oracle) {
            channel.send(0, env);
        }

        let mut generated = 0u64;
        let mut forwarded = 0u64;
        let mut nf_dropped = 0u64;
        let mut dropped_unowned = 0u64;
        let mut fencing_events = 0u64;
        let mut recoveries = 0u64;
        // Coordinator stats survive crashes only if we accumulate them.
        let mut lost_stats = crate::coordinator::CoordStats::default();

        let mut next_crash = 0usize;
        let ticks = cfg.duration_ns / cfg.tick_ns;
        for t in 0..=ticks {
            let now = t * cfg.tick_ns;

            while next_crash < crashes.len() && crashes[next_crash] <= now {
                next_crash += 1;
                let image = coordinator.durable_image().to_vec();
                let cut = (crash_rng.gen_range(0u64..24) as usize).min(image.len());
                accumulate(&mut lost_stats, &coordinator.stats);
                coordinator = FleetCoordinator::recover(
                    cfg.fleet,
                    spec.chains.clone(),
                    spec.stateful.clone(),
                    spec.topologies.clone(),
                    NfProfiles::table4(),
                    cfg.workers,
                    &image[..image.len() - cut],
                    now,
                );
                recoveries += 1;
            }

            let mut coord_inbox = Vec::new();
            let mut pop_inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); n_pops];
            for env in channel.poll(now) {
                match env.to {
                    Endpoint::Coordinator => coord_inbox.push(env),
                    Endpoint::Pop(i) if i < n_pops => pop_inboxes[i].push(env),
                    Endpoint::Pop(_) => {}
                }
            }

            for env in coordinator.tick(now, coord_inbox, oracle) {
                channel.send(now, env);
            }
            // Drive each PoP's self-reported ladder level from the
            // configured overload storm before its status can fire.
            if let Some((victim, from_ns, until_ns)) = cfg.overload_storm {
                for (i, pop) in pops.iter_mut().enumerate() {
                    let level = if i == victim && now >= from_ns && now < until_ns {
                        OverloadLevel::Shedding
                    } else {
                        OverloadLevel::Calm
                    };
                    pop.set_overload(level);
                }
            }
            for (i, inbox) in pop_inboxes.into_iter().enumerate() {
                let mut replies = Vec::new();
                for env in inbox {
                    replies.extend(pops[i].handle(now, &env));
                }
                replies.extend(pops[i].tick(now));
                for env in replies {
                    channel.send(now, env);
                }
            }

            // Synthetic traffic: each chain's packets go to whichever PoP
            // is live for it. Two live PoPs for one chain is the fencing
            // violation this whole design exists to prevent.
            let live: Vec<Vec<usize>> = pops.iter().map(|p| p.live_chains(now)).collect();
            for chain in 0..n_chains {
                let claimants: Vec<usize> =
                    (0..n_pops).filter(|&i| live[i].contains(&chain)).collect();
                generated += u64::from(cfg.packets_per_tick);
                match claimants.as_slice() {
                    [] => dropped_unowned += u64::from(cfg.packets_per_tick),
                    [one] => {
                        let (f, d) = pops[*one].process(now, chain, cfg.packets_per_tick);
                        forwarded += f;
                        nf_dropped += d;
                    }
                    [first, ..] => {
                        fencing_events += 1;
                        let (f, d) = pops[*first].process(now, chain, cfg.packets_per_tick);
                        forwarded += f;
                        nf_dropped += d;
                    }
                }
            }
        }

        accumulate(&mut lost_stats, &coordinator.stats);
        let cstats = lost_stats;
        let horizon = ticks * cfg.tick_ns;

        // Settled: every non-shed chain is live at exactly its journaled
        // home PoP right now.
        let shed_chains: Vec<usize> = coordinator.shed().iter().copied().collect();
        let mut settled = true;
        for chain in 0..n_chains {
            if coordinator.shed().contains(&chain) {
                continue;
            }
            let home = coordinator.assignment().get(&chain).map(|&(p, _)| p);
            let live_at: Vec<usize> = (0..n_pops)
                .filter(|&i| pops[i].live_chains(horizon).contains(&chain))
                .collect();
            if home.is_none() || live_at != vec![home.unwrap()] {
                settled = false;
            }
        }

        // Journals must replay to the live state on both sides.
        let coord_replay = coordinator.wal().replay();
        let mut wal_consistent = coordinator.wal().is_consistent()
            && coord_replay.owners == *coordinator.assignment()
            && coord_replay.fleet_shed == shed_chains;
        for pop in &pops {
            wal_consistent &= pop.wal().is_consistent() && pop.wal_matches_owned();
        }

        let validations = if cfg.validate {
            self.validate(&coordinator, oracle)
        } else {
            Vec::new()
        };

        let stats = channel.stats();
        let pop_stats = pops.iter().map(|p| p.stats).collect::<Vec<_>>();
        FleetReport {
            seed: cfg.seed,
            generated,
            forwarded,
            nf_dropped,
            dropped_unowned,
            conservation_ok: generated == forwarded + nf_dropped + dropped_unowned,
            channel_sent: stats.sent,
            channel_duplicated: stats.duplicated,
            channel_delivered: stats.delivered,
            channel_dropped: stats.dropped,
            channel_in_flight: channel.in_flight() as u64,
            channel_conserved: stats.conserved(channel.in_flight()),
            fencing_events,
            blackout_victim,
            coordinator_recoveries: recoveries,
            drains: cstats.drains,
            failovers: cstats.failovers,
            state_failovers: cstats.state_failovers,
            sheds: cstats.sheds,
            welcomes: cstats.welcomes,
            regrants: cstats.regrants,
            adopted: cstats.adopted,
            gave_up: cstats.gave_up,
            overload_rebalances: cstats.overload_rebalances,
            overload_restores: cstats.overload_restores,
            state_restores: pop_stats.iter().map(|s| s.state_restores).sum(),
            fresh_starts: pop_stats.iter().map(|s| s.fresh_starts).sum(),
            duplicate_replays: pop_stats.iter().map(|s| s.duplicate_replays).sum(),
            shed_chains,
            final_owners: coordinator
                .assignment()
                .iter()
                .map(|(&chain, &(pop, token))| (chain, pop, token))
                .collect(),
            pop_health: coordinator.health().iter().map(|h| h.to_string()).collect(),
            settled,
            wal_consistent,
            validations,
        }
    }

    /// Post-storm validation: re-solve each PoP's final chain set as an
    /// ordinary placement subproblem, compile it, and run it through the
    /// real dataplane under its own supervisor. Survivors must settle and
    /// conserve packets exactly.
    fn validate(
        &self,
        coordinator: &FleetCoordinator,
        oracle: &dyn StageOracle,
    ) -> Vec<PopValidation> {
        let spec = &self.spec;
        let cfg = &self.cfg;
        let mut locked: Vec<Vec<usize>> = vec![Vec::new(); spec.n_pops()];
        for (&chain, &(pop, _)) in coordinator.assignment() {
            locked[pop].push(chain);
        }
        let fp = assign_chains(
            &spec.chains,
            &spec.topologies,
            &locked,
            &[],
            &NfProfiles::table4(),
            oracle,
            cfg.workers,
        );
        let mut out = Vec::new();
        for plan in &fp.pops {
            if plan.chains.is_empty() {
                continue;
            }
            let failed = |pop: usize, chains: &[usize]| PopValidation {
                pop,
                chains: chains.to_vec(),
                ran: false,
                settled: false,
                balanced: false,
                commits: 0,
            };
            let (Some(problem), Some(placement)) = (&plan.problem, &plan.placement) else {
                out.push(failed(plan.pop, &plan.chains));
                continue;
            };
            let Ok(deployment) = lemur_metacompiler::compile(problem, placement) else {
                out.push(failed(plan.pop, &plan.chains));
                continue;
            };
            let mut sup = Supervisor::new(
                problem,
                placement,
                &deployment,
                oracle,
                SupervisorConfig {
                    seed: cfg.seed ^ plan.pop as u64,
                    ..SupervisorConfig::default()
                },
            );
            let Ok(mut testbed) = Testbed::build(problem, placement, deployment) else {
                out.push(failed(plan.pop, &plan.chains));
                continue;
            };
            let specs: Vec<TrafficSpec> = plan
                .chains
                .iter()
                .enumerate()
                .map(|(local, &global)| {
                    let mut s = spec.traffic[global].clone();
                    s.offered_bps = (placement.chain_rates_bps[local] * 1.1).max(1e8);
                    s
                })
                .collect();
            let slos: Vec<Option<Slo>> = problem.chains.iter().map(|c| c.slo).collect();
            let report = testbed.run_supervised(
                &specs,
                SimConfig {
                    duration_s: cfg.validation_s,
                    warmup_s: cfg.validation_s / 5.0,
                    seed: cfg.seed ^ ((plan.pop as u64) << 8),
                    window_ns: 1_000_000,
                    ..SimConfig::default()
                },
                &FaultPlan::new(Vec::new()),
                &slos,
                &mut sup,
            );
            out.push(PopValidation {
                pop: plan.pop,
                chains: plan.chains.clone(),
                ran: true,
                settled: sup.is_settled(),
                balanced: report.ledger.balanced(),
                commits: report.commits(),
            });
        }
        out
    }
}

fn accumulate(into: &mut crate::coordinator::CoordStats, from: &crate::coordinator::CoordStats) {
    into.drains += from.drains;
    into.failovers += from.failovers;
    into.state_failovers += from.state_failovers;
    into.sheds += from.sheds;
    into.regrants += from.regrants;
    into.adopted += from.adopted;
    into.welcomes += from.welcomes;
    into.rejected_acks += from.rejected_acks;
    into.gave_up += from.gave_up;
    into.overload_rebalances += from.overload_rebalances;
    into.overload_restores += from.overload_restores;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_placer::oracle::AlwaysFits;

    /// A quick 2-PoP soak with validation off: the cheap determinism and
    /// ledger gate (the full battery lives in tests/fleet_invariants.rs
    /// and the exp_fleet binary).
    #[test]
    fn quick_soak_holds_core_invariants() {
        let spec = FleetSpec::canonical(2);
        let mut cfg = FleetSimConfig::soak(3, 2);
        cfg.validate = false;
        let sim = FleetSim::new(spec, cfg);
        let report = sim.run(&AlwaysFits);
        assert!(report.conservation_ok, "{report:?}");
        assert!(report.channel_conserved, "{report:?}");
        assert_eq!(report.fencing_events, 0, "{report:?}");
        assert!(report.settled, "{report:?}");
        assert!(report.wal_consistent, "{report:?}");
        assert_eq!(report.drains, 1, "the guaranteed blackout must drain");
        assert!(report.failovers + report.sheds >= 1);
    }

    /// A sustained overload storm on one PoP makes the coordinator move
    /// load off it cross-PoP, through the lossy channel, without ever
    /// double-owning a chain — and the soak still settles and conserves.
    #[test]
    fn overload_storm_moves_load_off_the_surging_pop() {
        // The chaos schedule (and thus the blackout victim) is a pure
        // function of the chaos config, so a probe run tells us which
        // PoP dies — the overload storm then targets a different one.
        let probe = {
            let mut cfg = FleetSimConfig::soak(3, 3);
            cfg.validate = false;
            FleetSim::new(FleetSpec::canonical(3), cfg).run(&AlwaysFits)
        };
        let blackout = probe.blackout_victim.unwrap_or(0);
        let storm_pop = (blackout + 1) % 3;

        let mut cfg = FleetSimConfig::soak(3, 3);
        cfg.validate = false;
        cfg.overload_storm = Some((storm_pop, 1_000_000, 5_000_000));
        let report = FleetSim::new(FleetSpec::canonical(3), cfg).run(&AlwaysFits);
        assert!(
            report.overload_rebalances >= 1,
            "sustained shedding must move load: {report:?}"
        );
        // The two-phase migration must never create a second leased
        // owner, and the fleet must still settle after the storm.
        assert_eq!(report.fencing_events, 0, "{report:?}");
        assert!(report.conservation_ok, "{report:?}");
        assert!(report.channel_conserved, "{report:?}");
        assert!(report.settled, "{report:?}");
        assert!(report.wal_consistent, "{report:?}");
    }

    #[test]
    fn same_seed_same_report() {
        let run = |seed| {
            let spec = FleetSpec::canonical(2);
            let mut cfg = FleetSimConfig::soak(seed, 2);
            cfg.validate = false;
            FleetSim::new(spec, cfg).run(&AlwaysFits)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
