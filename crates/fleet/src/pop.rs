//! The per-PoP runtime: a sharded control agent that owns chains under
//! fencing tokens and a lease, journals every ownership change to its own
//! write-ahead [`DecisionLog`], and carries live NF state for stateful
//! chains so a cross-site failover has something real to migrate.
//!
//! Safety properties enforced here:
//!
//! * **Self-fencing** — a PoP serves a chain only while its lease (renewed
//!   exclusively by coordinator heartbeats) is unexpired. A PoP cut off by
//!   a blackout stops serving on its own within `lease_ns`, before the
//!   coordinator re-grants the chain elsewhere.
//! * **Token fencing** — grants and revokes carry per-chain monotonic
//!   tokens; anything older than the newest token seen for that chain is
//!   rejected, so reordered or duplicated commands cannot resurrect
//!   superseded ownership.
//! * **Incarnation fencing** — a drained PoP re-admitted via `Welcome`
//!   gets a new incarnation; commands minted for its previous life are
//!   rejected wholesale.
//! * **Idempotency** — answers are cached by `req_id` and replayed on
//!   duplicate delivery, so a retried grant commits exactly once.

use std::collections::BTreeMap;

use lemur_control::wal::{DecisionLog, WalRecord};
use lemur_core::graph::NodeId;
use lemur_dataplane::StateRecord;
use lemur_dataplane::StateTransfer;
use lemur_nf::nat::Nat;
use lemur_nf::{NetworkFunction, NfCtx, NfKind, Verdict};
use lemur_packet::builder::udp_packet;
use lemur_packet::{ethernet, ipv4};

use crate::msg::{ChainClaim, CtrlMsg, Endpoint, Envelope, OverloadLevel, StateReport};

/// NAT pool shared by every stateful chain replica: 64 external ports,
/// while traffic cycles through 48 distinct flows, so the pool never
/// exhausts but real per-flow bindings accumulate and must migrate.
const NAT_EXTERNAL: ipv4::Address = ipv4::Address::new(198, 18, 0, 1);
const NAT_PORT_BASE: u16 = 4000;
const NAT_PORT_COUNT: u16 = 64;
const FLOWS_PER_CHAIN: u64 = 48;

/// Counters a soak aggregates into its report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PopStats {
    pub grants_accepted: u64,
    pub grants_rejected_stale: u64,
    pub grants_rejected_incarnation: u64,
    pub grants_rejected_restore: u64,
    pub revokes_accepted: u64,
    pub revokes_rejected_stale: u64,
    pub duplicate_replays: u64,
    /// Grants that restored migrated state (fingerprint-verified).
    pub state_restores: u64,
    /// Stateful grants that had no snapshot to restore and started fresh.
    pub fresh_starts: u64,
    pub forwarded: u64,
    pub nf_dropped: u64,
}

/// One PoP's control agent plus its live stateful NF instances.
pub struct PopRuntime {
    pub site: usize,
    incarnation: u64,
    lease_until_ns: u64,
    /// chain → token currently held.
    owned: BTreeMap<usize, u64>,
    /// chain → newest token ever observed (survives revokes; cleared only
    /// by a `Welcome`, whose incarnation bump re-fences instead).
    newest_token: BTreeMap<usize, u64>,
    /// Live NAT instance per owned stateful chain.
    nats: BTreeMap<usize, Nat>,
    /// Which global chains carry migratable state.
    stateful: Vec<usize>,
    /// req_id → (incarnation at answer time, accepted).
    response_cache: BTreeMap<u64, (u64, bool)>,
    wal: DecisionLog,
    report_every_ns: u64,
    next_report_ns: u64,
    /// Per-chain synthetic flow cursor (drives deterministic NAT state).
    flow_seq: BTreeMap<usize, u64>,
    next_msg_id: u64,
    /// What the local supervisor's ladder reports (set by the soak from
    /// its per-PoP overload signal; piggybacked on every `Status`).
    overload: OverloadLevel,
    pub stats: PopStats,
}

impl PopRuntime {
    pub fn new(site: usize, stateful: &[usize], report_every_ns: u64) -> PopRuntime {
        PopRuntime {
            site,
            incarnation: 1,
            lease_until_ns: 0,
            owned: BTreeMap::new(),
            newest_token: BTreeMap::new(),
            nats: BTreeMap::new(),
            stateful: stateful.to_vec(),
            response_cache: BTreeMap::new(),
            wal: DecisionLog::new(),
            report_every_ns,
            // Stagger first reports by site so they don't all collide.
            next_report_ns: (site as u64 + 1) * 20_000,
            flow_seq: BTreeMap::new(),
            next_msg_id: 0,
            overload: OverloadLevel::Calm,
            stats: PopStats::default(),
        }
    }

    /// Record where the local degradation ladder sits; the next `Status`
    /// report carries it to the coordinator.
    pub fn set_overload(&mut self, level: OverloadLevel) {
        self.overload = level;
    }

    /// The overload level the next `Status` will report.
    pub fn overload(&self) -> OverloadLevel {
        self.overload
    }

    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    pub fn lease_valid(&self, now_ns: u64) -> bool {
        now_ns < self.lease_until_ns
    }

    /// Chains this PoP would actually serve right now: owned *and* under
    /// a live lease. This is the self-fencing gate.
    pub fn live_chains(&self, now_ns: u64) -> Vec<usize> {
        if !self.lease_valid(now_ns) {
            return Vec::new();
        }
        self.owned.keys().copied().collect()
    }

    /// All held claims, lease or not (reported in `Status` for
    /// anti-entropy; the coordinator knows the lease state separately).
    pub fn claims(&self) -> Vec<ChainClaim> {
        self.owned
            .iter()
            .map(|(&chain, &token)| ChainClaim { chain, token })
            .collect()
    }

    pub fn wal(&self) -> &DecisionLog {
        &self.wal
    }

    /// The per-PoP crash-consistency invariant: the local journal replays
    /// to exactly the live owned set.
    pub fn wal_matches_owned(&self) -> bool {
        let expect: BTreeMap<usize, (usize, u64)> = self
            .owned
            .iter()
            .map(|(&chain, &token)| (chain, (self.site, token)))
            .collect();
        self.wal.replay().owners == expect
    }

    fn is_stateful(&self, chain: usize) -> bool {
        self.stateful.contains(&chain)
    }

    fn msg_id(&mut self) -> u64 {
        self.next_msg_id += 1;
        ((self.site as u64 + 1) << 48) | self.next_msg_id
    }

    fn ack(&self, of_req: u64, accepted: bool, sent_ns: u64) -> Envelope {
        Envelope {
            req_id: of_req,
            from: Endpoint::Pop(self.site),
            to: Endpoint::Coordinator,
            sent_ns,
            msg: CtrlMsg::Ack {
                of_req,
                incarnation: self.incarnation,
                accepted,
            },
        }
    }

    /// Apply one delivered message; returns any replies to send.
    pub fn handle(&mut self, now_ns: u64, env: &Envelope) -> Vec<Envelope> {
        match &env.msg {
            CtrlMsg::Heartbeat { lease_ns } => {
                // The lease runs from *delivery* time, so a heartbeat sent
                // at S can extend it to at most S + delay_max + lease_ns —
                // the bound the coordinator's drain rule relies on.
                self.lease_until_ns = self.lease_until_ns.max(now_ns + lease_ns);
                Vec::new()
            }
            CtrlMsg::Grant {
                chain,
                token,
                incarnation,
                transfer,
            } => {
                if let Some(&(_, accepted)) = self.response_cache.get(&env.req_id) {
                    self.stats.duplicate_replays += 1;
                    return vec![self.ack(env.req_id, accepted, now_ns)];
                }
                let accepted = self.apply_grant(now_ns, *chain, *token, *incarnation, transfer);
                self.response_cache
                    .insert(env.req_id, (self.incarnation, accepted));
                vec![self.ack(env.req_id, accepted, now_ns)]
            }
            CtrlMsg::Revoke { chain, token } => {
                if let Some(&(_, accepted)) = self.response_cache.get(&env.req_id) {
                    self.stats.duplicate_replays += 1;
                    return vec![self.ack(env.req_id, accepted, now_ns)];
                }
                let accepted = self.apply_revoke(now_ns, *chain, *token);
                self.response_cache
                    .insert(env.req_id, (self.incarnation, accepted));
                vec![self.ack(env.req_id, accepted, now_ns)]
            }
            CtrlMsg::Welcome { incarnation } => {
                if let Some(&(_, accepted)) = self.response_cache.get(&env.req_id) {
                    self.stats.duplicate_replays += 1;
                    return vec![self.ack(env.req_id, accepted, now_ns)];
                }
                if *incarnation > self.incarnation {
                    // A new life: discard everything owned; old-life
                    // grants are fenced out by the incarnation check.
                    // Journal the releases so the local log always
                    // replays to the live owned set.
                    self.incarnation = *incarnation;
                    let dropped: Vec<(usize, u64)> =
                        self.owned.iter().map(|(&c, &t)| (c, t)).collect();
                    for (chain, token) in dropped {
                        self.wal.append(WalRecord::FleetRevoke {
                            at_ns: now_ns,
                            pop: self.site,
                            chain,
                            token,
                        });
                    }
                    self.owned.clear();
                    self.nats.clear();
                    self.newest_token.clear();
                }
                self.response_cache
                    .insert(env.req_id, (self.incarnation, true));
                vec![self.ack(env.req_id, true, now_ns)]
            }
            // PoPs never receive acks or status reports.
            CtrlMsg::Ack { .. } | CtrlMsg::Status { .. } => Vec::new(),
        }
    }

    fn apply_grant(
        &mut self,
        now_ns: u64,
        chain: usize,
        token: u64,
        incarnation: u64,
        transfer: &Option<lemur_dataplane::CrossSiteTransfer>,
    ) -> bool {
        if incarnation != self.incarnation {
            self.stats.grants_rejected_incarnation += 1;
            return false;
        }
        let newest = self.newest_token.get(&chain).copied().unwrap_or(0);
        if token < newest {
            self.stats.grants_rejected_stale += 1;
            return false;
        }
        if self.owned.get(&chain) == Some(&token) {
            // Reconciliation re-grant of what we already hold.
            return true;
        }
        // Stateful chains need their state seated before ownership turns
        // on; a failed restore rejects the whole grant atomically.
        if self.is_stateful(chain) {
            let mut nat = Nat::new(NAT_EXTERNAL, NAT_PORT_BASE, NAT_PORT_COUNT);
            match transfer {
                Some(cst) => {
                    let snaps = match cst.verify(newest) {
                        Ok(s) => s,
                        Err(_) => {
                            self.stats.grants_rejected_restore += 1;
                            return false;
                        }
                    };
                    for snap in &snaps {
                        if nat.restore_state(snap).is_err()
                            || nat.state_fingerprint() != snap.fingerprint()
                        {
                            self.stats.grants_rejected_restore += 1;
                            return false;
                        }
                    }
                    if snaps.is_empty() {
                        self.stats.fresh_starts += 1;
                    } else {
                        self.stats.state_restores += 1;
                    }
                }
                None => self.stats.fresh_starts += 1,
            }
            self.nats.insert(chain, nat);
        }
        self.newest_token.insert(chain, token);
        self.owned.insert(chain, token);
        self.wal.append(WalRecord::FleetGrant {
            at_ns: now_ns,
            pop: self.site,
            chain,
            token,
        });
        self.stats.grants_accepted += 1;
        true
    }

    fn apply_revoke(&mut self, now_ns: u64, chain: usize, token: u64) -> bool {
        match self.owned.get(&chain).copied() {
            Some(held) if held == token => {
                self.owned.remove(&chain);
                self.nats.remove(&chain);
                self.wal.append(WalRecord::FleetRevoke {
                    at_ns: now_ns,
                    pop: self.site,
                    chain,
                    token,
                });
                self.stats.revokes_accepted += 1;
                true
            }
            Some(_) => {
                // Held under a different (necessarily newer) token: a
                // stale revoke must not clear the newer grant.
                self.stats.revokes_rejected_stale += 1;
                false
            }
            // Nothing to revoke: idempotent success.
            None => true,
        }
    }

    /// Periodic work: emit a status report when one is due.
    pub fn tick(&mut self, now_ns: u64) -> Vec<Envelope> {
        if now_ns < self.next_report_ns {
            return Vec::new();
        }
        while self.next_report_ns <= now_ns {
            self.next_report_ns += self.report_every_ns;
        }
        let state = self
            .owned
            .keys()
            .copied()
            .collect::<Vec<_>>()
            .into_iter()
            .filter_map(|chain| {
                let nat = self.nats.get(&chain)?;
                let snap = nat.snapshot_state()?;
                Some(StateReport {
                    chain,
                    fingerprint: snap.fingerprint(),
                    transfer: StateTransfer::new(vec![StateRecord {
                        chain,
                        node: NodeId(0),
                        replica: 0,
                        kind: NfKind::Nat,
                        bytes: snap.encode(),
                    }]),
                })
            })
            .collect();
        let req_id = self.msg_id();
        vec![Envelope {
            req_id,
            from: Endpoint::Pop(self.site),
            to: Endpoint::Coordinator,
            sent_ns: now_ns,
            msg: CtrlMsg::Status {
                incarnation: self.incarnation,
                lease_valid: self.lease_valid(now_ns),
                owned: self.claims(),
                state,
                overload: self.overload,
            },
        }]
    }

    /// Push `count` synthetic packets for an owned chain through its live
    /// NF state. Returns `(forwarded, dropped_by_nf)`; the caller holds
    /// the fleet-wide conservation ledger.
    pub fn process(&mut self, now_ns: u64, chain: usize, count: u32) -> (u64, u64) {
        debug_assert!(self.owned.contains_key(&chain), "route only to owners");
        let mut forwarded = 0u64;
        let mut dropped = 0u64;
        if let Some(nat) = self.nats.get_mut(&chain) {
            let seq = self.flow_seq.entry(chain).or_insert(0);
            let ctx = NfCtx { now_ns };
            for _ in 0..count {
                let flow = *seq % FLOWS_PER_CHAIN;
                *seq += 1;
                let mut pkt = udp_packet(
                    ethernet::Address([2, 0, 0, 0, 0, 1]),
                    ethernet::Address([2, 0, 0, 0, 0, 2]),
                    ipv4::Address::new(10, chain as u8, 0, (flow % 250) as u8 + 1),
                    ipv4::Address::new(8, 8, 8, 8),
                    1000 + (flow / 250) as u16,
                    53,
                    b"fleet",
                );
                match nat.process(&ctx, &mut pkt) {
                    Verdict::Forward | Verdict::Gate(_) => forwarded += 1,
                    Verdict::Drop => dropped += 1,
                }
            }
        } else {
            // Stateless chains have no per-packet state to thread here.
            forwarded += u64::from(count);
        }
        self.stats.forwarded += forwarded;
        self.stats.nf_dropped += dropped;
        (forwarded, dropped)
    }

    /// The current state fingerprint of an owned stateful chain (0 when
    /// stateless or unowned). Lets tests prove migrated state arrived.
    pub fn state_fingerprint(&self, chain: usize) -> u128 {
        self.nats
            .get(&chain)
            .map(|n| n.state_fingerprint())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_dataplane::CrossSiteTransfer;

    fn grant_env(req_id: u64, chain: usize, token: u64, incarnation: u64) -> Envelope {
        Envelope {
            req_id,
            from: Endpoint::Coordinator,
            to: Endpoint::Pop(0),
            sent_ns: 0,
            msg: CtrlMsg::Grant {
                chain,
                token,
                incarnation,
                transfer: None,
            },
        }
    }

    fn accepted(replies: &[Envelope]) -> bool {
        match replies {
            [Envelope {
                msg: CtrlMsg::Ack { accepted, .. },
                ..
            }] => *accepted,
            other => panic!("expected one ack, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_grant_delivery_commits_exactly_once() {
        let mut pop = PopRuntime::new(0, &[], 1_000_000);
        let env = grant_env(42, 3, 10, 1);
        assert!(accepted(&pop.handle(0, &env)));
        let wal_len = pop.wal().len();
        // The same envelope again (channel duplicate / coordinator retry).
        assert!(accepted(&pop.handle(500, &env)));
        assert_eq!(pop.wal().len(), wal_len, "no double journal");
        assert_eq!(pop.stats.grants_accepted, 1);
        assert_eq!(pop.stats.duplicate_replays, 1);
    }

    #[test]
    fn stale_token_and_wrong_incarnation_are_fenced() {
        let mut pop = PopRuntime::new(0, &[], 1_000_000);
        assert!(accepted(&pop.handle(0, &grant_env(1, 3, 10, 1))));
        // An older token for the same chain arrives late: rejected.
        assert!(!accepted(&pop.handle(10, &grant_env(2, 3, 9, 1))));
        assert_eq!(pop.stats.grants_rejected_stale, 1);
        // A grant for a different incarnation: rejected.
        assert!(!accepted(&pop.handle(20, &grant_env(3, 4, 11, 99))));
        assert_eq!(pop.stats.grants_rejected_incarnation, 1);
    }

    #[test]
    fn stale_revoke_cannot_clear_a_newer_grant() {
        let mut pop = PopRuntime::new(0, &[], 1_000_000);
        assert!(accepted(&pop.handle(0, &grant_env(1, 3, 10, 1))));
        assert!(accepted(&pop.handle(5, &grant_env(2, 3, 12, 1))));
        // Revoke of the superseded token 10 must bounce.
        let env = Envelope {
            req_id: 9,
            from: Endpoint::Coordinator,
            to: Endpoint::Pop(0),
            sent_ns: 0,
            msg: CtrlMsg::Revoke {
                chain: 3,
                token: 10,
            },
        };
        assert!(!accepted(&pop.handle(10, &env)));
        assert_eq!(
            pop.claims(),
            vec![ChainClaim {
                chain: 3,
                token: 12
            }]
        );
        // Revoke of the live token works.
        let env = Envelope {
            req_id: 10,
            msg: CtrlMsg::Revoke {
                chain: 3,
                token: 12,
            },
            ..env
        };
        assert!(accepted(&pop.handle(20, &env)));
        assert!(pop.claims().is_empty());
    }

    #[test]
    fn lease_expiry_self_fences() {
        let mut pop = PopRuntime::new(0, &[], 1_000_000);
        assert!(accepted(&pop.handle(0, &grant_env(1, 0, 1, 1))));
        let hb = Envelope {
            req_id: 2,
            from: Endpoint::Coordinator,
            to: Endpoint::Pop(0),
            sent_ns: 0,
            msg: CtrlMsg::Heartbeat { lease_ns: 500 },
        };
        pop.handle(100, &hb);
        assert_eq!(pop.live_chains(400), vec![0]);
        assert!(pop.live_chains(600).is_empty(), "lease ran out");
        assert_eq!(pop.claims().len(), 1, "claim persists; only serving stops");
    }

    #[test]
    fn welcome_bumps_incarnation_and_clears_state() {
        let mut pop = PopRuntime::new(0, &[7], 1_000_000);
        assert!(accepted(&pop.handle(0, &grant_env(1, 7, 3, 1))));
        pop.process(10, 7, 16);
        assert_ne!(pop.state_fingerprint(7), 0);
        let env = Envelope {
            req_id: 5,
            from: Endpoint::Coordinator,
            to: Endpoint::Pop(0),
            sent_ns: 0,
            msg: CtrlMsg::Welcome { incarnation: 2 },
        };
        assert!(accepted(&pop.handle(20, &env)));
        assert_eq!(pop.incarnation(), 2);
        assert!(pop.claims().is_empty());
        assert_eq!(pop.state_fingerprint(7), 0);
        // Old-life grants now bounce; new-life grants land.
        assert!(!accepted(&pop.handle(30, &grant_env(6, 7, 4, 1))));
        assert!(accepted(&pop.handle(40, &grant_env(7, 7, 4, 2))));
    }

    #[test]
    fn migrated_state_restores_bit_exact_or_not_at_all() {
        // Build state on pop A.
        let mut a = PopRuntime::new(0, &[2], 1_000_000);
        assert!(accepted(&a.handle(0, &grant_env(1, 2, 5, 1))));
        a.process(10, 2, 32);
        let fp = a.state_fingerprint(2);
        assert_ne!(fp, 0);
        let report = a.tick(1_000_000).pop().expect("status due");
        let CtrlMsg::Status { state, .. } = report.msg else {
            panic!("expected status");
        };
        let good = CrossSiteTransfer {
            src_site: 0,
            dst_site: 1,
            chain: 2,
            token: 6,
            transfer: state[0].transfer.clone(),
        };

        // A truncated copy is rejected atomically.
        let mut cut = good.clone();
        cut.transfer.records.clear();
        let mut b = PopRuntime::new(1, &[2], 1_000_000);
        let env = Envelope {
            req_id: 8,
            from: Endpoint::Coordinator,
            to: Endpoint::Pop(1),
            sent_ns: 0,
            msg: CtrlMsg::Grant {
                chain: 2,
                token: 6,
                incarnation: 1,
                transfer: Some(cut),
            },
        };
        assert!(!accepted(&b.handle(0, &env)));
        assert_eq!(b.stats.grants_rejected_restore, 1);
        assert!(b.claims().is_empty(), "failed restore leaves no ownership");

        // The intact copy restores to the exact fingerprint.
        let env = Envelope {
            req_id: 9,
            msg: CtrlMsg::Grant {
                chain: 2,
                token: 6,
                incarnation: 1,
                transfer: Some(good),
            },
            ..env
        };
        assert!(accepted(&b.handle(10, &env)));
        assert_eq!(b.state_fingerprint(2), fp);
        assert_eq!(b.stats.state_restores, 1);
    }
}
