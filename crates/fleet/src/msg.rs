//! The fleet control protocol: every byte that crosses the lossy channel.
//!
//! The protocol is deliberately small and entirely idempotent. Requests
//! carry a `req_id` the receiver caches its answer under, so a duplicated
//! or retried delivery replays the original answer instead of re-running
//! the side effect. Ownership changes carry per-chain monotonic fencing
//! tokens and the receiving PoP's incarnation number, so a stale or
//! reordered grant can never resurrect ownership the coordinator has
//! already moved elsewhere.

use lemur_dataplane::{CrossSiteTransfer, StateTransfer};

/// A party on the control channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Endpoint {
    /// The global fleet coordinator.
    Coordinator,
    /// The PoP with this site index.
    Pop(usize),
}

/// One message in flight: addressing plus payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Idempotency key, unique per *logical* request (retries reuse it,
    /// new requests never do). Unsolicited messages get fresh ids too so
    /// duplicates are still distinguishable in traces.
    pub req_id: u64,
    pub from: Endpoint,
    pub to: Endpoint,
    /// Channel-clock time at which this copy was handed to the channel.
    pub sent_ns: u64,
    pub msg: CtrlMsg,
}

/// A PoP's claim over one chain, as reported in [`CtrlMsg::Status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainClaim {
    pub chain: usize,
    /// The fencing token the claim was granted under.
    pub token: u64,
}

/// One stateful chain's replicated state, piggybacked on a status report
/// so the coordinator always holds a recent snapshot to hand to a
/// failover target.
#[derive(Debug, Clone, PartialEq)]
pub struct StateReport {
    pub chain: usize,
    /// FNV-1a/128 fingerprint of the state at snapshot time.
    pub fingerprint: u128,
    pub transfer: StateTransfer,
}

/// How hard a PoP's local control plane is leaning on its graceful-
/// degradation ladder, as self-reported in [`CtrlMsg::Status`]. The
/// coordinator reacts to sustained [`OverloadLevel::Shedding`] by moving
/// load *off* the PoP before it collapses into fleet-visible SLO misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OverloadLevel {
    /// No overload classified; the ladder is fully unwound.
    Calm,
    /// Overload classified (or low ladder rungs active): the PoP is
    /// absorbing the surge with admission control and queueing.
    Surging,
    /// The ladder is shedding chains or parked degraded: the PoP
    /// provably cannot hold its granted load.
    Shedding,
}

impl OverloadLevel {
    /// A short tag for traces and JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            OverloadLevel::Calm => "calm",
            OverloadLevel::Surging => "surging",
            OverloadLevel::Shedding => "shedding",
        }
    }
}

/// The control-plane message grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlMsg {
    /// Coordinator → PoP: lease renewal. A PoP only serves chains while
    /// its lease is unexpired, which is what makes draining a silent PoP
    /// safe — once the coordinator stops heartbeating, the lease runs out
    /// within a bounded delay no matter what is still in flight.
    Heartbeat {
        /// Lease duration from delivery time.
        lease_ns: u64,
    },
    /// Coordinator → PoP: own this chain under this fencing token. For a
    /// stateful chain failing over from another site, `transfer` carries
    /// the last replicated snapshot; `None` means start fresh.
    Grant {
        chain: usize,
        token: u64,
        /// The incarnation this grant is addressed to. A PoP that has
        /// been drained and welcomed back has a newer incarnation and
        /// rejects grants minted for its past life.
        incarnation: u64,
        transfer: Option<CrossSiteTransfer>,
    },
    /// Coordinator → PoP: release this chain (only if still held under
    /// exactly this token — a newer local grant wins over a stale revoke).
    Revoke { chain: usize, token: u64 },
    /// Coordinator → PoP: you have been drained and re-admitted. Adopt
    /// this incarnation and discard all owned state; grants will follow.
    Welcome { incarnation: u64 },
    /// PoP → coordinator: the reply to a `Grant`/`Revoke`/`Welcome`,
    /// replayed verbatim from the response cache on duplicate delivery.
    Ack {
        /// `req_id` of the request this answers.
        of_req: u64,
        /// The PoP's current incarnation when it answered.
        incarnation: u64,
        accepted: bool,
    },
    /// PoP → coordinator: unsolicited periodic report. Serves as
    /// liveness signal, ownership anti-entropy, and asynchronous state
    /// replication all at once.
    Status {
        incarnation: u64,
        /// Whether the PoP's lease was valid when it reported.
        lease_valid: bool,
        owned: Vec<ChainClaim>,
        state: Vec<StateReport>,
        /// Where the PoP's local degradation ladder currently sits.
        overload: OverloadLevel,
    },
}

impl CtrlMsg {
    /// Does this message expect an [`CtrlMsg::Ack`]? (Such messages are
    /// retried by the sender until acknowledged or given up on.)
    pub fn wants_ack(&self) -> bool {
        matches!(
            self,
            CtrlMsg::Grant { .. } | CtrlMsg::Revoke { .. } | CtrlMsg::Welcome { .. }
        )
    }

    /// A short tag for traces.
    pub fn tag(&self) -> &'static str {
        match self {
            CtrlMsg::Heartbeat { .. } => "heartbeat",
            CtrlMsg::Grant { .. } => "grant",
            CtrlMsg::Revoke { .. } => "revoke",
            CtrlMsg::Welcome { .. } => "welcome",
            CtrlMsg::Ack { .. } => "ack",
            CtrlMsg::Status { .. } => "status",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_commands_want_acks() {
        assert!(CtrlMsg::Grant {
            chain: 0,
            token: 1,
            incarnation: 1,
            transfer: None
        }
        .wants_ack());
        assert!(CtrlMsg::Revoke { chain: 0, token: 1 }.wants_ack());
        assert!(CtrlMsg::Welcome { incarnation: 2 }.wants_ack());
        assert!(!CtrlMsg::Heartbeat { lease_ns: 1 }.wants_ack());
        assert!(!CtrlMsg::Status {
            incarnation: 1,
            lease_valid: true,
            owned: vec![],
            state: vec![],
            overload: OverloadLevel::Calm
        }
        .wants_ack());
        assert!(!CtrlMsg::Ack {
            of_req: 7,
            incarnation: 1,
            accepted: true
        }
        .wants_ack());
    }
}
