//! A seeded lossy control channel between the coordinator and its PoPs.
//!
//! Every message faces four hazards, all drawn from one seeded generator
//! so a run replays bit-identically: baseline drop, duplication, a
//! uniformly-sampled delivery delay (which reorders messages naturally),
//! and scheduled [`ChannelFault`] windows — blackouts, asymmetric
//! partitions, and brownouts — applied at send time.
//!
//! The channel keeps an exact conservation ledger: every copy handed to
//! `send` is eventually counted as delivered, dropped, or still in
//! flight. [`ChannelStats::conserved`] is one of the fleet soak's hard
//! invariants.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use lemur_dataplane::{ChannelFault, ChannelFaultKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::msg::{Endpoint, Envelope};

/// Loss/latency model for the control channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    pub seed: u64,
    /// Baseline per-message drop probability, in permille.
    pub drop_permille: u16,
    /// Probability a surviving message is delivered twice, in permille.
    pub dup_permille: u16,
    /// Delivery delay bounds (uniform). `delay_max_ns` also bounds how
    /// long a pre-partition message can linger before arriving, which the
    /// coordinator's drain-safety rule depends on.
    pub delay_min_ns: u64,
    pub delay_max_ns: u64,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            seed: 0,
            drop_permille: 20,
            dup_permille: 15,
            delay_min_ns: 10_000,
            delay_max_ns: 80_000,
        }
    }
}

/// Exact copy accounting. `sent` counts messages handed to the channel;
/// `duplicated` counts extra copies the channel minted; `delivered` and
/// `dropped` count copies leaving the channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    pub sent: u64,
    pub duplicated: u64,
    pub delivered: u64,
    pub dropped: u64,
}

impl ChannelStats {
    /// Every copy is accounted for: in = out + still queued.
    pub fn conserved(&self, in_flight: usize) -> bool {
        self.sent + self.duplicated == self.delivered + self.dropped + in_flight as u64
    }
}

/// A queued copy, ordered by delivery time then send sequence so a
/// same-instant tie breaks deterministically.
#[derive(Debug)]
struct InFlight {
    deliver_at_ns: u64,
    seq: u64,
    env: Envelope,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at_ns, self.seq) == (other.deliver_at_ns, other.seq)
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest copy surfaces.
        (other.deliver_at_ns, other.seq).cmp(&(self.deliver_at_ns, self.seq))
    }
}

/// The lossy channel itself.
pub struct LossyChannel {
    cfg: ChannelConfig,
    rng: StdRng,
    faults: Vec<ChannelFault>,
    queue: BinaryHeap<InFlight>,
    seq: u64,
    stats: ChannelStats,
}

impl LossyChannel {
    pub fn new(cfg: ChannelConfig, faults: Vec<ChannelFault>) -> LossyChannel {
        LossyChannel {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xc4a7_7e1d),
            cfg,
            faults,
            queue: BinaryHeap::new(),
            seq: 0,
            stats: ChannelStats::default(),
        }
    }

    /// The PoP site a message involves, if any (coordinator↔coordinator
    /// traffic does not exist in this protocol).
    fn pop_site(env: &Envelope) -> Option<usize> {
        match (env.from, env.to) {
            (Endpoint::Pop(s), _) | (_, Endpoint::Pop(s)) => Some(s),
            _ => None,
        }
    }

    /// Does an active fault window kill this message at send time?
    fn faulted(&mut self, now_ns: u64, env: &Envelope) -> bool {
        let Some(site) = Self::pop_site(env) else {
            return false;
        };
        for i in 0..self.faults.len() {
            let f = self.faults[i].clone();
            if !f.active(now_ns, site) {
                continue;
            }
            let hit = match f.kind {
                ChannelFaultKind::Blackout => true,
                ChannelFaultKind::PartitionTo => env.to == Endpoint::Pop(site),
                ChannelFaultKind::PartitionFrom => env.from == Endpoint::Pop(site),
                ChannelFaultKind::Brownout { drop_permille } => {
                    u64::from(self.rng.gen_range(0u16..1000)) < u64::from(drop_permille)
                }
            };
            if hit {
                return true;
            }
        }
        false
    }

    fn schedule(&mut self, now_ns: u64, env: Envelope) {
        let delay = self
            .rng
            .gen_range(self.cfg.delay_min_ns..=self.cfg.delay_max_ns);
        self.queue.push(InFlight {
            deliver_at_ns: now_ns + delay,
            seq: self.seq,
            env,
        });
        self.seq += 1;
    }

    /// Hand one message to the channel. Fault windows and the baseline
    /// loss model decide its fate immediately; surviving copies are
    /// queued with independent delays (so a duplicate can overtake the
    /// original, and later sends can overtake earlier ones).
    pub fn send(&mut self, now_ns: u64, env: Envelope) {
        self.stats.sent += 1;
        if self.faulted(now_ns, &env) || self.rng.gen_range(0u16..1000) < self.cfg.drop_permille {
            self.stats.dropped += 1;
            return;
        }
        let dup = self.rng.gen_range(0u16..1000) < self.cfg.dup_permille;
        if dup {
            self.stats.duplicated += 1;
            self.schedule(now_ns, env.clone());
        }
        self.schedule(now_ns, env);
    }

    /// Drain every copy due at or before `now_ns`, in delivery order.
    pub fn poll(&mut self, now_ns: u64) -> Vec<Envelope> {
        let mut out = Vec::new();
        while let Some(head) = self.queue.peek() {
            if head.deliver_at_ns > now_ns {
                break;
            }
            let copy = self.queue.pop().expect("peeked head exists");
            self.stats.delivered += 1;
            out.push(copy.env);
        }
        out
    }

    /// Copies queued but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    pub fn stats(&self) -> ChannelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::CtrlMsg;

    fn hb(from: Endpoint, to: Endpoint, req_id: u64) -> Envelope {
        Envelope {
            req_id,
            from,
            to,
            sent_ns: 0,
            msg: CtrlMsg::Heartbeat { lease_ns: 1 },
        }
    }

    fn drain_all(ch: &mut LossyChannel) -> Vec<Envelope> {
        ch.poll(u64::MAX)
    }

    #[test]
    fn conservation_holds_at_every_step() {
        let cfg = ChannelConfig {
            seed: 9,
            drop_permille: 100,
            dup_permille: 200,
            ..ChannelConfig::default()
        };
        let mut ch = LossyChannel::new(cfg, Vec::new());
        for i in 0..500 {
            let site = (i % 4) as usize;
            ch.send(i * 1_000, hb(Endpoint::Coordinator, Endpoint::Pop(site), i));
            assert!(ch.stats().conserved(ch.in_flight()), "after send {i}");
            if i % 7 == 0 {
                ch.poll(i * 1_000);
                assert!(ch.stats().conserved(ch.in_flight()), "after poll {i}");
            }
        }
        drain_all(&mut ch);
        assert!(ch.stats().conserved(ch.in_flight()));
        assert_eq!(ch.in_flight(), 0);
        let s = ch.stats();
        assert!(s.dropped > 0, "loss model must fire at 10%");
        assert!(s.duplicated > 0, "dup model must fire at 20%");
        assert_eq!(s.sent + s.duplicated, s.delivered + s.dropped);
    }

    #[test]
    fn same_seed_same_fate_for_every_copy() {
        let cfg = ChannelConfig {
            seed: 4,
            ..ChannelConfig::default()
        };
        let run = |cfg: ChannelConfig| {
            let mut ch = LossyChannel::new(cfg, Vec::new());
            for i in 0..200 {
                ch.send(i * 500, hb(Endpoint::Coordinator, Endpoint::Pop(0), i));
            }
            let got: Vec<u64> = drain_all(&mut ch).iter().map(|e| e.req_id).collect();
            (got, ch.stats())
        };
        assert_eq!(run(cfg), run(cfg));
        let other = run(ChannelConfig { seed: 5, ..cfg });
        assert_ne!(run(cfg), other, "different seeds should diverge");
    }

    #[test]
    fn blackout_kills_both_directions_partitions_only_one() {
        let faults = vec![
            ChannelFault {
                site: 0,
                kind: ChannelFaultKind::Blackout,
                from_ns: 0,
                to_ns: 1_000,
            },
            ChannelFault {
                site: 1,
                kind: ChannelFaultKind::PartitionTo,
                from_ns: 0,
                to_ns: 1_000,
            },
            ChannelFault {
                site: 2,
                kind: ChannelFaultKind::PartitionFrom,
                from_ns: 0,
                to_ns: 1_000,
            },
        ];
        let cfg = ChannelConfig {
            seed: 1,
            drop_permille: 0,
            dup_permille: 0,
            ..ChannelConfig::default()
        };
        let mut ch = LossyChannel::new(cfg, faults);
        // Site 0 blackout: both directions die.
        ch.send(0, hb(Endpoint::Coordinator, Endpoint::Pop(0), 1));
        ch.send(0, hb(Endpoint::Pop(0), Endpoint::Coordinator, 2));
        // Site 1 partition-to: inbound dies, outbound lives.
        ch.send(0, hb(Endpoint::Coordinator, Endpoint::Pop(1), 3));
        ch.send(0, hb(Endpoint::Pop(1), Endpoint::Coordinator, 4));
        // Site 2 partition-from: outbound dies, inbound lives.
        ch.send(0, hb(Endpoint::Coordinator, Endpoint::Pop(2), 5));
        ch.send(0, hb(Endpoint::Pop(2), Endpoint::Coordinator, 6));
        // After the window everything flows again.
        ch.send(2_000, hb(Endpoint::Coordinator, Endpoint::Pop(0), 7));
        let mut ids: Vec<u64> = drain_all(&mut ch).iter().map(|e| e.req_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![4, 5, 7]);
        assert!(ch.stats().conserved(0));
    }

    #[test]
    fn duplicates_are_real_and_reordering_happens() {
        let cfg = ChannelConfig {
            seed: 2,
            drop_permille: 0,
            dup_permille: 1000,
            delay_min_ns: 0,
            delay_max_ns: 50_000,
        };
        let mut ch = LossyChannel::new(cfg, Vec::new());
        for i in 0..50 {
            ch.send(0, hb(Endpoint::Coordinator, Endpoint::Pop(0), i));
        }
        let got = drain_all(&mut ch);
        assert_eq!(got.len(), 100, "every message doubled");
        let order: Vec<u64> = got.iter().map(|e| e.req_id).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_ne!(order, sorted, "uniform delays must reorder");
    }
}
