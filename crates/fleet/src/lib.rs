//! # lemur-fleet
//!
//! Multi-PoP fleet control for the Lemur reproduction: each point of
//! presence runs its own sharded supervisor state (ownership under
//! fencing tokens + a write-ahead decision log + live stateful NFs),
//! while a global [`coordinator::FleetCoordinator`] decomposes placement
//! hierarchically — per-PoP subproblems through the existing placer, a
//! cross-PoP chain assignment on top — and drives everything over a
//! seeded lossy control channel.
//!
//! The coordinator speaks the idempotent, fenced protocol in [`msg`];
//! loss, duplication, delay, and scheduled fault windows live in
//! [`channel`]; retries back off per [`retry`]. When a PoP goes dark it
//! descends the Suspect → Unreachable → Drained ladder, and its chains
//! fail over to surviving PoPs — stateful ones by replaying the last
//! replicated LMSN snapshot, excess ones shed by SLO priority. The whole
//! loop is exercised end-to-end by [`sim::FleetSim`] under
//! `lemur_control::chaos::fleet_storm` weather.

pub mod channel;
pub mod coordinator;
pub mod msg;
pub mod pop;
pub mod retry;
pub mod sim;

pub use channel::{ChannelConfig, ChannelStats, LossyChannel};
pub use coordinator::{CoordStats, FleetConfig, FleetCoordinator};
pub use msg::{ChainClaim, CtrlMsg, Endpoint, Envelope, StateReport};
pub use pop::{PopRuntime, PopStats};
pub use retry::{Backoff, BackoffPolicy};
pub use sim::{FleetReport, FleetSim, FleetSimConfig, FleetSpec, PopValidation};
