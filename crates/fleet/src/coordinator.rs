//! The global fleet coordinator: hierarchical placement, leases, the
//! PoP-health degradation ladder, and cross-PoP failover — all journaled
//! to a write-ahead [`DecisionLog`] so a coordinator crash replays to a
//! consistent ownership map with strictly fresh fencing tokens.
//!
//! ## Why draining a silent PoP is safe
//!
//! A PoP serves only under a lease renewed exclusively by coordinator
//! heartbeats, and every heartbeat sent at time *S* is delivered no later
//! than *S* + `delay_max_ns` (the channel's hard delay bound — duplicates
//! included), extending the lease to at most *S* + `delay_max_ns` +
//! `lease_ns`. The coordinator stops heartbeating a PoP the moment it is
//! `Unreachable` and remembers `last_hb_sent`; it drains the PoP (and
//! re-grants its chains elsewhere) only once
//!
//! ```text
//! now ≥ last_hb_sent + delay_max_ns + lease_ns + drain_margin_ns
//! ```
//!
//! and the PoP has been silent for `drain_after_ns`. Past that point no
//! message still in flight can extend the victim's lease, so two PoPs can
//! never serve the same chain simultaneously.
//!
//! ## Why a coordinator crash cannot reuse a token
//!
//! Fencing tokens are `(epoch << 40) | counter`. Recovery replays the
//! journal (possibly torn mid-record) and resumes at
//! `max(granted epoch) + 1`, so every post-crash token is strictly larger
//! than anything minted before the crash — including grants lost to the
//! torn tail.
//!
//! Request ids are epoch-scoped the same way (`(epoch << 32) | counter`):
//! PoPs answer duplicates from a cache keyed by request id, so a
//! recovered coordinator must never reuse an id a previous incarnation
//! already spent — a cached pre-crash answer would silently swallow the
//! new command and be mistaken for its acknowledgement.
//!
//! ## Overload propagation
//!
//! Each PoP piggybacks its local degradation-ladder level on every
//! status report. After [`FleetConfig::overload_streak`] consecutive
//! [`OverloadLevel::Shedding`] reports the coordinator fences the PoP
//! out of refugee placement and moves its lowest-priority chain to a
//! calm PoP — *before* the local ladder has to shed it outright. Because
//! the source is alive (unlike a drain), the move is two-phase: a
//! tracked `Revoke` first, and the replacement `Grant` only after the
//! owner's acknowledgement, so no tick ever has two leased owners. The
//! same streak of `Calm` reports unfences the PoP and sends its
//! displaced chains home the same way. Fences and displacement history
//! are deliberately volatile: a coordinator crash forgets them, and the
//! next rounds of status reports rebuild whatever still matters.

use std::collections::{BTreeMap, BTreeSet};

use lemur_control::wal::{DecisionLog, PopHealth, WalRecord};
use lemur_core::graph::ChainSpec;
use lemur_dataplane::CrossSiteTransfer;
use lemur_placer::hierarchy::{assign_chains, FleetPlacement};
use lemur_placer::oracle::StageOracle;
use lemur_placer::parallel::Workers;
use lemur_placer::profiles::NfProfiles;
use lemur_placer::topology::Topology;

use crate::msg::{ChainClaim, CtrlMsg, Endpoint, Envelope, OverloadLevel, StateReport};
use crate::retry::{Backoff, BackoffPolicy};

/// Bits of a fencing token below the epoch.
const TOKEN_EPOCH_SHIFT: u32 = 40;

/// Bits of a request id below the epoch. Epoch-scoping keeps a recovered
/// coordinator's request ids disjoint from every id a previous
/// incarnation minted (whose answers may still sit in PoP reply caches).
const REQ_EPOCH_SHIFT: u32 = 32;

/// Timing and policy knobs. Defaults pair with
/// [`crate::channel::ChannelConfig::default`]: `delay_max_ns` here must
/// be ≥ the channel's, or the drain-safety argument does not hold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    pub seed: u64,
    /// Heartbeat period per healthy PoP.
    pub heartbeat_every_ns: u64,
    /// Lease duration carried by each heartbeat.
    pub lease_ns: u64,
    /// Silence before a PoP is Suspect.
    pub suspect_after_ns: u64,
    /// Silence before a PoP is Unreachable (heartbeats stop).
    pub unreachable_after_ns: u64,
    /// Silence before a PoP may be Drained (subject to the lease bound).
    pub drain_after_ns: u64,
    /// The channel's worst-case delivery delay.
    pub delay_max_ns: u64,
    /// Extra slack on top of the provable lease-expiry bound.
    pub drain_margin_ns: u64,
    /// Consecutive [`OverloadLevel::Shedding`] status reports before the
    /// coordinator moves load off a PoP (and the same count of `Calm`
    /// reports before it unfences the PoP and restores displaced chains).
    pub overload_streak: u32,
    pub backoff: BackoffPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0,
            heartbeat_every_ns: 200_000,
            lease_ns: 600_000,
            suspect_after_ns: 500_000,
            unreachable_after_ns: 900_000,
            drain_after_ns: 1_300_000,
            delay_max_ns: 80_000,
            drain_margin_ns: 100_000,
            overload_streak: 3,
            backoff: BackoffPolicy::default(),
        }
    }
}

/// Coordinator-side counters for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordStats {
    pub drains: u64,
    /// Chains re-granted to a surviving PoP after a drain.
    pub failovers: u64,
    /// Failovers that shipped replicated state with the grant.
    pub state_failovers: u64,
    pub sheds: u64,
    /// Anti-entropy re-sends of grants the journal says are owned.
    pub regrants: u64,
    /// Claims adopted from PoP status reports (heals torn-journal loss).
    pub adopted: u64,
    pub welcomes: u64,
    pub rejected_acks: u64,
    /// Requests abandoned after the retry budget (anti-entropy takes over).
    pub gave_up: u64,
    /// Chains moved off a PoP whose ladder reported sustained shedding.
    pub overload_rebalances: u64,
    /// Displaced chains sent home after the PoP reported calm again.
    pub overload_restores: u64,
}

/// What the coordinator believes about one PoP.
#[derive(Debug, Clone, Copy)]
struct PopView {
    health: PopHealth,
    incarnation: u64,
    last_heard_ns: u64,
    last_hb_sent_ns: u64,
    next_hb_ns: u64,
    /// The ladder level the PoP last self-reported.
    overload: OverloadLevel,
    /// Consecutive `Shedding` reports (toward a rebalance trigger).
    shedding_streak: u32,
    /// Consecutive `Calm` reports (toward unfencing).
    calm_streak: u32,
    /// Fenced out of refugee placement until it reports calm again.
    /// Volatile by design: a coordinator crash forgets fences, and the
    /// next round of status reports rebuilds them.
    overload_fenced: bool,
}

/// An unacknowledged request being retried.
struct Pending {
    env: Envelope,
    backoff: Backoff,
    due_ns: u64,
    /// The chain a Grant concerns (suppresses duplicate regrants).
    chain: Option<usize>,
}

/// The global controller of a PoP fleet.
pub struct FleetCoordinator {
    cfg: FleetConfig,
    chains: Vec<ChainSpec>,
    stateful: Vec<usize>,
    topologies: Vec<Topology>,
    profiles: NfProfiles,
    workers: Workers,
    pops: Vec<PopView>,
    /// chain → (home PoP, fencing token) — mirrors the journal replay.
    assignment: BTreeMap<usize, (usize, u64)>,
    shed: BTreeSet<usize>,
    /// chain → last replicated snapshot from its current owner.
    state_cache: BTreeMap<usize, StateReport>,
    pending: BTreeMap<u64, Pending>,
    next_req: u64,
    token_epoch: u64,
    token_ctr: u64,
    /// One-shot post-recovery repair deadline: after this instant the
    /// coordinator re-places chains the torn journal left assigned to a
    /// drained PoP or tracked nowhere at all.
    repair_at_ns: Option<u64>,
    /// PoPs whose shedding streak just crossed the threshold; a chain is
    /// moved off each at the next tick.
    overload_pending: BTreeSet<usize>,
    /// PoPs just unfenced; their displaced chains head home next tick.
    restore_pending: BTreeSet<usize>,
    /// Chains mid two-phase migration off a *live* owner: the Revoke is
    /// in flight or acknowledged but the new grant not yet issued. Claim
    /// anti-entropy ignores these so a stale status cannot resurrect the
    /// old ownership between release and re-seat.
    migrating: BTreeSet<usize>,
    /// chain → origin PoP, for chains moved away by an overload
    /// rebalance. Consumed when the origin calms and the chain is sent
    /// home. Volatile, like the fences.
    displaced: BTreeMap<usize, usize>,
    /// Migration victims whose owners acknowledged release this tick;
    /// seated via `replace_chains` once the oracle is in hand.
    ready_place: Vec<(usize, Option<(usize, u64)>)>,
    wal: DecisionLog,
    /// The append-only durable image (what a crash leaves behind,
    /// possibly with a torn tail).
    wal_image: Vec<u8>,
    pub stats: CoordStats,
}

impl FleetCoordinator {
    pub fn new(
        cfg: FleetConfig,
        chains: Vec<ChainSpec>,
        stateful: Vec<usize>,
        topologies: Vec<Topology>,
        profiles: NfProfiles,
        workers: Workers,
    ) -> FleetCoordinator {
        let n_pops = topologies.len();
        FleetCoordinator {
            cfg,
            chains,
            stateful,
            topologies,
            profiles,
            workers,
            pops: vec![
                PopView {
                    health: PopHealth::Healthy,
                    incarnation: 1,
                    last_heard_ns: 0,
                    last_hb_sent_ns: 0,
                    next_hb_ns: 0,
                    overload: OverloadLevel::Calm,
                    shedding_streak: 0,
                    calm_streak: 0,
                    overload_fenced: false,
                };
                n_pops
            ],
            assignment: BTreeMap::new(),
            shed: BTreeSet::new(),
            state_cache: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_req: 0,
            token_epoch: 1,
            token_ctr: 0,
            repair_at_ns: None,
            overload_pending: BTreeSet::new(),
            restore_pending: BTreeSet::new(),
            migrating: BTreeSet::new(),
            displaced: BTreeMap::new(),
            ready_place: Vec::new(),
            wal: DecisionLog::new(),
            wal_image: Vec::new(),
            stats: CoordStats::default(),
        }
    }

    /// Rebuild a coordinator from the durable journal image a crash left
    /// behind. Volatile state (pending retries, the state cache, liveness
    /// clocks) is gone; ownership, shed set, and PoP health replay from
    /// the longest complete journal prefix, and the token epoch jumps
    /// past everything ever granted.
    #[allow(clippy::too_many_arguments)]
    pub fn recover(
        cfg: FleetConfig,
        chains: Vec<ChainSpec>,
        stateful: Vec<usize>,
        topologies: Vec<Topology>,
        profiles: NfProfiles,
        workers: Workers,
        image: &[u8],
        now_ns: u64,
    ) -> FleetCoordinator {
        let recovery = DecisionLog::recover(image, now_ns);
        let summary = recovery.log.replay();
        let mut c = FleetCoordinator::new(cfg, chains, stateful, topologies, profiles, workers);
        let max_epoch = recovery
            .log
            .records()
            .iter()
            .filter_map(|r| match r {
                WalRecord::FleetGrant { token, .. } => Some(token >> TOKEN_EPOCH_SHIFT),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        c.token_epoch = max_epoch + 1;
        c.assignment = summary.owners.clone();
        c.shed = summary.fleet_shed.iter().copied().collect();
        for (&pop, &health) in &summary.pop_health {
            if pop < c.pops.len() {
                c.pops[pop].health = health;
            }
        }
        for view in &mut c.pops {
            // Grace: nothing has been heard *since recovery*; don't let a
            // stale journal age straight into a drain.
            view.last_heard_ns = now_ns;
            view.last_hb_sent_ns = now_ns;
            view.next_hb_ns = now_ns;
        }
        c.wal = recovery.log;
        c.wal_image = c.wal.encode();
        // A torn tail can leave chains assigned to a PoP that already
        // drained (its failover records were cut) or tracked nowhere at
        // all (revoked, but the shed/grant record was cut). Schedule a
        // repair pass after a grace window long enough for surviving PoPs
        // to report in — claims heal the journal for free, and whatever
        // is still stranded then gets re-placed or shed.
        c.repair_at_ns = Some(now_ns + c.cfg.unreachable_after_ns);
        c
    }

    fn journal(&mut self, rec: WalRecord) {
        self.wal_image.extend_from_slice(&rec.encode());
        self.wal.append(rec);
    }

    fn mint_token(&mut self) -> u64 {
        self.token_ctr += 1;
        (self.token_epoch << TOKEN_EPOCH_SHIFT) | self.token_ctr
    }

    fn req_id(&mut self) -> u64 {
        self.next_req += 1;
        (self.token_epoch << REQ_EPOCH_SHIFT) | self.next_req
    }

    /// Send a request that must be acknowledged: queued for seeded,
    /// bounded, jittered retries until acked or given up on.
    fn send_tracked(
        &mut self,
        now_ns: u64,
        to_pop: usize,
        msg: CtrlMsg,
        chain: Option<usize>,
        out: &mut Vec<Envelope>,
    ) {
        let req_id = self.req_id();
        let env = Envelope {
            req_id,
            from: Endpoint::Coordinator,
            to: Endpoint::Pop(to_pop),
            sent_ns: now_ns,
            msg,
        };
        out.push(env.clone());
        let mut backoff = Backoff::new(self.cfg.backoff, self.cfg.seed ^ req_id);
        let due_ns = now_ns + backoff.next_delay().unwrap_or(self.cfg.heartbeat_every_ns);
        self.pending.insert(
            req_id,
            Pending {
                env,
                backoff,
                due_ns,
                chain,
            },
        );
    }

    fn chain_pending(&self, chain: usize) -> bool {
        self.pending.values().any(|p| p.chain == Some(chain))
    }

    fn welcome_pending(&self, pop: usize) -> bool {
        self.pending
            .values()
            .any(|p| p.env.to == Endpoint::Pop(pop) && matches!(p.env.msg, CtrlMsg::Welcome { .. }))
    }

    fn set_health(&mut self, now_ns: u64, pop: usize, health: PopHealth) {
        if self.pops[pop].health == health {
            return;
        }
        self.pops[pop].health = health;
        self.journal(WalRecord::FleetPopHealth {
            at_ns: now_ns,
            pop,
            health,
        });
    }

    /// Initial hierarchical placement: per-PoP subproblems solved by the
    /// single-rack placer, chains that fit nowhere shed by priority.
    pub fn boot(&mut self, now_ns: u64, oracle: &dyn StageOracle) -> Vec<Envelope> {
        let fp = lemur_placer::hierarchy::place_fleet(
            &self.chains,
            &self.topologies,
            &self.profiles,
            oracle,
            self.workers,
        );
        let mut out = Vec::new();
        for plan in &fp.pops {
            for &chain in &plan.chains {
                let token = self.mint_token();
                self.journal(WalRecord::FleetGrant {
                    at_ns: now_ns,
                    pop: plan.pop,
                    chain,
                    token,
                });
                self.assignment.insert(chain, (plan.pop, token));
                let incarnation = self.pops[plan.pop].incarnation;
                self.send_tracked(
                    now_ns,
                    plan.pop,
                    CtrlMsg::Grant {
                        chain,
                        token,
                        incarnation,
                        transfer: None,
                    },
                    Some(chain),
                    &mut out,
                );
            }
        }
        for &chain in &fp.shed {
            self.journal(WalRecord::FleetShed {
                at_ns: now_ns,
                chain,
            });
            self.shed.insert(chain);
            self.stats.sheds += 1;
        }
        out
    }

    /// One control step: ingest delivered messages, walk the health
    /// ladder, heartbeat live PoPs, and fire due retries.
    pub fn tick(
        &mut self,
        now_ns: u64,
        inbox: Vec<Envelope>,
        oracle: &dyn StageOracle,
    ) -> Vec<Envelope> {
        let mut out = Vec::new();
        for env in inbox {
            self.handle(now_ns, env, &mut out);
        }
        self.health_ladder(now_ns, oracle, &mut out);
        if let Some(due) = self.repair_at_ns {
            if now_ns >= due {
                self.repair_at_ns = None;
                self.repair(now_ns, oracle, &mut out);
            }
        }
        self.overload_moves(now_ns, oracle, &mut out);
        self.heartbeats(now_ns, &mut out);
        self.retries(now_ns, &mut out);
        out
    }

    fn handle(&mut self, now_ns: u64, env: Envelope, out: &mut Vec<Envelope>) {
        let Endpoint::Pop(pop) = env.from else {
            return;
        };
        if pop >= self.pops.len() {
            return;
        }
        match env.msg {
            CtrlMsg::Status {
                incarnation,
                lease_valid: _,
                owned,
                state,
                overload,
            } => self.handle_status(now_ns, pop, incarnation, owned, state, overload, out),
            CtrlMsg::Ack {
                of_req,
                incarnation,
                accepted,
            } => {
                self.pops[pop].incarnation = self.pops[pop].incarnation.max(incarnation);
                if self.pops[pop].health != PopHealth::Drained {
                    self.pops[pop].last_heard_ns = self.pops[pop].last_heard_ns.max(now_ns);
                }
                let Some(p) = self.pending.remove(&of_req) else {
                    return; // duplicate ack; already resolved
                };
                if accepted {
                    match p.env.msg {
                        CtrlMsg::Welcome { .. } => {
                            // The PoP adopted its new life: re-admit it
                            // empty, with a clean overload record.
                            self.set_health(now_ns, pop, PopHealth::Healthy);
                            self.pops[pop].last_heard_ns = now_ns;
                            self.pops[pop].next_hb_ns = now_ns;
                            self.pops[pop].overload = OverloadLevel::Calm;
                            self.pops[pop].shedding_streak = 0;
                            self.pops[pop].calm_streak = 0;
                            self.pops[pop].overload_fenced = false;
                            self.stats.welcomes += 1;
                        }
                        CtrlMsg::Revoke { chain, .. } if self.migrating.contains(&chain) => {
                            // The live owner released a migrating chain:
                            // only now is it safe to seat it elsewhere.
                            let prior = self.assignment.get(&chain).copied();
                            self.ready_place.push((chain, prior));
                        }
                        _ => {}
                    }
                } else {
                    if let CtrlMsg::Revoke { chain, .. } = p.env.msg {
                        // A refused release aborts the migration; the
                        // chain stays where it is.
                        if self.migrating.remove(&chain) {
                            self.displaced.remove(&chain);
                        }
                    }
                    // Rejected (incarnation skew or a failed restore):
                    // drop it — status-report anti-entropy re-derives the
                    // right command with fresh knowledge.
                    self.stats.rejected_acks += 1;
                }
            }
            _ => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_status(
        &mut self,
        now_ns: u64,
        pop: usize,
        incarnation: u64,
        owned: Vec<ChainClaim>,
        state: Vec<StateReport>,
        overload: OverloadLevel,
        out: &mut Vec<Envelope>,
    ) {
        self.pops[pop].incarnation = self.pops[pop].incarnation.max(incarnation);
        if self.pops[pop].health == PopHealth::Drained {
            // A drained PoP is talking again: its chains have moved on, so
            // it must discard its past life before rejoining.
            if !self.welcome_pending(pop) {
                let next_inc = self.pops[pop].incarnation + 1;
                self.send_tracked(
                    now_ns,
                    pop,
                    CtrlMsg::Welcome {
                        incarnation: next_inc,
                    },
                    None,
                    out,
                );
            }
            return;
        }
        self.pops[pop].last_heard_ns = now_ns;
        if self.pops[pop].health != PopHealth::Healthy {
            self.set_health(now_ns, pop, PopHealth::Healthy);
        }
        self.observe_overload(pop, overload);

        // Claim anti-entropy: fence stale claims, adopt journal-lost ones.
        for claim in &owned {
            self.reconcile_claim(now_ns, pop, *claim, out);
        }
        // Grant anti-entropy: re-send grants the journal says this PoP
        // owns but the PoP does not claim (lost or torn away).
        let claimed: BTreeSet<usize> = owned.iter().map(|c| c.chain).collect();
        let missing: Vec<(usize, u64)> = self
            .assignment
            .iter()
            .filter(|(chain, (p, _))| *p == pop && !claimed.contains(chain))
            .map(|(&chain, &(_, token))| (chain, token))
            .collect();
        for (chain, token) in missing {
            if self.chain_pending(chain) || self.migrating.contains(&chain) {
                continue;
            }
            let transfer = self.failover_state(chain, pop, token);
            let incarnation = self.pops[pop].incarnation;
            self.stats.regrants += 1;
            self.send_tracked(
                now_ns,
                pop,
                CtrlMsg::Grant {
                    chain,
                    token,
                    incarnation,
                    transfer,
                },
                Some(chain),
                out,
            );
        }
        // State replication: cache snapshots from the legitimate owner.
        for rep in state {
            if self.assignment.get(&rep.chain).map(|&(p, _)| p) == Some(pop) {
                self.state_cache.insert(rep.chain, rep);
            }
        }
    }

    fn reconcile_claim(
        &mut self,
        now_ns: u64,
        pop: usize,
        claim: ChainClaim,
        out: &mut Vec<Envelope>,
    ) {
        if self.migrating.contains(&claim.chain) {
            // Mid two-phase migration: a stale claim (a status composed
            // before the owner applied the Revoke) must neither be
            // adopted back nor fenced — the migration resolves it.
            return;
        }
        match self.assignment.get(&claim.chain).copied() {
            None => {
                if self.shed.contains(&claim.chain) {
                    // A shed chain must not quietly live on somewhere.
                    self.send_tracked(
                        now_ns,
                        pop,
                        CtrlMsg::Revoke {
                            chain: claim.chain,
                            token: claim.token,
                        },
                        None,
                        out,
                    );
                } else {
                    // The journal lost this grant (torn tail): adopt it.
                    self.journal(WalRecord::FleetGrant {
                        at_ns: now_ns,
                        pop,
                        chain: claim.chain,
                        token: claim.token,
                    });
                    self.assignment.insert(claim.chain, (pop, claim.token));
                    self.stats.adopted += 1;
                }
            }
            Some((home, token)) if home == pop => {
                if claim.token > token {
                    // Newer than the journal knows (lost re-grant): adopt.
                    self.journal(WalRecord::FleetGrant {
                        at_ns: now_ns,
                        pop,
                        chain: claim.chain,
                        token: claim.token,
                    });
                    self.assignment.insert(claim.chain, (pop, claim.token));
                    self.stats.adopted += 1;
                }
                // claim.token ≤ token: the regrant path re-sends it.
            }
            Some((home, token)) => {
                if claim.token < token {
                    // A superseded owner still claiming: fence it off.
                    self.send_tracked(
                        now_ns,
                        pop,
                        CtrlMsg::Revoke {
                            chain: claim.chain,
                            token: claim.token,
                        },
                        None,
                        out,
                    );
                } else {
                    // The claimant outranks the journaled owner — only a
                    // torn tail can cause this. Adopt the claimant, fence
                    // the stale journal entry.
                    self.send_tracked(
                        now_ns,
                        home,
                        CtrlMsg::Revoke {
                            chain: claim.chain,
                            token,
                        },
                        None,
                        out,
                    );
                    self.journal(WalRecord::FleetGrant {
                        at_ns: now_ns,
                        pop,
                        chain: claim.chain,
                        token: claim.token,
                    });
                    self.assignment.insert(claim.chain, (pop, claim.token));
                    self.stats.adopted += 1;
                }
            }
        }
    }

    fn health_ladder(&mut self, now_ns: u64, oracle: &dyn StageOracle, out: &mut Vec<Envelope>) {
        for pop in 0..self.pops.len() {
            let view = self.pops[pop];
            if view.health == PopHealth::Drained {
                continue;
            }
            let silent = now_ns.saturating_sub(view.last_heard_ns);
            let ladder = if silent >= self.cfg.unreachable_after_ns {
                PopHealth::Unreachable
            } else if silent >= self.cfg.suspect_after_ns {
                PopHealth::Suspect
            } else {
                PopHealth::Healthy
            };
            if ladder != view.health {
                self.set_health(now_ns, pop, ladder);
            }
            if self.pops[pop].health == PopHealth::Unreachable {
                // Drain only once no in-flight heartbeat can still renew
                // the victim's lease (see the module doc's bound).
                let lease_dead_at = view.last_hb_sent_ns
                    + self.cfg.delay_max_ns
                    + self.cfg.lease_ns
                    + self.cfg.drain_margin_ns;
                if silent >= self.cfg.drain_after_ns && now_ns >= lease_dead_at {
                    self.set_health(now_ns, pop, PopHealth::Drained);
                    self.stats.drains += 1;
                    self.failover(now_ns, pop, oracle, out);
                }
            }
        }
    }

    /// Move a drained PoP's chains to surviving PoPs via the hierarchical
    /// placer (survivors' chains locked in place), shipping replicated
    /// state for stateful chains and shedding what fits nowhere.
    fn failover(
        &mut self,
        now_ns: u64,
        dead: usize,
        oracle: &dyn StageOracle,
        out: &mut Vec<Envelope>,
    ) {
        let victims: Vec<(usize, Option<(usize, u64)>)> = self
            .assignment
            .iter()
            .filter(|(_, (p, _))| *p == dead)
            .map(|(&chain, &(p, token))| (chain, Some((p, token))))
            .collect();
        self.replace_chains(now_ns, victims, oracle, out);
    }

    /// The post-recovery repair pass: re-place every chain the replayed
    /// journal left assigned to an already-drained PoP (its failover
    /// records were torn away) or tracked neither as owned nor as shed
    /// (its shed/grant record was torn away). Fresh epoch tokens outrank
    /// anything a lost grant may have seated, so this is always safe.
    fn repair(&mut self, now_ns: u64, oracle: &dyn StageOracle, out: &mut Vec<Envelope>) {
        let mut victims: Vec<(usize, Option<(usize, u64)>)> = self
            .assignment
            .iter()
            .filter(|(_, (p, _))| self.pops[*p].health == PopHealth::Drained)
            .map(|(&chain, &(p, token))| (chain, Some((p, token))))
            .collect();
        for chain in 0..self.chains.len() {
            if !self.assignment.contains_key(&chain) && !self.shed.contains(&chain) {
                victims.push((chain, None));
            }
        }
        self.replace_chains(now_ns, victims, oracle, out);
    }

    /// Track a PoP's self-reported ladder level. `overload_streak`
    /// consecutive `Shedding` reports fence the PoP out of refugee
    /// placement and queue a rebalance that moves its lowest-priority
    /// chain to a calm PoP; the same count of consecutive `Calm` reports
    /// unfences it and queues the displaced chains' homecoming.
    fn observe_overload(&mut self, pop: usize, overload: OverloadLevel) {
        let streak = self.cfg.overload_streak.max(1);
        let view = &mut self.pops[pop];
        view.overload = overload;
        if overload == OverloadLevel::Shedding {
            view.shedding_streak += 1;
        } else {
            view.shedding_streak = 0;
        }
        if overload == OverloadLevel::Calm {
            view.calm_streak += 1;
        } else {
            view.calm_streak = 0;
        }
        if view.shedding_streak >= streak {
            view.shedding_streak = 0;
            view.overload_fenced = true;
            self.overload_pending.insert(pop);
        }
        if view.overload_fenced && view.calm_streak >= streak {
            view.calm_streak = 0;
            view.overload_fenced = false;
            self.restore_pending.insert(pop);
        }
    }

    /// The chain to move off an overloaded PoP: its lowest-priority
    /// chain, never its top-priority one (mirroring the local ladder's
    /// shed rule), and never a chain already mid-migration. `None` when
    /// the PoP serves at most one chain — moving the last chain is just
    /// a failover wearing a different hat, and shedding the top-priority
    /// chain is exactly what the rebalance exists to prevent.
    fn rebalance_victim(&self, pop: usize) -> Option<usize> {
        let owned: Vec<usize> = self
            .assignment
            .iter()
            .filter(|&(_, &(p, _))| p == pop)
            .map(|(&chain, _)| chain)
            .collect();
        if owned.len() <= 1 {
            return None;
        }
        let prio = |c: usize| {
            self.chains
                .get(c)
                .and_then(|ch| ch.slo)
                .map_or(0, |s| s.priority)
        };
        let top = owned
            .iter()
            .copied()
            .max_by_key(|&c| (prio(c), std::cmp::Reverse(c)))?;
        owned
            .into_iter()
            .filter(|&c| c != top && !self.migrating.contains(&c))
            .min_by_key(|&c| (prio(c), c))
    }

    /// Cross-PoP overload response, run once per tick: start two-phase
    /// migrations off PoPs with sustained shedding reports, start
    /// homecomings for PoPs that calmed down, and seat every chain whose
    /// live owner has acknowledged release. Moving a chain off a *live*
    /// PoP is revoke-then-grant — the new grant is issued only after the
    /// old owner's Ack — so no tick ever has two leased owners.
    fn overload_moves(&mut self, now_ns: u64, oracle: &dyn StageOracle, out: &mut Vec<Envelope>) {
        let surging: Vec<usize> = std::mem::take(&mut self.overload_pending)
            .into_iter()
            .collect();
        for pop in surging {
            if self.pops[pop].health != PopHealth::Healthy {
                continue;
            }
            let Some(victim) = self.rebalance_victim(pop) else {
                continue;
            };
            let token = self.assignment[&victim].1;
            self.migrating.insert(victim);
            self.displaced.insert(victim, pop);
            self.stats.overload_rebalances += 1;
            self.send_tracked(
                now_ns,
                pop,
                CtrlMsg::Revoke {
                    chain: victim,
                    token,
                },
                Some(victim),
                out,
            );
        }
        let calmed: Vec<usize> = std::mem::take(&mut self.restore_pending)
            .into_iter()
            .collect();
        for pop in calmed {
            let home: Vec<usize> = self
                .displaced
                .iter()
                .filter(|&(_, &origin)| origin == pop)
                .map(|(&chain, _)| chain)
                .collect();
            for chain in home {
                self.displaced.remove(&chain);
                let Some(&(owner, token)) = self.assignment.get(&chain) else {
                    continue; // shed in the meantime
                };
                if owner == pop
                    || self.migrating.contains(&chain)
                    || self.pops[owner].health != PopHealth::Healthy
                {
                    continue;
                }
                self.migrating.insert(chain);
                self.stats.overload_restores += 1;
                self.send_tracked(
                    now_ns,
                    owner,
                    CtrlMsg::Revoke { chain, token },
                    Some(chain),
                    out,
                );
            }
        }
        let ready = std::mem::take(&mut self.ready_place);
        if !ready.is_empty() {
            self.replace_chains(now_ns, ready, oracle, out);
        }
    }

    /// Re-place a set of chains onto PoPs that can currently hear us,
    /// revoking their prior grants (if any), shipping replicated state
    /// for stateful chains, and shedding what fits nowhere.
    fn replace_chains(
        &mut self,
        now_ns: u64,
        victims: Vec<(usize, Option<(usize, u64)>)>,
        oracle: &dyn StageOracle,
        out: &mut Vec<Envelope>,
    ) {
        if victims.is_empty() {
            return;
        }
        for &(chain, prior) in &victims {
            if let Some((pop, token)) = prior {
                self.journal(WalRecord::FleetRevoke {
                    at_ns: now_ns,
                    pop,
                    chain,
                    token,
                });
                self.assignment.remove(&chain);
            }
        }
        let mut locked: Vec<Vec<usize>> = vec![Vec::new(); self.topologies.len()];
        for (&chain, &(p, _)) in &self.assignment {
            locked[p].push(chain);
        }
        // Only PoPs that can currently hear us — and are not themselves
        // overloaded — may receive refugees. Piling load onto a surging
        // PoP would just move the collapse; if nowhere calm fits, the
        // chain sheds instead (degrade before collapse).
        let mut topos = self.topologies.clone();
        for (i, view) in self.pops.iter().enumerate() {
            if matches!(view.health, PopHealth::Unreachable | PopHealth::Drained)
                || view.overload_fenced
                || view.overload != OverloadLevel::Calm
            {
                topos[i] = Topology::with_servers(0);
            }
        }
        let candidates: Vec<usize> = victims.iter().map(|&(c, _)| c).collect();
        let fp: FleetPlacement = assign_chains(
            &self.chains,
            &topos,
            &locked,
            &candidates,
            &self.profiles,
            oracle,
            self.workers,
        );
        for (chain, prior) in victims {
            self.migrating.remove(&chain);
            match fp.home_of(chain) {
                Some(new_home) => {
                    let token = self.mint_token();
                    self.journal(WalRecord::FleetGrant {
                        at_ns: now_ns,
                        pop: new_home,
                        chain,
                        token,
                    });
                    self.assignment.insert(chain, (new_home, token));
                    let src = prior.map(|(p, _)| p).unwrap_or(new_home);
                    let transfer = self.failover_state(chain, src, token);
                    if transfer.is_some() {
                        self.stats.state_failovers += 1;
                    }
                    let incarnation = self.pops[new_home].incarnation;
                    self.stats.failovers += 1;
                    self.send_tracked(
                        now_ns,
                        new_home,
                        CtrlMsg::Grant {
                            chain,
                            token,
                            incarnation,
                            transfer,
                        },
                        Some(chain),
                        out,
                    );
                }
                None => {
                    self.journal(WalRecord::FleetShed {
                        at_ns: now_ns,
                        chain,
                    });
                    self.shed.insert(chain);
                    self.stats.sheds += 1;
                }
            }
        }
    }

    /// The migration payload for a stateful chain headed to a new home:
    /// the last replicated snapshot, re-fenced under the fresh token.
    fn failover_state(
        &self,
        chain: usize,
        src_site: usize,
        token: u64,
    ) -> Option<CrossSiteTransfer> {
        if !self.stateful.contains(&chain) {
            return None;
        }
        let (dst_site, _) = self.assignment.get(&chain).copied()?;
        let rep = self.state_cache.get(&chain)?;
        Some(CrossSiteTransfer {
            src_site,
            dst_site,
            chain,
            token,
            transfer: rep.transfer.clone(),
        })
    }

    fn heartbeats(&mut self, now_ns: u64, out: &mut Vec<Envelope>) {
        for pop in 0..self.pops.len() {
            let view = self.pops[pop];
            if !matches!(view.health, PopHealth::Healthy | PopHealth::Suspect) {
                continue;
            }
            if now_ns < view.next_hb_ns {
                continue;
            }
            let req_id = self.req_id();
            out.push(Envelope {
                req_id,
                from: Endpoint::Coordinator,
                to: Endpoint::Pop(pop),
                sent_ns: now_ns,
                msg: CtrlMsg::Heartbeat {
                    lease_ns: self.cfg.lease_ns,
                },
            });
            self.pops[pop].last_hb_sent_ns = now_ns;
            self.pops[pop].next_hb_ns = now_ns + self.cfg.heartbeat_every_ns;
        }
    }

    fn retries(&mut self, now_ns: u64, out: &mut Vec<Envelope>) {
        let due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.due_ns <= now_ns)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let Some(mut p) = self.pending.remove(&id) else {
                continue;
            };
            // A drained target's requests are moot; failover owns repair.
            if let Endpoint::Pop(pop) = p.env.to {
                if self.pops[pop].health == PopHealth::Drained
                    && !matches!(p.env.msg, CtrlMsg::Welcome { .. })
                {
                    continue;
                }
            }
            p.env.sent_ns = now_ns;
            out.push(p.env.clone());
            match p.backoff.next_delay() {
                Some(delay) => {
                    p.due_ns = now_ns + delay;
                    self.pending.insert(id, p);
                }
                None => {
                    if let CtrlMsg::Revoke { chain, .. } = p.env.msg {
                        // An unanswerable migration Revoke: abort; the
                        // chain stays journaled at its origin and claim
                        // anti-entropy keeps the two views consistent.
                        if self.migrating.remove(&chain) {
                            self.displaced.remove(&chain);
                        }
                    }
                    self.stats.gave_up += 1;
                }
            }
        }
    }

    // ---- read-side accessors for soaks and reports -------------------

    pub fn assignment(&self) -> &BTreeMap<usize, (usize, u64)> {
        &self.assignment
    }

    pub fn shed(&self) -> &BTreeSet<usize> {
        &self.shed
    }

    pub fn health(&self) -> Vec<PopHealth> {
        self.pops.iter().map(|v| v.health).collect()
    }

    pub fn incarnations(&self) -> Vec<u64> {
        self.pops.iter().map(|v| v.incarnation).collect()
    }

    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    pub fn wal(&self) -> &DecisionLog {
        &self.wal
    }

    /// The bytes a crash would leave on disk.
    pub fn durable_image(&self) -> &[u8] {
        &self.wal_image
    }

    pub fn chains(&self) -> &[ChainSpec] {
        &self.chains
    }

    pub fn topologies(&self) -> &[Topology] {
        &self.topologies
    }

    pub fn profiles(&self) -> &NfProfiles {
        &self.profiles
    }

    pub fn workers(&self) -> Workers {
        self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_core::chains::{canonical_chain, CanonicalChain};
    use lemur_core::Slo;
    use lemur_placer::oracle::AlwaysFits;

    fn catalog(n: usize) -> Vec<ChainSpec> {
        (0..n)
            .map(|i| ChainSpec {
                name: format!("c{i}"),
                graph: canonical_chain([CanonicalChain::Chain1, CanonicalChain::Chain2][i % 2]),
                slo: Some(Slo::elastic_pipe(1e9, 100e9).with_priority((n - i) as u8)),
                aggregate: None,
            })
            .collect()
    }

    fn coordinator(n_chains: usize, n_pops: usize) -> FleetCoordinator {
        FleetCoordinator::new(
            FleetConfig::default(),
            catalog(n_chains),
            Vec::new(),
            vec![Topology::with_servers(2); n_pops],
            NfProfiles::table4(),
            Workers::new(1),
        )
    }

    fn status_with(
        pop: usize,
        incarnation: u64,
        owned: Vec<ChainClaim>,
        overload: OverloadLevel,
    ) -> Envelope {
        Envelope {
            req_id: 0,
            from: Endpoint::Pop(pop),
            to: Endpoint::Coordinator,
            sent_ns: 0,
            msg: CtrlMsg::Status {
                incarnation,
                lease_valid: true,
                owned,
                state: Vec::new(),
                overload,
            },
        }
    }

    fn status_from(pop: usize, incarnation: u64, owned: Vec<ChainClaim>) -> Envelope {
        status_with(pop, incarnation, owned, OverloadLevel::Calm)
    }

    /// The claims a PoP would report for its journaled assignment.
    fn claims_of(c: &FleetCoordinator, pop: usize) -> Vec<ChainClaim> {
        c.assignment()
            .iter()
            .filter(|&(_, &(p, _))| p == pop)
            .map(|(&chain, &(_, token))| ChainClaim { chain, token })
            .collect()
    }

    /// Ack every tracked command in `envs` as its target PoP, accepted.
    fn acks_for(envs: &[Envelope], incarnation: u64) -> Vec<Envelope> {
        envs.iter()
            .filter(|e| e.msg.wants_ack())
            .filter_map(|e| match e.to {
                Endpoint::Pop(p) => Some(Envelope {
                    req_id: 0,
                    from: Endpoint::Pop(p),
                    to: Endpoint::Coordinator,
                    sent_ns: e.sent_ns,
                    msg: CtrlMsg::Ack {
                        of_req: e.req_id,
                        incarnation,
                        accepted: true,
                    },
                }),
                Endpoint::Coordinator => None,
            })
            .collect()
    }

    #[test]
    fn boot_grants_every_chain_and_journals_it() {
        let mut c = coordinator(4, 2);
        let out = c.boot(0, &AlwaysFits);
        let grants = out
            .iter()
            .filter(|e| matches!(e.msg, CtrlMsg::Grant { .. }))
            .count();
        assert_eq!(grants, 4);
        assert_eq!(c.assignment().len(), 4);
        assert_eq!(c.wal().len(), 4);
        assert!(c.shed().is_empty());
        // Every grant is pending until acked.
        assert_eq!(c.pending_len(), 4);
    }

    #[test]
    fn silence_descends_the_ladder_and_drain_respects_the_lease_bound() {
        let cfg = FleetConfig::default();
        let mut c = coordinator(2, 2);
        c.boot(0, &AlwaysFits);
        let pop0_chains = c
            .assignment()
            .values()
            .filter(|&&(pop, _)| pop == 0)
            .count() as u64;
        assert!(pop0_chains > 0, "boot must spread chains across PoPs");
        // Both pops report at t=100µs; then pop 0 goes silent.
        c.tick(
            100_000,
            vec![status_from(0, 1, vec![]), status_from(1, 1, vec![])],
            &AlwaysFits,
        );
        let mut drained_at = None;
        let mut last_hb_before_drain = 0;
        for step in 1..60 {
            let now = 100_000 + step * 100_000;
            let out = c.tick(now, vec![status_from(1, 1, vec![])], &AlwaysFits);
            let hb_to_0 = out
                .iter()
                .any(|e| e.to == Endpoint::Pop(0) && matches!(e.msg, CtrlMsg::Heartbeat { .. }));
            if hb_to_0 && drained_at.is_none() {
                last_hb_before_drain = now;
            }
            if c.health()[0] == PopHealth::Drained && drained_at.is_none() {
                drained_at = Some(now);
            }
            // Silence thresholds hold exactly.
            let silent = now - 100_000;
            if silent < cfg.suspect_after_ns {
                assert_eq!(c.health()[0], PopHealth::Healthy);
            } else if silent < cfg.unreachable_after_ns {
                assert_eq!(c.health()[0], PopHealth::Suspect);
            }
        }
        let drained_at = drained_at.expect("a silent pop must eventually drain");
        assert!(
            drained_at
                >= last_hb_before_drain + cfg.delay_max_ns + cfg.lease_ns + cfg.drain_margin_ns,
            "drained at {drained_at} but a heartbeat sent at {last_hb_before_drain} could \
             still be renewing the lease"
        );
        // Failover moved both chains to pop 1.
        for (&_chain, &(pop, _)) in c.assignment() {
            assert_eq!(pop, 1);
        }
        assert_eq!(c.stats.drains, 1);
        assert_eq!(c.stats.failovers, pop0_chains);
    }

    #[test]
    fn recovery_jumps_the_token_epoch_past_torn_grants() {
        let mut c = coordinator(3, 2);
        c.boot(0, &AlwaysFits);
        let max_granted = c.assignment().values().map(|&(_, t)| t).max().unwrap();
        // Crash with a torn tail: cut into the last record.
        let image = c.durable_image();
        let cut = &image[..image.len() - 5];
        let r = FleetCoordinator::recover(
            FleetConfig::default(),
            catalog(3),
            Vec::new(),
            vec![Topology::with_servers(2); 2],
            NfProfiles::table4(),
            Workers::new(1),
            cut,
            1_000_000,
        );
        // The torn grant is gone from the replayed assignment…
        assert_eq!(r.assignment().len(), 2);
        // …but every token the recovered coordinator can ever mint is
        // strictly newer than anything granted before the crash.
        let mut r = r;
        let fresh = r.mint_token();
        assert!(
            fresh > max_granted,
            "fresh token {fresh:#x} must outrank pre-crash {max_granted:#x}"
        );
    }

    #[test]
    fn status_claims_heal_a_torn_journal() {
        let mut c = coordinator(2, 2);
        let out = c.boot(0, &AlwaysFits);
        // Remember what pop each chain went to.
        let granted: Vec<(usize, usize, u64)> = out
            .iter()
            .filter_map(|e| match (&e.msg, e.to) {
                (CtrlMsg::Grant { chain, token, .. }, Endpoint::Pop(p)) => {
                    Some((*chain, p, *token))
                }
                _ => None,
            })
            .collect();
        // Crash losing the whole journal tail (everything).
        let mut r = FleetCoordinator::recover(
            FleetConfig::default(),
            catalog(2),
            Vec::new(),
            vec![Topology::with_servers(2); 2],
            NfProfiles::table4(),
            Workers::new(1),
            &[],
            500_000,
        );
        assert!(r.assignment().is_empty());
        // The pops still claim their grants; status reports re-teach the
        // coordinator without re-granting.
        for &(chain, pop, token) in &granted {
            r.tick(
                600_000,
                vec![status_from(pop, 1, vec![ChainClaim { chain, token }])],
                &AlwaysFits,
            );
        }
        assert_eq!(r.assignment().len(), 2);
        for &(chain, pop, token) in &granted {
            assert_eq!(r.assignment()[&chain], (pop, token));
        }
        assert_eq!(r.stats.adopted, 2);
    }

    #[test]
    fn recovery_repairs_orphaned_and_dead_assigned_chains() {
        // Build a journal whose tail tears mid-transaction: chain 0 is
        // revoked from a drained pop but its shed record is lost, and
        // chain 1 stays assigned to the drained pop.
        let mut log = lemur_control::wal::DecisionLog::new();
        log.append(WalRecord::FleetGrant {
            at_ns: 0,
            pop: 0,
            chain: 0,
            token: (1 << 40) | 1,
        });
        log.append(WalRecord::FleetGrant {
            at_ns: 0,
            pop: 0,
            chain: 1,
            token: (1 << 40) | 2,
        });
        log.append(WalRecord::FleetPopHealth {
            at_ns: 1,
            pop: 0,
            health: PopHealth::Drained,
        });
        log.append(WalRecord::FleetRevoke {
            at_ns: 2,
            pop: 0,
            chain: 0,
            token: (1 << 40) | 1,
        });
        // (FleetShed for chain 0 and the failover records for chain 1
        // were in the torn tail.)
        let mut r = FleetCoordinator::recover(
            FleetConfig::default(),
            catalog(2),
            Vec::new(),
            vec![Topology::with_servers(2); 2],
            NfProfiles::table4(),
            Workers::new(1),
            &log.encode(),
            1_000_000,
        );
        assert_eq!(r.assignment().len(), 1, "chain 0 is orphaned");
        // Pop 1 keeps reporting; once the grace window passes, repair
        // re-places both stranded chains onto it under fresh tokens.
        let mut out = Vec::new();
        let mut now = 1_000_000;
        while r.assignment().len() != 2 || r.assignment().values().any(|&(p, _)| p != 1) {
            now += 100_000;
            assert!(now < 4_000_000, "repair must fire within the grace window");
            out = r.tick(now, vec![status_from(1, 1, vec![])], &AlwaysFits);
        }
        for (&chain, &(pop, token)) in r.assignment() {
            assert_eq!(pop, 1, "chain {chain} must land on the live pop");
            assert!(
                token >> TOKEN_EPOCH_SHIFT >= 2,
                "repair tokens outrank torn grants"
            );
        }
        assert!(r.shed().is_empty());
        let grants = out
            .iter()
            .filter(|e| matches!(e.msg, CtrlMsg::Grant { .. }) && e.to == Endpoint::Pop(1))
            .count();
        assert_eq!(grants, 2);
        // The journal now replays to exactly the repaired state.
        let replay = r.wal().replay();
        assert_eq!(&replay.owners, r.assignment());
    }

    #[test]
    fn recovered_req_ids_cannot_hit_stale_reply_caches() {
        use crate::pop::PopRuntime;

        // Pre-crash: boot grants land on the pops, seeding their
        // idempotency caches with this incarnation's request ids.
        let mut c = coordinator(4, 2);
        let boot = c.boot(0, &AlwaysFits);
        let pre_crash_ids: Vec<u64> = boot.iter().map(|e| e.req_id).collect();
        let mut pop0 = PopRuntime::new(0, &[], 1_000_000);
        for env in &boot {
            if env.to == Endpoint::Pop(0) {
                pop0.handle(0, env);
            }
        }
        assert!(!pop0.claims().is_empty(), "boot must seat chains on pop 0");

        // Crash and recover; every fresh request id must be disjoint from
        // every pre-crash one, or a cached pre-crash answer could swallow
        // a post-crash command and masquerade as its acknowledgement.
        let mut r = FleetCoordinator::recover(
            FleetConfig::default(),
            catalog(4),
            Vec::new(),
            vec![Topology::with_servers(2); 2],
            NfProfiles::table4(),
            Workers::new(1),
            c.durable_image(),
            1_000_000,
        );
        let out = r.tick(1_000_000, vec![status_from(1, 1, vec![])], &AlwaysFits);
        for env in &out {
            assert!(
                !pre_crash_ids.contains(&env.req_id),
                "post-crash req_id {} collides with a pre-crash one",
                env.req_id
            );
        }
        // A post-crash Welcome actually executes on a pop whose cache is
        // full of pre-crash answers (the end-to-end consequence).
        let welcome = Envelope {
            req_id: r.req_id(),
            from: Endpoint::Coordinator,
            to: Endpoint::Pop(0),
            sent_ns: 1_000_000,
            msg: CtrlMsg::Welcome { incarnation: 2 },
        };
        pop0.handle(1_000_000, &welcome);
        assert_eq!(pop0.incarnation(), 2, "welcome must not be swallowed");
        assert!(pop0.claims().is_empty());
        assert_eq!(pop0.stats.duplicate_replays, 0);
    }

    #[test]
    fn drained_pop_talking_again_is_welcomed_not_believed() {
        let mut c = coordinator(2, 2);
        c.boot(0, &AlwaysFits);
        c.tick(
            100_000,
            vec![status_from(0, 1, vec![]), status_from(1, 1, vec![])],
            &AlwaysFits,
        );
        // Silence pop 0 until it drains.
        let mut now = 100_000;
        while c.health()[0] != PopHealth::Drained {
            now += 100_000;
            assert!(now < 10_000_000, "must drain eventually");
            c.tick(now, vec![status_from(1, 1, vec![])], &AlwaysFits);
        }
        // It comes back claiming its old chains: it gets a Welcome, and
        // none of its claims are adopted.
        let stale_claims: Vec<ChainClaim> = vec![ChainClaim { chain: 0, token: 1 }];
        let before = c.assignment().clone();
        let out = c.tick(
            now + 100_000,
            vec![status_from(0, 1, stale_claims)],
            &AlwaysFits,
        );
        assert!(out
            .iter()
            .any(|e| matches!(e.msg, CtrlMsg::Welcome { .. }) && e.to == Endpoint::Pop(0)));
        assert_eq!(c.assignment(), &before, "stale claims must not resurrect");
        // The welcome ack re-admits it, empty and healthy.
        let welcome_req = out
            .iter()
            .find(|e| matches!(e.msg, CtrlMsg::Welcome { .. }))
            .unwrap()
            .req_id;
        c.tick(
            now + 200_000,
            vec![Envelope {
                req_id: 0,
                from: Endpoint::Pop(0),
                to: Endpoint::Coordinator,
                sent_ns: now + 200_000,
                msg: CtrlMsg::Ack {
                    of_req: welcome_req,
                    incarnation: 2,
                    accepted: true,
                },
            }],
            &AlwaysFits,
        );
        assert_eq!(c.health()[0], PopHealth::Healthy);
        assert_eq!(c.incarnations()[0], 2);
        assert_eq!(c.stats.welcomes, 1);
    }

    #[test]
    fn sustained_shedding_moves_the_lowest_priority_chain_then_calm_restores_it() {
        let mut c = coordinator(4, 2);
        let boot = c.boot(0, &AlwaysFits);
        c.tick(50_000, acks_for(&boot, 1), &AlwaysFits);
        assert_eq!(c.pending_len(), 0);
        let pop0_chains: Vec<usize> = claims_of(&c, 0).iter().map(|cl| cl.chain).collect();
        assert!(pop0_chains.len() >= 2, "boot must spread chains");
        // catalog() priorities descend with the index, so pop 0's
        // highest-index chain is its lowest-priority one.
        let expect_victim = *pop0_chains.iter().max().unwrap();
        let expect_top = *pop0_chains.iter().min().unwrap();

        // Three consecutive Shedding reports trigger the rebalance.
        let mut out = Vec::new();
        for step in 1..=3u64 {
            out = c.tick(
                50_000 + step * 100_000,
                vec![
                    status_with(0, 1, claims_of(&c, 0), OverloadLevel::Shedding),
                    status_from(1, 1, claims_of(&c, 1)),
                ],
                &AlwaysFits,
            );
        }
        let revoke = out
            .iter()
            .find(|e| matches!(e.msg, CtrlMsg::Revoke { .. }) && e.to == Endpoint::Pop(0))
            .expect("three shedding reports must start a migration");
        let CtrlMsg::Revoke { chain: victim, .. } = revoke.msg else {
            unreachable!()
        };
        assert_eq!(victim, expect_victim, "move the lowest-priority chain");
        assert_ne!(victim, expect_top, "never the top-priority chain");
        assert_eq!(c.stats.overload_rebalances, 1);

        // The owner acks the release; only then is the chain re-seated —
        // on pop 1, because pop 0 is fenced while overloaded.
        let out = c.tick(450_000, acks_for(&out, 1), &AlwaysFits);
        let grant = out
            .iter()
            .find(|e| matches!(e.msg, CtrlMsg::Grant { chain, .. } if chain == victim))
            .expect("an acked release must be followed by a grant");
        assert_eq!(grant.to, Endpoint::Pop(1), "refugees avoid the fenced pop");
        c.tick(550_000, acks_for(&out, 1), &AlwaysFits);
        assert_eq!(c.assignment()[&victim].0, 1);
        assert_eq!(c.stats.failovers, 1, "the move is a fenced failover");

        // Three Calm reports unfence pop 0 and send the chain home.
        let mut out = Vec::new();
        for step in 1..=3u64 {
            out = c.tick(
                550_000 + step * 100_000,
                vec![
                    status_from(0, 1, claims_of(&c, 0)),
                    status_from(1, 1, claims_of(&c, 1)),
                ],
                &AlwaysFits,
            );
        }
        assert!(
            out.iter().any(
                |e| matches!(e.msg, CtrlMsg::Revoke { chain, .. } if chain == victim)
                    && e.to == Endpoint::Pop(1)
            ),
            "calm must start the homecoming migration"
        );
        assert_eq!(c.stats.overload_restores, 1);
        let out = c.tick(950_000, acks_for(&out, 1), &AlwaysFits);
        let grant = out
            .iter()
            .find(|e| matches!(e.msg, CtrlMsg::Grant { chain, .. } if chain == victim))
            .expect("the released chain must be re-granted");
        assert_eq!(grant.to, Endpoint::Pop(0), "displaced chains head home");
        c.tick(1_050_000, acks_for(&out, 1), &AlwaysFits);
        assert_eq!(c.assignment()[&victim].0, 0);
        assert_eq!(c.pending_len(), 0);
        // The journal replays to exactly the round-tripped state.
        assert_eq!(&c.wal().replay().owners, c.assignment());
    }

    #[test]
    fn failover_refugees_avoid_surging_pops() {
        let mut c = coordinator(6, 3);
        let boot = c.boot(0, &AlwaysFits);
        c.tick(50_000, acks_for(&boot, 1), &AlwaysFits);
        let pop0_chains: Vec<usize> = claims_of(&c, 0).iter().map(|cl| cl.chain).collect();
        let pop2_chains: Vec<usize> = claims_of(&c, 2).iter().map(|cl| cl.chain).collect();
        assert!(!pop0_chains.is_empty() && !pop2_chains.is_empty());

        // Pop 0 goes silent; pop 2 keeps reporting but is Surging the
        // whole time. When pop 0 drains, its chains must all land on the
        // only calm survivor, pop 1 — never on the surging pop 2.
        let mut now = 50_000;
        let mut granted_to_2 = false;
        while c.health()[0] != PopHealth::Drained {
            now += 100_000;
            assert!(now < 10_000_000, "must drain eventually");
            let out = c.tick(
                now,
                vec![
                    status_from(1, 1, claims_of(&c, 1)),
                    status_with(2, 1, claims_of(&c, 2), OverloadLevel::Surging),
                ],
                &AlwaysFits,
            );
            granted_to_2 |= out
                .iter()
                .any(|e| matches!(e.msg, CtrlMsg::Grant { .. }) && e.to == Endpoint::Pop(2));
        }
        assert!(!granted_to_2, "a surging pop must receive no refugees");
        for &chain in &pop0_chains {
            assert_eq!(
                c.assignment()[&chain].0,
                1,
                "chain {chain} must fail over to the calm pop"
            );
        }
        for &chain in &pop2_chains {
            assert_eq!(c.assignment()[&chain].0, 2, "pop 2 keeps its own chains");
        }
        assert_eq!(c.stats.sheds, 0);
        assert_eq!(
            c.stats.overload_rebalances, 0,
            "Surging alone moves nothing"
        );
    }
}
