//! Bounded, jittered exponential backoff for unacknowledged requests.
//!
//! Retries over a lossy channel must be *seeded* (soaks replay
//! bit-identically), *bounded* (a silent PoP eventually stops being
//! retried and the degradation ladder takes over), and *jittered* (a
//! storm of simultaneous losses must not re-synchronize into a retry
//! thundering herd).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The declared limits a backoff schedule must stay inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First retry delay (before jitter).
    pub base_ns: u64,
    /// Exponential growth is clamped at this delay (before jitter).
    pub cap_ns: u64,
    /// Retries after which the sender gives up and leaves repair to the
    /// periodic status-report anti-entropy.
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ns: 200_000,
            cap_ns: 1_600_000,
            max_attempts: 6,
        }
    }
}

/// One request's retry schedule: delay *n* is
/// `min(cap, base << n) + jitter`, jitter uniform in `[0, delay/2]`.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: BackoffPolicy,
    rng: StdRng,
    attempts: u32,
}

impl Backoff {
    pub fn new(policy: BackoffPolicy, seed: u64) -> Backoff {
        Backoff {
            policy,
            rng: StdRng::seed_from_u64(seed ^ 0xb0ff_0ff5),
            attempts: 0,
        }
    }

    /// The next retry delay, or `None` once the attempt budget is spent.
    pub fn next_delay(&mut self) -> Option<u64> {
        if self.attempts >= self.policy.max_attempts {
            return None;
        }
        let shift = self.attempts.min(20);
        let exp = self
            .policy
            .base_ns
            .saturating_shl(shift)
            .min(self.policy.cap_ns);
        let jitter = self.rng.gen_range(0..=exp / 2);
        self.attempts += 1;
        Some(exp.saturating_add(jitter))
    }

    /// Retries consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// True once [`Backoff::next_delay`] would return `None`.
    pub fn exhausted(&self) -> bool {
        self.attempts >= self.policy.max_attempts
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(policy: BackoffPolicy, seed: u64) -> Vec<u64> {
        let mut b = Backoff::new(policy, seed);
        let mut out = Vec::new();
        while let Some(d) = b.next_delay() {
            out.push(d);
        }
        out
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let p = BackoffPolicy::default();
        assert_eq!(schedule(p, 7), schedule(p, 7));
        assert_ne!(
            schedule(p, 7),
            schedule(p, 8),
            "different seeds must desynchronize retries"
        );
    }

    #[test]
    fn every_delay_is_jittered_within_declared_limits() {
        let p = BackoffPolicy {
            base_ns: 100_000,
            cap_ns: 800_000,
            max_attempts: 8,
        };
        for seed in 0..50 {
            for (n, d) in schedule(p, seed).iter().enumerate() {
                let exp = (p.base_ns << n.min(20)).min(p.cap_ns);
                assert!(
                    (exp..=exp + exp / 2).contains(d),
                    "seed {seed} attempt {n}: delay {d} outside [{exp}, {}]",
                    exp + exp / 2
                );
            }
        }
    }

    #[test]
    fn attempts_are_bounded_and_exhaustion_is_sticky() {
        let p = BackoffPolicy {
            max_attempts: 4,
            ..BackoffPolicy::default()
        };
        let mut b = Backoff::new(p, 3);
        for _ in 0..4 {
            assert!(!b.exhausted());
            assert!(b.next_delay().is_some());
        }
        assert!(b.exhausted());
        assert_eq!(b.next_delay(), None);
        assert_eq!(b.next_delay(), None, "exhaustion never un-happens");
        assert_eq!(b.attempts(), 4);
    }

    #[test]
    fn growth_is_exponential_until_the_cap() {
        let p = BackoffPolicy {
            base_ns: 100,
            cap_ns: 1_600,
            max_attempts: 10,
        };
        // Strip jitter by checking the floor of each delay.
        let floors: Vec<u64> = schedule(p, 1)
            .iter()
            .enumerate()
            .map(|(n, _)| (p.base_ns << n.min(20)).min(p.cap_ns))
            .collect();
        assert_eq!(
            floors,
            vec![100, 200, 400, 800, 1_600, 1_600, 1_600, 1_600, 1_600, 1_600]
        );
    }

    #[test]
    fn jitter_actually_varies() {
        let p = BackoffPolicy {
            base_ns: 1_000_000,
            cap_ns: 1_000_000,
            max_attempts: 32,
        };
        let s = schedule(p, 11);
        let distinct: std::collections::BTreeSet<u64> = s.iter().copied().collect();
        assert!(
            distinct.len() > 8,
            "32 same-floor delays should spread: {s:?}"
        );
    }

    #[test]
    fn huge_base_never_overflows() {
        let p = BackoffPolicy {
            base_ns: u64::MAX / 2,
            cap_ns: u64::MAX / 2,
            max_attempts: 6,
        };
        for d in schedule(p, 0) {
            assert!(d >= u64::MAX / 2);
        }
    }
}
