//! Replay the checked-in regression corpus.
//!
//! Every corpus entry is a shrunk case a fuzzing run once flagged. Two
//! kinds exist:
//!
//! * `expect_divergence_with_injected_bug = false`: a case that once
//!   diverged for real. It must agree under sound options forever.
//! * `expect_divergence_with_injected_bug = true`: a sentinel minimized
//!   against the compiler's deliberate packing bug. It must agree under
//!   sound options AND still diverge when the bug is injected — proving
//!   the detector and the corpus format can actually catch a
//!   miscompilation end to end.

use lemur_fuzz::corpus::{corpus_dir, load_dir, to_json, CorpusEntry};
use lemur_fuzz::diff::{diff_case, diff_case_injected, DiffOutcome};

#[test]
fn corpus_is_nonempty_and_replays() {
    let entries = load_dir(&corpus_dir()).expect("corpus dir must load");
    assert!(
        entries.len() >= 2,
        "expected at least two checked-in corpus entries"
    );
    for e in &entries {
        match diff_case(&e.case) {
            DiffOutcome::Agree => {}
            DiffOutcome::Diverged(d) => {
                panic!(
                    "corpus entry {} diverges under sound options: {d:?}",
                    e.name
                )
            }
            DiffOutcome::Skipped(s) => {
                panic!("corpus entry {} no longer compiles: {s:?}", e.name)
            }
        }
        if e.expect_divergence_with_injected_bug {
            assert!(
                matches!(diff_case_injected(&e.case), DiffOutcome::Diverged(_)),
                "corpus entry {} no longer trips the injected packing bug \
                 (detector or bug changed?)",
                e.name
            );
        }
    }
}

#[test]
fn corpus_entries_are_minimal() {
    for e in load_dir(&corpus_dir()).expect("corpus dir must load") {
        assert!(
            e.case.program.num_tables() <= 3,
            "corpus entry {} has {} tables; re-shrink it",
            e.name,
            e.case.program.num_tables()
        );
        assert!(
            e.case.packets.len() <= 3,
            "corpus entry {} has {} packets; re-shrink it",
            e.name,
            e.case.packets.len()
        );
    }
}

#[test]
fn corpus_files_roundtrip_canonically() {
    // Re-encoding a loaded entry must preserve semantics (fingerprint),
    // so corpus files can be regenerated without churn.
    for e in load_dir(&corpus_dir()).expect("corpus dir must load") {
        let back = lemur_fuzz::corpus::from_json(&to_json(&e)).unwrap();
        assert_eq!(
            back.case.program.fingerprint(),
            e.case.program.fingerprint()
        );
        assert_eq!(back.case.packets, e.case.packets);
    }
}

/// Regenerate the corpus from fixed seeds. Run manually after a
/// generator or IR change:
///
/// ```text
/// cargo test -p lemur-fuzz --test corpus_replay -- --ignored regenerate
/// ```
#[test]
#[ignore = "writes crates/fuzz/corpus/*.json; run explicitly to regenerate"]
fn regenerate_corpus() {
    use lemur_fuzz::{run_seed, RunOptions};
    let opts = RunOptions {
        inject_bug: true,
        max_failures_per_seed: 1,
    };
    let mut written = 0usize;
    for seed in 0u64..64 {
        if written >= 3 {
            break;
        }
        let report = run_seed(seed, 200, opts);
        let Some(f) = report.failures.into_iter().next() else {
            continue;
        };
        let entry = CorpusEntry {
            name: format!("injected-bug-seed{seed}"),
            expect_divergence_with_injected_bug: true,
            case: f.case,
        };
        let path = corpus_dir().join(format!("injected_bug_seed{seed}.json"));
        std::fs::create_dir_all(corpus_dir()).unwrap();
        std::fs::write(&path, to_json(&entry)).unwrap();
        written += 1;
        println!("wrote {} ({})", path.display(), f.divergence.detail);
    }
    assert!(written >= 2, "not enough injected-bug cases found");
}
