//! Property: the conservative analytic stage estimator (§5.2) dominates
//! the stage-packing compiler on random programs.
//!
//! The paper's motivation for calling a real compiler instead of the
//! estimate is exactly this one-sided error: "such estimates were very
//! conservative. For the 10 NAT placement, it estimated 14 stages, while
//! the compiler could fit these into 12". Dominance (estimate >= packed)
//! is what makes the estimator a safe admission filter; if packing ever
//! exceeded the estimate, the placer's pre-screening would admit
//! placements the switch cannot hold.

use lemur_fuzz::gen::gen_program;
use lemur_p4sim::compiler::{compile, estimate_conservative_with, CompileOptions};
use lemur_p4sim::resources::PisaModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn roomy_model() -> PisaModel {
    PisaModel {
        num_stages: 64,
        ..PisaModel::default()
    }
}

proptest! {
    #[test]
    fn estimate_dominates_packed_stage_usage(seed in any::<u64>()) {
        let (program, _entries) = gen_program(&mut StdRng::seed_from_u64(seed));
        let model = roomy_model();
        for opts in [
            CompileOptions::default(),
            CompileOptions { effect_deps: true, ..CompileOptions::default() },
        ] {
            let est = estimate_conservative_with(&program, &model, &opts);
            if let Ok(packed) = compile(&program, &model, opts) {
                prop_assert!(
                    packed.num_stages_used <= est,
                    "packed used {} stages but the conservative estimate was {} \
                     (effect_deps={})",
                    packed.num_stages_used,
                    est,
                    opts.effect_deps
                );
            }
        }
    }

    #[test]
    fn estimate_itself_never_panics_and_is_deterministic(seed in any::<u64>()) {
        let (program, _entries) = gen_program(&mut StdRng::seed_from_u64(seed));
        let model = roomy_model();
        let opts = CompileOptions { effect_deps: true, ..CompileOptions::default() };
        let a = estimate_conservative_with(&program, &model, &opts);
        let b = estimate_conservative_with(&program, &model, &opts);
        prop_assert_eq!(a, b);
    }
}
