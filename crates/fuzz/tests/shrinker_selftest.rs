//! Shrinker self-test against the compiler's deliberate packing bug.
//!
//! `CompileOptions::inject_packing_bug` drops anti-dependency edges and
//! prepends tables within their stage, so a writer can overtake an
//! earlier reader sharing a stage — a realistic miscompilation with a
//! tiny minimal witness. The self-test proves the whole loop closes:
//! generation finds it, the differ flags it, and the shrinker reduces it
//! to the minimal shape, deterministically.

use lemur_fuzz::diff::{diff_case_injected, DiffOutcome};
use lemur_fuzz::gen::{gen_case, DiffCase};
use lemur_fuzz::shrink::shrink;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn find_divergence() -> DiffCase {
    for seed in 0u64..32 {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let case = gen_case(&mut rng);
            if matches!(diff_case_injected(&case), DiffOutcome::Diverged(_)) {
                return case;
            }
        }
    }
    panic!("injected packing bug produced no divergence in 32 seeds x 200 trials");
}

#[test]
fn injected_bug_shrinks_small_and_deterministically() {
    let case = find_divergence();
    let diverges = |c: &DiffCase| matches!(diff_case_injected(c), DiffOutcome::Diverged(_));

    let (a, ra) = shrink(&case, diverges);
    let (b, rb) = shrink(&case, diverges);

    // Minimal: an anti-dependency violation needs one reader, one writer,
    // one packet.
    assert!(
        a.program.num_tables() <= 2,
        "shrunk case still has {} tables",
        a.program.num_tables()
    );
    assert!(
        a.packets.len() <= 3,
        "shrunk case still has {} packets",
        a.packets.len()
    );
    // The minimized case still diverges and still validates.
    assert!(diverges(&a));
    a.program.validate().unwrap();

    // Deterministic: byte-for-byte identical minimization both times.
    assert_eq!(ra, rb);
    assert_eq!(a.program.fingerprint(), b.program.fingerprint());
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.entries.len(), b.entries.len());
}

#[test]
fn shrunk_case_agrees_without_the_bug() {
    // The divergence is the *bug's* fault, not the case's: under sound
    // options the minimized case must pass, making it a valid
    // regression-corpus sentinel.
    let case = find_divergence();
    let (small, _) = shrink(&case, |c| {
        matches!(diff_case_injected(c), DiffOutcome::Diverged(_))
    });
    assert!(matches!(
        lemur_fuzz::diff::diff_case(&small),
        DiffOutcome::Agree
    ));
}
