//! Delta-debugging shrinker: minimize a diverging `(program, entries,
//! packets)` case while preserving the divergence.
//!
//! Fully deterministic greedy reduction — candidate edits are tried in a
//! fixed order and an edit is kept iff the supplied check still reports a
//! divergence. Passes repeat to a fixpoint:
//!
//! 1. remove packets (one at a time, last first);
//! 2. remove tables (renumbering `TableId`s and pruning the control tree
//!    and the removed table's entries);
//! 3. flatten branching control (`Switch`/`If`/`Exclusive` → `Seq`);
//! 4. remove table entries;
//! 5. remove action primitives;
//! 6. truncate packet bytes (binary chop from the tail).
//!
//! The check is the *caller's* divergence predicate, so the same shrinker
//! minimizes axis-1 compiler divergences and injected-bug self-tests.

use crate::gen::DiffCase;
use lemur_p4sim::ir::{Control, TableId};

/// Shrink `case` while `still_failing` holds. Returns the minimized case
/// and the number of successful reductions applied.
pub fn shrink<F>(case: &DiffCase, still_failing: F) -> (DiffCase, usize)
where
    F: Fn(&DiffCase) -> bool,
{
    debug_assert!(still_failing(case), "shrink() called on a passing case");
    let mut cur = case.clone();
    let mut applied = 0usize;
    loop {
        let before = applied;
        applied += pass_remove_packets(&mut cur, &still_failing);
        applied += pass_remove_tables(&mut cur, &still_failing);
        applied += pass_flatten_control(&mut cur, &still_failing);
        applied += pass_remove_entries(&mut cur, &still_failing);
        applied += pass_remove_primitives(&mut cur, &still_failing);
        applied += pass_truncate_packets(&mut cur, &still_failing);
        if applied == before {
            return (cur, applied);
        }
    }
}

fn pass_remove_packets<F: Fn(&DiffCase) -> bool>(cur: &mut DiffCase, check: &F) -> usize {
    let mut n = 0;
    let mut i = cur.packets.len();
    while i > 0 {
        i -= 1;
        if cur.packets.len() == 1 {
            break;
        }
        let mut cand = cur.clone();
        cand.packets.remove(i);
        if check(&cand) {
            *cur = cand;
            n += 1;
        }
    }
    n
}

/// Rewrite a control tree after removing table `t`: applies of `t` become
/// `Nop`, later ids shift down by one.
fn renumber(c: &Control, t: usize) -> Control {
    match c {
        Control::Seq(xs) => Control::Seq(xs.iter().map(|x| renumber(x, t)).collect()),
        Control::Apply(TableId(x)) => {
            if *x == t {
                Control::Nop
            } else if *x > t {
                Control::Apply(TableId(*x - 1))
            } else {
                Control::Apply(TableId(*x))
            }
        }
        Control::Switch { on, cases, default } => Control::Switch {
            on: *on,
            cases: cases
                .iter()
                .map(|(v, body)| (*v, renumber(body, t)))
                .collect(),
            default: default.as_ref().map(|d| Box::new(renumber(d, t))),
        },
        Control::If {
            field,
            op,
            value,
            then_,
        } => Control::If {
            field: *field,
            op: *op,
            value: *value,
            then_: Box::new(renumber(then_, t)),
        },
        Control::Exclusive(xs) => Control::Exclusive(xs.iter().map(|x| renumber(x, t)).collect()),
        Control::Nop => Control::Nop,
    }
}

fn remove_table(case: &DiffCase, t: usize) -> DiffCase {
    let mut out = case.clone();
    out.program.tables.remove(t);
    out.program.control = out.program.control.as_ref().map(|c| renumber(c, t));
    out.entries = case
        .entries
        .iter()
        .filter(|(ti, _)| *ti != t)
        .map(|(ti, e)| (if *ti > t { *ti - 1 } else { *ti }, e.clone()))
        .collect();
    out
}

fn pass_remove_tables<F: Fn(&DiffCase) -> bool>(cur: &mut DiffCase, check: &F) -> usize {
    let mut n = 0;
    let mut t = cur.program.num_tables();
    while t > 0 {
        t -= 1;
        if cur.program.num_tables() == 1 {
            break;
        }
        let cand = remove_table(cur, t);
        if check(&cand) {
            *cur = cand;
            n += 1;
        }
    }
    n
}

/// Enumerate flattening candidates: each branch node, addressed by a
/// preorder index, rewritten to a `Seq` of all its children.
fn flatten_at(c: &Control, target: usize, next: &mut usize) -> Control {
    let my = *next;
    *next += 1;
    let hit = my == target;
    match c {
        Control::Seq(xs) => Control::Seq(xs.iter().map(|x| flatten_at(x, target, next)).collect()),
        Control::Switch { on, cases, default } => {
            if hit {
                let mut seq: Vec<Control> = cases.iter().map(|(_, b)| b.clone()).collect();
                if let Some(d) = default {
                    seq.push((**d).clone());
                }
                Control::Seq(seq)
            } else {
                Control::Switch {
                    on: *on,
                    cases: cases
                        .iter()
                        .map(|(v, b)| (*v, flatten_at(b, target, next)))
                        .collect(),
                    default: default
                        .as_ref()
                        .map(|d| Box::new(flatten_at(d, target, next))),
                }
            }
        }
        Control::If {
            field,
            op,
            value,
            then_,
        } => {
            if hit {
                (**then_).clone()
            } else {
                Control::If {
                    field: *field,
                    op: *op,
                    value: *value,
                    then_: Box::new(flatten_at(then_, target, next)),
                }
            }
        }
        Control::Exclusive(xs) => {
            if hit {
                Control::Seq(xs.clone())
            } else {
                Control::Exclusive(xs.iter().map(|x| flatten_at(x, target, next)).collect())
            }
        }
        Control::Apply(t) => Control::Apply(*t),
        Control::Nop => Control::Nop,
    }
}

fn count_nodes(c: &Control) -> usize {
    1 + match c {
        Control::Seq(xs) | Control::Exclusive(xs) => xs.iter().map(count_nodes).sum(),
        Control::Switch { cases, default, .. } => {
            cases.iter().map(|(_, b)| count_nodes(b)).sum::<usize>()
                + default.as_ref().map(|d| count_nodes(d)).unwrap_or(0)
        }
        Control::If { then_, .. } => count_nodes(then_),
        Control::Apply(_) | Control::Nop => 0,
    }
}

fn pass_flatten_control<F: Fn(&DiffCase) -> bool>(cur: &mut DiffCase, check: &F) -> usize {
    let mut n = 0;
    let Some(control) = cur.program.control.clone() else {
        return 0;
    };
    let total = count_nodes(&control);
    for target in 0..total {
        let Some(c) = cur.program.control.as_ref() else {
            break;
        };
        let mut next = 0usize;
        let flattened = flatten_at(c, target, &mut next);
        if &flattened == c {
            continue;
        }
        let mut cand = cur.clone();
        cand.program.control = Some(flattened);
        if cand.program.validate().is_ok() && check(&cand) {
            *cur = cand;
            n += 1;
        }
    }
    n
}

fn pass_remove_entries<F: Fn(&DiffCase) -> bool>(cur: &mut DiffCase, check: &F) -> usize {
    let mut n = 0;
    let mut i = cur.entries.len();
    while i > 0 {
        i -= 1;
        let mut cand = cur.clone();
        cand.entries.remove(i);
        if check(&cand) {
            *cur = cand;
            n += 1;
        }
    }
    n
}

fn pass_remove_primitives<F: Fn(&DiffCase) -> bool>(cur: &mut DiffCase, check: &F) -> usize {
    let mut n = 0;
    for t in 0..cur.program.num_tables() {
        for a in 0..cur.program.tables[t].actions.len() {
            let mut p = cur.program.tables[t].actions[a].primitives.len();
            while p > 0 {
                p -= 1;
                if cur.program.tables[t].actions[a].primitives.len() == 1 {
                    break;
                }
                let mut cand = cur.clone();
                cand.program.tables[t].actions[a].primitives.remove(p);
                if check(&cand) {
                    *cur = cand;
                    n += 1;
                }
            }
        }
    }
    n
}

fn pass_truncate_packets<F: Fn(&DiffCase) -> bool>(cur: &mut DiffCase, check: &F) -> usize {
    let mut n = 0;
    for i in 0..cur.packets.len() {
        // Binary chop from the tail: try halving the kept length.
        loop {
            let len = cur.packets[i].len();
            if len <= 1 {
                break;
            }
            let mut cand = cur.clone();
            cand.packets[i].truncate(len / 2);
            if check(&cand) {
                *cur = cand;
                n += 1;
            } else {
                break;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Shrinking against a trivially-true predicate collapses to the
    /// structural minimum: one packet, one table.
    #[test]
    fn shrink_to_structural_minimum() {
        let case = gen_case(&mut StdRng::seed_from_u64(3));
        let (small, _) = shrink(&case, |_| true);
        assert_eq!(small.packets.len(), 1);
        assert_eq!(small.program.num_tables(), 1);
        assert!(small.entries.is_empty());
        assert_eq!(small.packets[0].len(), 1);
        small.program.validate().unwrap();
    }

    /// A predicate pinned to a specific table keeps exactly that table.
    #[test]
    fn shrink_preserves_predicate() {
        let case = gen_case(&mut StdRng::seed_from_u64(4));
        assert!(case.program.num_tables() >= 2);
        let name = case.program.tables[1].name.clone();
        let (small, _) = shrink(&case, |c| c.program.tables.iter().any(|t| t.name == name));
        assert_eq!(small.program.num_tables(), 1);
        assert_eq!(small.program.tables[0].name, name);
        small.program.validate().unwrap();
    }

    /// Deterministic: same input and predicate, same output.
    #[test]
    fn shrink_is_deterministic() {
        let case = gen_case(&mut StdRng::seed_from_u64(5));
        let (a, na) = shrink(&case, |c| c.program.num_tables() >= 2);
        let (b, nb) = shrink(&case, |c| c.program.num_tables() >= 2);
        assert_eq!(na, nb);
        assert_eq!(a.program.fingerprint(), b.program.fingerprint());
        assert_eq!(a.packets, b.packets);
    }
}
