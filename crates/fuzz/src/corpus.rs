//! Regression corpus: JSON round-trip for shrunk differential cases.
//!
//! Minimized failing cases are checked in under `crates/fuzz/corpus/` and
//! replayed by `cargo test` (see `tests/corpus_replay.rs`), so every
//! divergence the fuzzer ever found stays fixed. The vendored `serde`
//! stand-in has no derive machinery, so encoding is written out by hand
//! against its [`Value`] tree.

use crate::gen::DiffCase;
use lemur_p4sim::ir::{
    Action, CmpOp, Control, FieldRef, MatchKind, MatchValue, P4Program, Primitive, Table,
    TableEntry, TableId,
};
use serde::Value;
use std::path::{Path, PathBuf};

/// One corpus file: a named, minimized case plus the expectation it
/// encodes.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    pub name: String,
    /// What the case regresses: `true` means "diverges iff the known
    /// packing bug is injected" (a sentinel for shrinker+detector
    /// health); `false` means "must agree under sound options".
    pub expect_divergence_with_injected_bug: bool,
    pub case: DiffCase,
}

// ---- encoding ----------------------------------------------------------

fn int(v: u64) -> Value {
    Value::Int(v as i128)
}

fn field_str(f: FieldRef) -> String {
    match f {
        FieldRef::EthSrc => "EthSrc".into(),
        FieldRef::EthDst => "EthDst".into(),
        FieldRef::EtherType => "EtherType".into(),
        FieldRef::VlanVid => "VlanVid".into(),
        FieldRef::Ipv4Src => "Ipv4Src".into(),
        FieldRef::Ipv4Dst => "Ipv4Dst".into(),
        FieldRef::Ipv4Proto => "Ipv4Proto".into(),
        FieldRef::Ipv4Ttl => "Ipv4Ttl".into(),
        FieldRef::L4Sport => "L4Sport".into(),
        FieldRef::L4Dport => "L4Dport".into(),
        FieldRef::NshSpi => "NshSpi".into(),
        FieldRef::NshSi => "NshSi".into(),
        FieldRef::FlowHash(n) => format!("FlowHash:{n}"),
        FieldRef::Meta(n) => format!("Meta:{n}"),
    }
}

fn match_kind_str(k: MatchKind) -> &'static str {
    match k {
        MatchKind::Exact => "exact",
        MatchKind::Lpm => "lpm",
        MatchKind::Ternary => "ternary",
        MatchKind::Range => "range",
    }
}

fn match_value(v: &MatchValue) -> Value {
    match *v {
        MatchValue::Any => Value::object(vec![("k".into(), Value::Str("any".into()))]),
        MatchValue::Exact(x) => Value::object(vec![
            ("k".into(), Value::Str("exact".into())),
            ("v".into(), int(x)),
        ]),
        MatchValue::Lpm {
            value,
            prefix_len,
            width,
        } => Value::object(vec![
            ("k".into(), Value::Str("lpm".into())),
            ("v".into(), int(value)),
            ("plen".into(), int(prefix_len as u64)),
            ("width".into(), int(width as u64)),
        ]),
        MatchValue::Ternary { value, mask } => Value::object(vec![
            ("k".into(), Value::Str("ternary".into())),
            ("v".into(), int(value)),
            ("mask".into(), int(mask)),
        ]),
        MatchValue::Range { lo, hi } => Value::object(vec![
            ("k".into(), Value::Str("range".into())),
            ("lo".into(), int(lo)),
            ("hi".into(), int(hi)),
        ]),
    }
}

fn primitive(p: &Primitive) -> Value {
    let tag = |t: &str, rest: Vec<(String, Value)>| {
        let mut kv = vec![("p".into(), Value::Str(t.into()))];
        kv.extend(rest);
        Value::object(kv)
    };
    match *p {
        Primitive::SetFieldConst(f, v) => tag(
            "set_const",
            vec![("f".into(), Value::Str(field_str(f))), ("v".into(), int(v))],
        ),
        Primitive::SetFieldFromData(f, n) => tag(
            "set_data",
            vec![
                ("f".into(), Value::Str(field_str(f))),
                ("n".into(), int(n as u64)),
            ],
        ),
        Primitive::Drop => tag("drop", vec![]),
        Primitive::SetEgressFromData(n) => tag("egress_data", vec![("n".into(), int(n as u64))]),
        Primitive::SetEgressConst(p) => tag("egress_const", vec![("v".into(), int(p as u64))]),
        Primitive::PushVlanFromData(n) => tag("push_vlan", vec![("n".into(), int(n as u64))]),
        Primitive::PopVlan => tag("pop_vlan", vec![]),
        Primitive::PushNshFromData(n) => tag("push_nsh", vec![("n".into(), int(n as u64))]),
        Primitive::PopNsh => tag("pop_nsh", vec![]),
        Primitive::DecNshSi => tag("dec_si", vec![]),
        Primitive::NoOp => tag("nop", vec![]),
    }
}

fn control(c: &Control) -> Value {
    let tag = |t: &str, rest: Vec<(String, Value)>| {
        let mut kv = vec![("c".into(), Value::Str(t.into()))];
        kv.extend(rest);
        Value::object(kv)
    };
    match c {
        Control::Seq(xs) => tag(
            "seq",
            vec![("xs".into(), Value::Array(xs.iter().map(control).collect()))],
        ),
        Control::Apply(TableId(t)) => tag("apply", vec![("t".into(), int(*t as u64))]),
        Control::Switch { on, cases, default } => tag(
            "switch",
            vec![
                ("on".into(), Value::Str(field_str(*on))),
                (
                    "cases".into(),
                    Value::Array(
                        cases
                            .iter()
                            .map(|(v, b)| Value::Array(vec![int(*v), control(b)]))
                            .collect(),
                    ),
                ),
                (
                    "default".into(),
                    default.as_ref().map(|d| control(d)).unwrap_or(Value::Null),
                ),
            ],
        ),
        Control::If {
            field,
            op,
            value,
            then_,
        } => tag(
            "if",
            vec![
                ("field".into(), Value::Str(field_str(*field))),
                (
                    "op".into(),
                    Value::Str(
                        match op {
                            CmpOp::Eq => "eq",
                            CmpOp::Ne => "ne",
                            CmpOp::Lt => "lt",
                            CmpOp::Ge => "ge",
                        }
                        .into(),
                    ),
                ),
                ("value".into(), int(*value)),
                ("then".into(), control(then_)),
            ],
        ),
        Control::Exclusive(xs) => tag(
            "excl",
            vec![("xs".into(), Value::Array(xs.iter().map(control).collect()))],
        ),
        Control::Nop => tag("nop", vec![]),
    }
}

fn table(t: &Table) -> Value {
    Value::object(vec![
        ("name".into(), Value::Str(t.name.clone())),
        (
            "keys".into(),
            Value::Array(
                t.keys
                    .iter()
                    .map(|(f, k)| {
                        Value::Array(vec![
                            Value::Str(field_str(*f)),
                            Value::Str(match_kind_str(*k).into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "actions".into(),
            Value::Array(
                t.actions
                    .iter()
                    .map(|a| {
                        Value::object(vec![
                            ("name".into(), Value::Str(a.name.clone())),
                            (
                                "prims".into(),
                                Value::Array(a.primitives.iter().map(primitive).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "default".into(),
            t.default_action
                .map(|d| int(d as u64))
                .unwrap_or(Value::Null),
        ),
        ("size".into(), int(t.size as u64)),
    ])
}

/// Encode a corpus entry to a JSON `Value`.
pub fn encode(entry: &CorpusEntry) -> Value {
    Value::object(vec![
        ("name".into(), Value::Str(entry.name.clone())),
        (
            "expect_divergence_with_injected_bug".into(),
            Value::Bool(entry.expect_divergence_with_injected_bug),
        ),
        (
            "tables".into(),
            Value::Array(entry.case.program.tables.iter().map(table).collect()),
        ),
        (
            "control".into(),
            entry
                .case
                .program
                .control
                .as_ref()
                .map(control)
                .unwrap_or(Value::Null),
        ),
        (
            "entries".into(),
            Value::Array(
                entry
                    .case
                    .entries
                    .iter()
                    .map(|(t, e)| {
                        Value::object(vec![
                            ("t".into(), int(*t as u64)),
                            (
                                "keys".into(),
                                Value::Array(e.keys.iter().map(match_value).collect()),
                            ),
                            ("action".into(), int(e.action as u64)),
                            (
                                "data".into(),
                                Value::Array(e.action_data.iter().map(|d| int(*d)).collect()),
                            ),
                            ("priority".into(), int(e.priority as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "packets".into(),
            Value::Array(
                entry
                    .case
                    .packets
                    .iter()
                    .map(|p| Value::Array(p.iter().map(|b| int(*b as u64)).collect()))
                    .collect(),
            ),
        ),
    ])
}

// ---- decoding ----------------------------------------------------------

fn err(msg: &str) -> String {
    format!("corpus decode: {msg}")
}

fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| err(&format!("missing key {key}")))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    get(v, key)?
        .as_i128()
        .map(|x| x as u64)
        .ok_or_else(|| err(&format!("{key} not an int")))
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| err(&format!("{key} not a string")))
}

fn get_arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    get(v, key)?
        .as_array()
        .ok_or_else(|| err(&format!("{key} not an array")))
}

fn parse_field(s: &str) -> Result<FieldRef, String> {
    if let Some(n) = s.strip_prefix("Meta:") {
        return Ok(FieldRef::Meta(
            n.parse().map_err(|_| err("bad Meta index"))?,
        ));
    }
    if let Some(n) = s.strip_prefix("FlowHash:") {
        return Ok(FieldRef::FlowHash(
            n.parse().map_err(|_| err("bad FlowHash index"))?,
        ));
    }
    Ok(match s {
        "EthSrc" => FieldRef::EthSrc,
        "EthDst" => FieldRef::EthDst,
        "EtherType" => FieldRef::EtherType,
        "VlanVid" => FieldRef::VlanVid,
        "Ipv4Src" => FieldRef::Ipv4Src,
        "Ipv4Dst" => FieldRef::Ipv4Dst,
        "Ipv4Proto" => FieldRef::Ipv4Proto,
        "Ipv4Ttl" => FieldRef::Ipv4Ttl,
        "L4Sport" => FieldRef::L4Sport,
        "L4Dport" => FieldRef::L4Dport,
        "NshSpi" => FieldRef::NshSpi,
        "NshSi" => FieldRef::NshSi,
        other => return Err(err(&format!("unknown field {other}"))),
    })
}

fn parse_match_value(v: &Value) -> Result<MatchValue, String> {
    Ok(match get_str(v, "k")? {
        "any" => MatchValue::Any,
        "exact" => MatchValue::Exact(get_u64(v, "v")?),
        "lpm" => MatchValue::Lpm {
            value: get_u64(v, "v")?,
            prefix_len: get_u64(v, "plen")? as u8,
            width: get_u64(v, "width")? as u8,
        },
        "ternary" => MatchValue::Ternary {
            value: get_u64(v, "v")?,
            mask: get_u64(v, "mask")?,
        },
        "range" => MatchValue::Range {
            lo: get_u64(v, "lo")?,
            hi: get_u64(v, "hi")?,
        },
        other => return Err(err(&format!("unknown match value {other}"))),
    })
}

fn parse_primitive(v: &Value) -> Result<Primitive, String> {
    Ok(match get_str(v, "p")? {
        "set_const" => Primitive::SetFieldConst(parse_field(get_str(v, "f")?)?, get_u64(v, "v")?),
        "set_data" => {
            Primitive::SetFieldFromData(parse_field(get_str(v, "f")?)?, get_u64(v, "n")? as u8)
        }
        "drop" => Primitive::Drop,
        "egress_data" => Primitive::SetEgressFromData(get_u64(v, "n")? as u8),
        "egress_const" => Primitive::SetEgressConst(get_u64(v, "v")? as u16),
        "push_vlan" => Primitive::PushVlanFromData(get_u64(v, "n")? as u8),
        "pop_vlan" => Primitive::PopVlan,
        "push_nsh" => Primitive::PushNshFromData(get_u64(v, "n")? as u8),
        "pop_nsh" => Primitive::PopNsh,
        "dec_si" => Primitive::DecNshSi,
        "nop" => Primitive::NoOp,
        other => return Err(err(&format!("unknown primitive {other}"))),
    })
}

fn parse_control(v: &Value) -> Result<Control, String> {
    Ok(match get_str(v, "c")? {
        "seq" => Control::Seq(
            get_arr(v, "xs")?
                .iter()
                .map(parse_control)
                .collect::<Result<_, _>>()?,
        ),
        "apply" => Control::Apply(TableId(get_u64(v, "t")? as usize)),
        "switch" => {
            let cases = get_arr(v, "cases")?
                .iter()
                .map(|c| {
                    let pair = c.as_array().ok_or_else(|| err("case not a pair"))?;
                    if pair.len() != 2 {
                        return Err(err("case pair arity"));
                    }
                    let val = pair[0].as_i128().ok_or_else(|| err("case value"))? as u64;
                    Ok((val, parse_control(&pair[1])?))
                })
                .collect::<Result<Vec<_>, String>>()?;
            let default = match get(v, "default")? {
                Value::Null => None,
                d => Some(Box::new(parse_control(d)?)),
            };
            Control::Switch {
                on: parse_field(get_str(v, "on")?)?,
                cases,
                default,
            }
        }
        "if" => Control::If {
            field: parse_field(get_str(v, "field")?)?,
            op: match get_str(v, "op")? {
                "eq" => CmpOp::Eq,
                "ne" => CmpOp::Ne,
                "lt" => CmpOp::Lt,
                "ge" => CmpOp::Ge,
                other => return Err(err(&format!("unknown op {other}"))),
            },
            value: get_u64(v, "value")?,
            then_: Box::new(parse_control(get(v, "then")?)?),
        },
        "excl" => Control::Exclusive(
            get_arr(v, "xs")?
                .iter()
                .map(parse_control)
                .collect::<Result<_, _>>()?,
        ),
        "nop" => Control::Nop,
        other => return Err(err(&format!("unknown control {other}"))),
    })
}

fn parse_table(v: &Value) -> Result<Table, String> {
    let keys = get_arr(v, "keys")?
        .iter()
        .map(|k| {
            let pair = k.as_array().ok_or_else(|| err("key not a pair"))?;
            if pair.len() != 2 {
                return Err(err("key pair arity"));
            }
            let f = parse_field(pair[0].as_str().ok_or_else(|| err("key field"))?)?;
            let kind = match pair[1].as_str().ok_or_else(|| err("key kind"))? {
                "exact" => MatchKind::Exact,
                "lpm" => MatchKind::Lpm,
                "ternary" => MatchKind::Ternary,
                "range" => MatchKind::Range,
                other => return Err(err(&format!("unknown match kind {other}"))),
            };
            Ok((f, kind))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let actions = get_arr(v, "actions")?
        .iter()
        .map(|a| {
            let prims = get_arr(a, "prims")?
                .iter()
                .map(parse_primitive)
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Action::new(get_str(a, "name")?, prims))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let default_action = match get(v, "default")? {
        Value::Null => None,
        d => Some(d.as_i128().ok_or_else(|| err("default action"))? as usize),
    };
    Ok(Table {
        name: get_str(v, "name")?.to_string(),
        keys,
        actions,
        default_action,
        size: get_u64(v, "size")? as usize,
    })
}

/// Decode a corpus entry from a JSON `Value`.
pub fn decode(v: &Value) -> Result<CorpusEntry, String> {
    let mut program = P4Program::new();
    for t in get_arr(v, "tables")? {
        program.add_table(parse_table(t)?);
    }
    program.control = match get(v, "control")? {
        Value::Null => None,
        c => Some(parse_control(c)?),
    };
    program
        .validate()
        .map_err(|e| err(&format!("invalid program: {e:?}")))?;
    let entries = get_arr(v, "entries")?
        .iter()
        .map(|e| {
            let keys = get_arr(e, "keys")?
                .iter()
                .map(parse_match_value)
                .collect::<Result<Vec<_>, String>>()?;
            let data = get_arr(e, "data")?
                .iter()
                .map(|d| {
                    d.as_i128()
                        .map(|x| x as u64)
                        .ok_or_else(|| err("data word"))
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok((
                get_u64(e, "t")? as usize,
                TableEntry {
                    keys,
                    action: get_u64(e, "action")? as usize,
                    action_data: data,
                    priority: get_u64(e, "priority")? as u32,
                },
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let packets = get_arr(v, "packets")?
        .iter()
        .map(|p| {
            p.as_array()
                .ok_or_else(|| err("packet not an array"))?
                .iter()
                .map(|b| b.as_i128().map(|x| x as u8).ok_or_else(|| err("byte")))
                .collect::<Result<Vec<u8>, String>>()
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(CorpusEntry {
        name: get_str(v, "name")?.to_string(),
        expect_divergence_with_injected_bug: matches!(
            get(v, "expect_divergence_with_injected_bug")?,
            Value::Bool(true)
        ),
        case: DiffCase {
            program,
            entries,
            packets,
        },
    })
}

/// Serialize an entry to pretty JSON text.
pub fn to_json(entry: &CorpusEntry) -> String {
    serde_json::to_string_pretty(&encode(entry)).expect("Value serialization is infallible")
}

/// Parse an entry from JSON text.
pub fn from_json(text: &str) -> Result<CorpusEntry, String> {
    let v = serde_json::parse_value_str(text).map_err(|e| err(&format!("bad JSON: {e}")))?;
    decode(&v)
}

/// The checked-in corpus directory.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Load every `*.json` entry from a corpus directory, sorted by file name
/// for deterministic replay order.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| err(&format!("read_dir {}: {e}", dir.display())))?
        .filter_map(|r| r.ok().map(|d| d.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p)
                .map_err(|e| err(&format!("read {}: {e}", p.display())))?;
            from_json(&text).map_err(|e| format!("{}: {e}", p.display()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_semantics() {
        let mut rng = StdRng::seed_from_u64(31);
        for i in 0..50 {
            let case = gen_case(&mut rng);
            let entry = CorpusEntry {
                name: format!("case{i}"),
                expect_divergence_with_injected_bug: i % 2 == 0,
                case,
            };
            let text = to_json(&entry);
            let back = from_json(&text).unwrap();
            assert_eq!(back.name, entry.name);
            assert_eq!(
                back.expect_divergence_with_injected_bug,
                entry.expect_divergence_with_injected_bug
            );
            assert_eq!(
                back.case.program.fingerprint(),
                entry.case.program.fingerprint(),
                "program fingerprint changed across JSON round-trip"
            );
            assert_eq!(back.case.packets, entry.case.packets);
            assert_eq!(back.case.entries.len(), entry.case.entries.len());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(from_json("{}").is_err());
        assert!(from_json("not json").is_err());
        assert!(from_json(r#"{"name":"x"}"#).is_err());
    }
}
