//! Seeded generation of random P4 table programs, table entries, and
//! packet workloads.
//!
//! Everything is driven by a [`StdRng`] seeded from a caller-supplied
//! `u64`, so any failing trial is reproducible from `(seed, trial index)`
//! alone.
//!
//! ## Generator discipline
//!
//! The staged executor re-evaluates branch guards per table at execution
//! time, while the control-tree executor evaluates each selector once at
//! the branch point. The two agree only if selector fields are stable for
//! the lifetime of a packet's trip through the pipeline. The generator
//! enforces the discipline the real code generator follows:
//!
//! * `Switch`/`If` selectors read only the reserved metadata registers
//!   `Meta(0..=3)`;
//! * those registers are written exclusively by a classifier table applied
//!   before any branching;
//! * body tables write packet fields, egress, and the scratch registers
//!   `Meta(4..=7)` — never the reserved selectors.
//!
//! `Exclusive` blocks are deliberately never generated: the runtime
//! executes every child of an `Exclusive` while the stage packer assumes
//! mutual exclusion, so the IR contract makes the *author* responsible
//! for exclusivity. Randomly generated children would violate that
//! contract and report miscompilations that no conforming frontend can
//! trigger. `Switch` expresses the same shape with checked exclusivity.

use lemur_p4sim::ir::{
    Action, Control, FieldRef, MatchKind, MatchValue, P4Program, Primitive, Table, TableEntry,
    TableId,
};
use lemur_packet::builder::{nsh_encap, tcp_packet, udp_packet, vlan_push};
use lemur_packet::{ethernet, ipv4, PacketBuf};
use rand::rngs::StdRng;
use rand::Rng;

/// A generated differential test case: one program, its entries, and a
/// packet workload to push through it.
#[derive(Debug, Clone)]
pub struct DiffCase {
    pub program: P4Program,
    /// `(table index, entry)` pairs, installed in order.
    pub entries: Vec<(usize, TableEntry)>,
    /// Raw frames (valid, adversarial, and truncated).
    pub packets: Vec<Vec<u8>>,
}

/// Fields body tables may match on. Reserved selector registers are
/// excluded; scratch registers and every parseable header field are in.
const KEY_FIELDS: &[FieldRef] = &[
    FieldRef::EthSrc,
    FieldRef::EthDst,
    FieldRef::EtherType,
    FieldRef::VlanVid,
    FieldRef::Ipv4Src,
    FieldRef::Ipv4Dst,
    FieldRef::Ipv4Proto,
    FieldRef::Ipv4Ttl,
    FieldRef::L4Sport,
    FieldRef::L4Dport,
    FieldRef::NshSpi,
    FieldRef::NshSi,
    FieldRef::FlowHash(0),
    FieldRef::FlowHash(1),
    FieldRef::Meta(4),
    FieldRef::Meta(5),
    FieldRef::Meta(6),
];

/// Fields body tables may write. `Ipv4Proto`, `EtherType` and `FlowHash`
/// are read-only in the runtime; the reserved selectors are off-limits by
/// discipline.
const WRITE_FIELDS: &[FieldRef] = &[
    FieldRef::EthSrc,
    FieldRef::EthDst,
    FieldRef::Ipv4Src,
    FieldRef::Ipv4Dst,
    FieldRef::Ipv4Ttl,
    FieldRef::L4Sport,
    FieldRef::L4Dport,
    FieldRef::NshSpi,
    FieldRef::NshSi,
    FieldRef::VlanVid,
    FieldRef::Meta(4),
    FieldRef::Meta(5),
    FieldRef::Meta(6),
    FieldRef::Meta(7),
];

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

fn gen_match_kind(rng: &mut StdRng) -> MatchKind {
    match rng.gen_range(0u8..4) {
        0 => MatchKind::Exact,
        1 => MatchKind::Lpm,
        2 => MatchKind::Ternary,
        _ => MatchKind::Range,
    }
}

fn gen_primitive(rng: &mut StdRng) -> Primitive {
    match rng.gen_range(0u8..20) {
        0..=5 => Primitive::SetFieldConst(pick(rng, WRITE_FIELDS), rng.gen_range(0u64..4096)),
        6..=9 => Primitive::SetFieldFromData(pick(rng, WRITE_FIELDS), rng.gen_range(0u8..3)),
        10..=11 => Primitive::SetEgressConst(rng.gen_range(0u16..8)),
        12 => Primitive::SetEgressFromData(rng.gen_range(0u8..3)),
        13 => Primitive::Drop,
        14 => Primitive::DecNshSi,
        15 => Primitive::PushVlanFromData(rng.gen_range(0u8..2)),
        16 => Primitive::PopVlan,
        17 => Primitive::PushNshFromData(rng.gen_range(0u8..2)),
        18 => Primitive::PopNsh,
        _ => Primitive::NoOp,
    }
}

fn gen_action(rng: &mut StdRng, i: usize) -> Action {
    let n = rng.gen_range(1usize..=3);
    Action::new(
        &format!("act{i}"),
        (0..n).map(|_| gen_primitive(rng)).collect(),
    )
}

fn gen_body_table(rng: &mut StdRng, idx: usize) -> Table {
    let nkeys = rng.gen_range(0usize..=2);
    let nact = rng.gen_range(1usize..=3);
    let actions: Vec<Action> = (0..nact).map(|i| gen_action(rng, i)).collect();
    let default_action = if rng.gen_bool(0.7) {
        Some(rng.gen_range(0..nact))
    } else {
        None
    };
    Table {
        name: format!("t{idx}"),
        keys: (0..nkeys)
            .map(|_| (pick(rng, KEY_FIELDS), gen_match_kind(rng)))
            .collect(),
        actions,
        default_action,
        size: rng.gen_range(1usize..2000),
    }
}

/// The classifier: matches the L4 destination port and writes the two
/// selector registers branching reads. Applied first, before any branch.
fn classifier_table(rng: &mut StdRng) -> Table {
    Table {
        name: "classify".into(),
        keys: vec![(FieldRef::L4Dport, MatchKind::Exact)],
        actions: vec![Action::new(
            "set_class",
            vec![
                Primitive::SetFieldFromData(FieldRef::Meta(0), 0),
                Primitive::SetFieldFromData(FieldRef::Meta(1), 1),
            ],
        )],
        default_action: Some(0),
        size: rng.gen_range(4usize..64),
    }
}

/// Ports the packet generator samples; classifier entries key on the same
/// pool so branches are actually taken.
const PORT_POOL: &[u16] = &[22, 53, 80, 443, 8080, 1000, 2000, 65535];

fn gen_match_value(rng: &mut StdRng) -> MatchValue {
    match rng.gen_range(0u8..5) {
        0 => MatchValue::Any,
        1 => MatchValue::Exact(rng.gen_range(0u64..4096)),
        2 => MatchValue::Lpm {
            value: rng.gen_range(0u64..u32::MAX as u64),
            prefix_len: rng.gen_range(0u8..=32),
            width: 32,
        },
        3 => MatchValue::Ternary {
            value: rng.gen_range(0u64..65536),
            mask: rng.gen_range(0u64..65536),
        },
        _ => {
            let lo = rng.gen_range(0u64..4096);
            MatchValue::Range {
                lo,
                hi: lo + rng.gen_range(0u64..4096),
            }
        }
    }
}

fn gen_entries(
    rng: &mut StdRng,
    table_idx: usize,
    table: &Table,
    out: &mut Vec<(usize, TableEntry)>,
) {
    let n = rng.gen_range(0usize..=3.min(table.size));
    for _ in 0..n {
        out.push((
            table_idx,
            TableEntry {
                keys: table.keys.iter().map(|_| gen_match_value(rng)).collect(),
                action: rng.gen_range(0..table.actions.len()),
                action_data: (0..rng.gen_range(0usize..=3))
                    .map(|_| rng.gen_range(0u64..4096))
                    .collect(),
                priority: rng.gen_range(0u32..16),
            },
        ));
    }
}

/// Build a random control structure over the body tables (the classifier
/// is applied first, outside). Consumes tables left-to-right so every
/// table appears exactly once.
fn gen_control(rng: &mut StdRng, tables: &[TableId], depth: usize) -> Control {
    if tables.is_empty() {
        return Control::Nop;
    }
    if tables.len() == 1 || depth >= 2 {
        return Control::Seq(tables.iter().map(|t| Control::Apply(*t)).collect());
    }
    let mut blocks = Vec::new();
    let mut rest = tables;
    while !rest.is_empty() {
        let take = rng.gen_range(1usize..=rest.len());
        let (chunk, tail) = rest.split_at(take);
        rest = tail;
        match rng.gen_range(0u8..4) {
            // Plain sequence of applies.
            0 | 1 => blocks.extend(chunk.iter().map(|t| Control::Apply(*t))),
            // Switch on a reserved selector register.
            2 => {
                let mid = chunk.len() / 2;
                let (a, b) = chunk.split_at(mid);
                let cases = vec![
                    (0u64, gen_control(rng, a, depth + 1)),
                    (1u64, gen_control(rng, b, depth + 1)),
                ];
                let default = if rng.gen_bool(0.5) {
                    Some(Box::new(Control::Nop))
                } else {
                    None
                };
                blocks.push(Control::Switch {
                    on: FieldRef::Meta(0),
                    cases,
                    default,
                });
            }
            // If on the other reserved selector.
            _ => {
                let op = match rng.gen_range(0u8..3) {
                    0 => lemur_p4sim::ir::CmpOp::Eq,
                    1 => lemur_p4sim::ir::CmpOp::Lt,
                    _ => lemur_p4sim::ir::CmpOp::Ge,
                };
                blocks.push(Control::If {
                    field: FieldRef::Meta(1),
                    op,
                    value: rng.gen_range(0u64..4),
                    then_: Box::new(gen_control(rng, chunk, depth + 1)),
                });
            }
        }
    }
    Control::Seq(blocks)
}

/// Generate one random program with entries.
pub fn gen_program(rng: &mut StdRng) -> (P4Program, Vec<(usize, TableEntry)>) {
    let mut program = P4Program::new();
    let mut entries = Vec::new();

    let classifier = program.add_table(classifier_table(rng));
    // Classifier entries: map sampled ports to selector values 0..4.
    for _ in 0..rng.gen_range(1usize..=3) {
        entries.push((
            classifier.0,
            TableEntry {
                keys: vec![MatchValue::Exact(pick(rng, PORT_POOL) as u64)],
                action: 0,
                action_data: vec![rng.gen_range(0u64..2), rng.gen_range(0u64..4)],
                priority: 1,
            },
        ));
    }

    let nbody = rng.gen_range(1usize..=8);
    let body: Vec<TableId> = (0..nbody)
        .map(|i| {
            let t = gen_body_table(rng, i);
            gen_entries(rng, i + 1, &t, &mut entries);
            program.add_table(t)
        })
        .collect();

    let body_control = gen_control(rng, &body, 0);
    program.control = Some(Control::Seq(vec![Control::Apply(classifier), body_control]));
    debug_assert!(program.validate().is_ok());
    (program, entries)
}

const MAC_A: ethernet::Address = ethernet::Address([2, 0, 0, 0, 0, 1]);
const MAC_B: ethernet::Address = ethernet::Address([2, 0, 0, 0, 0, 2]);

/// Set the IPv4 TTL of a built frame in place (the builders default it).
fn set_ttl(pkt: &mut PacketBuf, ttl: u8) {
    let mut ip = ipv4::Packet::new_unchecked(&mut pkt.as_mut_slice()[ethernet::HEADER_LEN..]);
    ip.set_ttl(ttl);
    ip.fill_checksum();
}

/// Generate one frame: mostly well-formed UDP/TCP, with NSH / VLAN
/// encapsulation, boundary TTLs, and truncations mixed in.
pub fn gen_packet(rng: &mut StdRng) -> Vec<u8> {
    let src = ipv4::Address::new(10, rng.gen_range(0u8..4), 0, rng.gen_range(1u8..10));
    let dst = ipv4::Address::new(192, 168, rng.gen_range(0u8..4), rng.gen_range(1u8..10));
    let sport = pick(rng, PORT_POOL);
    let dport = pick(rng, PORT_POOL);
    let payload = vec![0x5au8; rng.gen_range(0usize..256)];
    let mut pkt = if rng.gen_bool(0.7) {
        udp_packet(MAC_A, MAC_B, src, dst, sport, dport, &payload)
    } else {
        let flags = if rng.gen_bool(0.5) {
            lemur_packet::tcp::Flags::SYN
        } else {
            lemur_packet::tcp::Flags::ACK
        };
        tcp_packet(MAC_A, MAC_B, src, dst, sport, dport, flags, &payload)
    };
    // Boundary TTLs exercise range/exact matches on Ipv4Ttl.
    if rng.gen_bool(0.25) {
        set_ttl(&mut pkt, pick(rng, &[0u8, 1, 2, 255]));
    }
    // Encapsulations.
    if rng.gen_bool(0.2) {
        vlan_push(&mut pkt, rng.gen_range(1u16..4095));
    }
    if rng.gen_bool(0.25) {
        let si = pick(rng, &[0u8, 1, 2, 254, 255]);
        nsh_encap(&mut pkt, rng.gen_range(1u32..64), si);
    }
    let mut bytes = pkt.as_slice().to_vec();
    // Adversarial truncation: chop mid-header so field reads fail.
    if rng.gen_bool(0.15) {
        let keep = rng.gen_range(1usize..=bytes.len());
        bytes.truncate(keep);
    }
    bytes
}

/// Generate a packet workload.
pub fn gen_packets(rng: &mut StdRng, n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|_| gen_packet(rng)).collect()
}

/// Generate a full differential case: program + entries + workload.
pub fn gen_case(rng: &mut StdRng) -> DiffCase {
    let (program, entries) = gen_program(rng);
    let n = rng.gen_range(1usize..=12);
    let packets = gen_packets(rng, n);
    DiffCase {
        program,
        entries,
        packets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_programs_validate() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let case = gen_case(&mut rng);
            case.program.validate().unwrap();
            assert!(!case.packets.is_empty());
            for (t, e) in &case.entries {
                assert!(*t < case.program.num_tables());
                assert_eq!(e.keys.len(), case.program.tables[*t].keys.len());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_case(&mut StdRng::seed_from_u64(42));
        let b = gen_case(&mut StdRng::seed_from_u64(42));
        assert_eq!(a.program.fingerprint(), b.program.fingerprint());
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.entries.len(), b.entries.len());
    }

    #[test]
    fn workload_contains_adversarial_shapes() {
        let mut rng = StdRng::seed_from_u64(7);
        let pkts = gen_packets(&mut rng, 400);
        let truncated = pkts.iter().filter(|p| p.len() < 42).count();
        assert!(truncated > 0, "no truncated frames in 400 samples");
        let nsh = pkts
            .iter()
            .filter(|p| lemur_packet::builder::nsh_peek(p).is_some())
            .count();
        assert!(nsh > 0, "no NSH frames in 400 samples");
    }
}
