//! Axis 1: compiler-differential execution.
//!
//! The same program runs three ways on identical packet batches:
//!
//! 1. **Tree** — `Switch::process`, the control-tree reference
//!    interpreter (no stage packing at all);
//! 2. **Packed** — `process_staged` over the optimizing stage-packing
//!    compiler's assignment (effect-aware dependency analysis on);
//! 3. **Naive** — `process_staged` over `compile_naive`, one table per
//!    stage in control order.
//!
//! Any disagreement — per-packet verdict, per-packet output bytes, or
//! final table counters — between any pair is a divergence: the packed
//! schedule reordered something the dependency analysis should have
//! pinned, or staged guard evaluation departed from tree semantics.

use crate::gen::DiffCase;
use lemur_p4sim::compiler::{CompileError, CompileOptions};
use lemur_p4sim::ir::TableId;
use lemur_p4sim::resources::PisaModel;
use lemur_p4sim::runtime::{Switch, SwitchVerdict};
use lemur_packet::PacketBuf;

/// A reproducible description of one observed divergence.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index of the first diverging packet, or `None` for a pure
    /// counter divergence after an otherwise identical run.
    pub packet: Option<usize>,
    /// Which pair of executors disagreed and how.
    pub detail: String,
}

/// Why a generated case was skipped rather than diffed.
#[derive(Debug, Clone, PartialEq)]
pub enum Skip {
    /// The packed compiler rejected the program.
    Packed(CompileError),
    /// The naive compiler rejected the program (e.g. more tables than
    /// stages).
    Naive(CompileError),
}

/// Outcome of diffing one case.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffOutcome {
    Agree,
    Diverged(Divergence),
    Skipped(Skip),
}

impl DiffOutcome {
    pub fn divergence(&self) -> Option<&Divergence> {
        match self {
            DiffOutcome::Diverged(d) => Some(d),
            _ => None,
        }
    }
}

/// The hardware model used for differential runs: deliberately roomy so
/// almost every generated program compiles on both sides and skips stay
/// rare (the point is executing programs, not rejecting them).
pub fn diff_model() -> PisaModel {
    PisaModel {
        num_stages: 64,
        ..PisaModel::default()
    }
}

/// Compile options for the packed side. Effect-aware dependency analysis
/// is on: generated actions drop, set egress, and restructure headers, so
/// the field-only §4.2 rules are insufficient for a sound reorder.
pub fn packed_options() -> CompileOptions {
    CompileOptions {
        effect_deps: true,
        ..CompileOptions::default()
    }
}

fn verdict_str(v: &SwitchVerdict) -> String {
    format!(
        "egress={:?} dropped={} cause={:?}",
        v.egress_port, v.dropped, v.cause
    )
}

/// Run one case through all three executors with the given packed-side
/// options. Entries that fail installation (possible mid-shrink) are
/// skipped identically on every side, so installation never diverges.
pub fn diff_case_with(case: &DiffCase, packed_opts: CompileOptions) -> DiffOutcome {
    let model = diff_model();
    let mut packed = match Switch::new_with_options(case.program.clone(), model, packed_opts) {
        Ok(s) => s,
        Err(e) => return DiffOutcome::Skipped(Skip::Packed(e)),
    };
    let mut naive = match Switch::new_naive(case.program.clone(), model) {
        Ok(s) => s,
        Err(e) => return DiffOutcome::Skipped(Skip::Naive(e)),
    };
    // The tree executor ignores the stage assignment; reuse the naive
    // compile so construction cannot fail differently.
    let mut tree = match Switch::new_naive(case.program.clone(), model) {
        Ok(s) => s,
        Err(e) => return DiffOutcome::Skipped(Skip::Naive(e)),
    };

    for (t, e) in &case.entries {
        let id = TableId(*t);
        let a = packed.try_add_entry(id, e.clone());
        let b = naive.try_add_entry(id, e.clone());
        let c = tree.try_add_entry(id, e.clone());
        debug_assert_eq!(a.is_ok(), b.is_ok());
        debug_assert_eq!(a.is_ok(), c.is_ok());
    }

    for (i, bytes) in case.packets.iter().enumerate() {
        let mut p_tree = PacketBuf::from_bytes(bytes);
        let mut p_packed = PacketBuf::from_bytes(bytes);
        let mut p_naive = PacketBuf::from_bytes(bytes);
        let v_tree = tree.process(&mut p_tree);
        let v_packed = packed.process_staged(&mut p_packed);
        let v_naive = naive.process_staged(&mut p_naive);

        let pairs = [
            ("tree", &v_tree, &p_tree, "packed", &v_packed, &p_packed),
            ("tree", &v_tree, &p_tree, "naive", &v_naive, &p_naive),
            ("packed", &v_packed, &p_packed, "naive", &v_naive, &p_naive),
        ];
        for (an, av, ap, bn, bv, bp) in pairs {
            if av != bv {
                return DiffOutcome::Diverged(Divergence {
                    packet: Some(i),
                    detail: format!(
                        "verdict {an}[{}] != {bn}[{}]",
                        verdict_str(av),
                        verdict_str(bv)
                    ),
                });
            }
            if ap.as_slice() != bp.as_slice() {
                return DiffOutcome::Diverged(Divergence {
                    packet: Some(i),
                    detail: format!(
                        "output bytes {an}({}B) != {bn}({}B)",
                        ap.as_slice().len(),
                        bp.as_slice().len()
                    ),
                });
            }
        }
    }

    // Counters: the tree executor and both staged executors must have
    // applied/hit/missed identically per table.
    let ct = tree.table_counters();
    let cp = packed.table_counters();
    let cn = naive.table_counters();
    for t in 0..case.program.num_tables() {
        if ct[t] != cp[t] || ct[t] != cn[t] {
            return DiffOutcome::Diverged(Divergence {
                packet: None,
                detail: format!(
                    "counters for table {t}: tree={:?} packed={:?} naive={:?}",
                    ct[t], cp[t], cn[t]
                ),
            });
        }
    }
    DiffOutcome::Agree
}

/// Diff under the default harness options.
pub fn diff_case(case: &DiffCase) -> DiffOutcome {
    diff_case_with(case, packed_options())
}

/// Diff with the compiler's deliberate packing bug injected (drops
/// anti-dependency edges and prepends within stages). Used by the
/// shrinker self-test and the `--inject-bug` harness mode.
pub fn diff_case_injected(case: &DiffCase) -> DiffOutcome {
    diff_case_with(
        case,
        CompileOptions {
            inject_packing_bug: true,
            ..packed_options()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_cases_agree_under_sound_options() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut executed = 0;
        for _ in 0..150 {
            let case = gen_case(&mut rng);
            match diff_case(&case) {
                DiffOutcome::Agree => executed += 1,
                DiffOutcome::Diverged(d) => {
                    panic!("sound compile diverged: {d:?} on {:?}", case.program)
                }
                DiffOutcome::Skipped(_) => {}
            }
        }
        assert!(executed > 100, "only {executed}/150 cases executed");
    }

    #[test]
    fn injected_bug_is_eventually_caught() {
        let mut rng = StdRng::seed_from_u64(13);
        let caught = (0..400).any(|_| {
            let case = gen_case(&mut rng);
            matches!(diff_case_injected(&case), DiffOutcome::Diverged(_))
        });
        assert!(caught, "injected packing bug never produced a divergence");
    }
}
