//! `lemur-fuzz`: differential dataplane fuzzing.
//!
//! The Lemur pipeline compiles one logical NF chain onto three very
//! different substrates: a stage-packed PISA program, BESS subgroups on
//! server cores, and verifier-checked eBPF on SmartNICs. Each substrate
//! has its own compiler path and its own executor — exactly the setting
//! where a silent miscompilation turns into an SLO violation or a
//! blackholed flow that no throughput benchmark notices.
//!
//! This crate fuzzes the equivalence claims directly, on two axes:
//!
//! * **Axis 1 (compiler)** — random table programs run through the
//!   optimizing stage-packing compiler vs. the naive one-table-per-stage
//!   reference vs. the control-tree interpreter, on identical packet
//!   workloads ([`diff`]).
//! * **Axis 2 (backend)** — random `(SPI, SI, kind)` dispatch lists run
//!   through the generated eBPF NIC program vs. the software NF path,
//!   comparing the observable steering projection ([`backend`]).
//!
//! Failures are minimized by a deterministic delta-debugging shrinker
//! ([`shrink`]) into a JSON regression corpus ([`corpus`]) that
//! `cargo test` replays forever after.
//!
//! Everything is seeded: a report is a pure function of `(seed set,
//! trial count)`, independent of worker count and wall clock.

pub mod backend;
pub mod corpus;
pub mod diff;
pub mod gen;
pub mod shrink;

use diff::{DiffOutcome, Divergence};
use gen::DiffCase;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;

/// A shrunk axis-1 failure, ready for triage or corpus check-in.
#[derive(Debug, Clone)]
pub struct ShrunkFailure {
    pub seed: u64,
    pub trial: usize,
    pub divergence: Divergence,
    pub case: DiffCase,
    /// Reductions the shrinker applied to reach the minimal case.
    pub reductions: usize,
}

/// Per-seed axis-1 statistics.
#[derive(Debug, Clone, Default)]
pub struct SeedReport {
    pub seed: u64,
    pub trials: usize,
    pub executed: usize,
    pub skipped_packed: usize,
    pub skipped_naive: usize,
    pub packets: usize,
    pub failures: Vec<ShrunkFailure>,
}

/// Options for a fuzzing run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Inject the compiler's deliberate packing bug (self-test mode:
    /// divergences are *expected*).
    pub inject_bug: bool,
    /// Stop a seed after this many failures (shrinking is the expensive
    /// part; one minimal case per seed is usually enough).
    pub max_failures_per_seed: usize,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            inject_bug: false,
            max_failures_per_seed: 3,
        }
    }
}

/// Run `trials` axis-1 trials under one seed. Deterministic: the
/// generator stream depends only on `seed`, and every divergence is
/// shrunk with the same predicate that detected it.
pub fn run_seed(seed: u64, trials: usize, opts: RunOptions) -> SeedReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = SeedReport {
        seed,
        trials,
        ..SeedReport::default()
    };
    let check = |case: &DiffCase| -> DiffOutcome {
        if opts.inject_bug {
            diff::diff_case_injected(case)
        } else {
            diff::diff_case(case)
        }
    };
    for trial in 0..trials {
        let case = gen::gen_case(&mut rng);
        report.packets += case.packets.len();
        match check(&case) {
            DiffOutcome::Agree => report.executed += 1,
            DiffOutcome::Skipped(diff::Skip::Packed(_)) => report.skipped_packed += 1,
            DiffOutcome::Skipped(diff::Skip::Naive(_)) => report.skipped_naive += 1,
            DiffOutcome::Diverged(divergence) => {
                report.executed += 1;
                if report.failures.len() < opts.max_failures_per_seed {
                    let (small, reductions) =
                        shrink::shrink(&case, |c| matches!(check(c), DiffOutcome::Diverged(_)));
                    let final_div = match check(&small) {
                        DiffOutcome::Diverged(d) => d,
                        _ => divergence.clone(),
                    };
                    report.failures.push(ShrunkFailure {
                        seed,
                        trial,
                        divergence: final_div,
                        case: small,
                        reductions,
                    });
                } else {
                    report.failures.push(ShrunkFailure {
                        seed,
                        trial,
                        divergence,
                        case,
                        reductions: 0,
                    });
                }
            }
        }
    }
    report
}

/// Run `trials` axis-2 backend trials under one seed.
pub fn run_backend_seed(seed: u64, trials: usize) -> BackendReport {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb0c0_de00);
    let mut report = BackendReport {
        seed,
        trials,
        ..BackendReport::default()
    };
    for _ in 0..trials {
        match backend::backend_trial(&mut rng) {
            Ok(divs) => {
                report.executed += 1;
                for d in divs {
                    report.divergences.push(format!(
                        "kind={} len={} {}",
                        d.kind.name(),
                        d.frame.len(),
                        d.detail
                    ));
                }
            }
            Err(e) => {
                report.synth_errors += 1;
                report.last_error = Some(e);
            }
        }
    }
    report
}

/// Per-seed axis-2 statistics.
#[derive(Debug, Clone, Default)]
pub struct BackendReport {
    pub seed: u64,
    pub trials: usize,
    pub executed: usize,
    pub synth_errors: usize,
    pub last_error: Option<String>,
    pub divergences: Vec<String>,
}

impl SeedReport {
    /// JSON projection for the experiment report.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("seed".into(), Value::Int(self.seed as i128)),
            ("trials".into(), Value::Int(self.trials as i128)),
            ("executed".into(), Value::Int(self.executed as i128)),
            (
                "skipped_packed".into(),
                Value::Int(self.skipped_packed as i128),
            ),
            (
                "skipped_naive".into(),
                Value::Int(self.skipped_naive as i128),
            ),
            ("packets".into(), Value::Int(self.packets as i128)),
            (
                "failures".into(),
                Value::Array(
                    self.failures
                        .iter()
                        .map(|f| {
                            Value::object(vec![
                                ("trial".into(), Value::Int(f.trial as i128)),
                                ("detail".into(), Value::Str(f.divergence.detail.clone())),
                                (
                                    "tables".into(),
                                    Value::Int(f.case.program.num_tables() as i128),
                                ),
                                ("packets".into(), Value::Int(f.case.packets.len() as i128)),
                                ("reductions".into(), Value::Int(f.reductions as i128)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl BackendReport {
    /// JSON projection for the experiment report.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("seed".into(), Value::Int(self.seed as i128)),
            ("trials".into(), Value::Int(self.trials as i128)),
            ("executed".into(), Value::Int(self.executed as i128)),
            ("synth_errors".into(), Value::Int(self.synth_errors as i128)),
            (
                "divergences".into(),
                Value::Array(
                    self.divergences
                        .iter()
                        .map(|d| Value::Str(d.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sound_run_has_no_failures() {
        let r = run_seed(1, 60, RunOptions::default());
        assert!(
            r.failures.is_empty(),
            "unexpected divergence: {:?}",
            r.failures[0].divergence
        );
        assert!(r.executed > 30);
    }

    #[test]
    fn injected_bug_run_finds_and_shrinks_failures() {
        let opts = RunOptions {
            inject_bug: true,
            max_failures_per_seed: 1,
        };
        // Some seed in this small set must trip the bug.
        let hit = (0u64..6).find_map(|s| {
            let r = run_seed(s, 120, opts);
            r.failures.into_iter().next()
        });
        let f = hit.expect("injected bug never detected across 6 seeds x 120 trials");
        assert!(f.case.program.num_tables() <= 2, "not minimal: {f:?}");
        assert!(f.case.packets.len() <= 3, "not minimal: {f:?}");
    }

    #[test]
    fn reports_are_reproducible() {
        let a = run_seed(9, 40, RunOptions::default());
        let b = run_seed(9, 40, RunOptions::default());
        assert_eq!(
            serde_json::to_string(&a.to_value()).unwrap(),
            serde_json::to_string(&b.to_value()).unwrap()
        );
        let c = run_backend_seed(9, 10);
        let d = run_backend_seed(9, 10);
        assert_eq!(
            serde_json::to_string(&c.to_value()).unwrap(),
            serde_json::to_string(&d.to_value()).unwrap()
        );
    }
}
