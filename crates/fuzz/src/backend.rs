//! Axis 2: backend-differential execution (SmartNIC eBPF vs BESS server).
//!
//! For every NF kind with an eBPF implementation (Table 3), the harness
//! synthesizes the NIC program for a random `(SPI, SI, kind)` dispatch
//! list via the production generator, demands the verifier accept it, and
//! runs random NSH frames through the VM. The same frames are pushed
//! through the server path contract: NSH demux → decap → software NF
//! ([`lemur_nf::build_nf`]) → re-encap with the SI decremented.
//!
//! The eBPF NF bodies are cost-faithful stand-ins, not byte-identical
//! ports (the FastEncrypt keystream differs from server ChaCha by
//! design, §A.3), so the diff compares the *observable steering
//! projection* both backends must agree on for the service chain to
//! function:
//!
//! * a frame the NIC claims (long enough, `(SPI, SI)` in the dispatch
//!   list) must come back `XDP_TX` with the SPI preserved and the SI
//!   decremented exactly once — matching the server mux contract — and
//!   the server NF must agree the packet continues (forward/gate, not
//!   drop);
//! * a frame the NIC does not claim must come back `XDP_PASS` completely
//!   untouched;
//! * for header-only kinds the NIC must touch nothing but the SI byte.

use lemur_ebpf::{ExecError, Vm, XdpVerdict};
use lemur_metacompiler::ebpfgen::{
    ebpf_capable, synthesize_nic_program, INNER_OFF, INNER_PAYLOAD_OFF, NSH_SI_OFF,
};
use lemur_nf::{build_nf, NfCtx, NfKind, NfParams, Verdict};
use lemur_packet::builder::{nsh_encap, nsh_peek, udp_packet};
use lemur_packet::{ethernet, ipv4, PacketBuf};
use rand::rngs::StdRng;
use rand::Rng;

/// Minimum frame length the NIC dispatcher claims.
const CLAIM_MIN: usize = INNER_OFF as usize + 34;
/// FastEncrypt additionally requires its full cipher window.
const CIPHER_MIN: usize = INNER_PAYLOAD_OFF as usize + 64;

/// One backend divergence.
#[derive(Debug, Clone)]
pub struct BackendDivergence {
    pub kind: NfKind,
    pub frame: Vec<u8>,
    pub detail: String,
}

/// Does the NIC program claim this frame? Mirrors the generated guard
/// structure: overall length gate, `(spi, si)` dispatch match, and the
/// per-body window gate for the cipher.
fn nic_claims(handled: &[(u32, u8, NfKind)], frame: &[u8]) -> Option<NfKind> {
    if frame.len() < CLAIM_MIN {
        return None;
    }
    let (spi, si) = nsh_peek(frame)?;
    let (_, _, kind) = handled.iter().find(|(s, i, _)| *s == spi && *i == si)?;
    if *kind == NfKind::FastEncrypt && frame.len() < CIPHER_MIN {
        return None;
    }
    Some(*kind)
}

/// Server-path projection for a claimed frame: decap, run the software
/// NF, report whether the packet continues down the chain.
fn server_forwards(kind: NfKind, frame: &[u8]) -> bool {
    let mut pkt = PacketBuf::from_bytes(frame);
    let Some(_) = lemur_packet::builder::nsh_decap(&mut pkt) else {
        return false;
    };
    let mut nf = build_nf(kind, &NfParams::new());
    match nf.process(&NfCtx::default(), &mut pkt) {
        Verdict::Forward | Verdict::Gate(_) => true,
        Verdict::Drop => false,
    }
}

/// Run one backend trial: a random dispatch list over capable kinds plus
/// a random frame mix; returns divergences found.
pub fn backend_trial(rng: &mut StdRng) -> Result<Vec<BackendDivergence>, String> {
    let capable: Vec<NfKind> = NfKind::ALL
        .iter()
        .copied()
        .filter(|k| ebpf_capable(*k))
        .collect();
    let n = rng.gen_range(1usize..=3);
    let mut handled: Vec<(u32, u8, NfKind)> = Vec::new();
    for _ in 0..n {
        let spi = rng.gen_range(1u32..16);
        let si = rng.gen_range(1u8..=255);
        if !handled.iter().any(|(s, i, _)| (*s, *i) == (spi, si)) {
            handled.push((spi, si, capable[rng.gen_range(0..capable.len())]));
        }
    }
    let program = synthesize_nic_program(&handled)?;
    program.verify().map_err(|e| e.to_string())?;

    let mut divergences = Vec::new();
    for _ in 0..8 {
        let frame = gen_backend_frame(rng, &handled);
        let mut nic_frame = frame.clone();
        let result = Vm::run(&program, &mut nic_frame);
        let verdict = match result {
            Ok(out) => out.verdict,
            // Verified programs may only fail on packet bounds (dynamic
            // length); anything else is a verifier soundness bug.
            Err(ExecError::PacketOutOfBounds { .. }) => {
                divergences.push(BackendDivergence {
                    kind: NfKind::Monitor,
                    frame,
                    detail: "verified program took a packet fault despite the length guard".into(),
                });
                continue;
            }
            Err(e) => {
                divergences.push(BackendDivergence {
                    kind: NfKind::Monitor,
                    frame,
                    detail: format!("verified program hit non-packet error: {e}"),
                });
                continue;
            }
        };

        match nic_claims(&handled, &frame) {
            Some(kind) => {
                let (spi_in, si_in) = nsh_peek(&frame).expect("claimed frame has NSH");
                if verdict != XdpVerdict::Tx {
                    divergences.push(BackendDivergence {
                        kind,
                        frame,
                        detail: format!("claimed frame not TXed (verdict {verdict:?})"),
                    });
                    continue;
                }
                let Some((spi_out, si_out)) = nsh_peek(&nic_frame) else {
                    divergences.push(BackendDivergence {
                        kind,
                        frame,
                        detail: "NSH header destroyed by NIC".into(),
                    });
                    continue;
                };
                if spi_out != spi_in || si_out != si_in.wrapping_sub(1) {
                    divergences.push(BackendDivergence {
                        kind,
                        frame,
                        detail: format!(
                            "steering mismatch: ({spi_in},{si_in}) -> ({spi_out},{si_out}), \
                             server mux would emit ({spi_in},{})",
                            si_in.wrapping_sub(1)
                        ),
                    });
                    continue;
                }
                // Header-only kinds must leave everything but the SI
                // byte intact.
                if kind != NfKind::FastEncrypt {
                    let same_elsewhere = frame
                        .iter()
                        .zip(nic_frame.iter())
                        .enumerate()
                        .all(|(i, (a, b))| i == NSH_SI_OFF as usize || a == b);
                    if frame.len() != nic_frame.len() || !same_elsewhere {
                        divergences.push(BackendDivergence {
                            kind,
                            frame,
                            detail: "header-only NF mutated payload bytes".into(),
                        });
                        continue;
                    }
                }
                // The server NF must agree the packet continues.
                if !server_forwards(kind, &frame) {
                    divergences.push(BackendDivergence {
                        kind,
                        frame,
                        detail: "NIC TXed a frame the server NF would drop".into(),
                    });
                }
            }
            None => {
                if verdict != XdpVerdict::Pass || nic_frame != frame {
                    divergences.push(BackendDivergence {
                        kind: NfKind::Monitor,
                        frame,
                        detail: format!(
                            "unclaimed frame not passed through untouched (verdict {verdict:?})"
                        ),
                    });
                }
            }
        }
    }
    Ok(divergences)
}

/// Frames for the backend axis: mostly claimed NSH traffic, plus near
/// misses (wrong SI, unknown SPI), short frames below the claim window,
/// and raw noise.
fn gen_backend_frame(rng: &mut StdRng, handled: &[(u32, u8, NfKind)]) -> Vec<u8> {
    let payload = vec![0xabu8; rng.gen_range(64usize..300)];
    let mut pkt = udp_packet(
        ethernet::Address([2, 0, 0, 0, 0, 1]),
        ethernet::Address([2, 0, 0, 0, 0, 2]),
        ipv4::Address::new(10, 0, rng.gen_range(0u8..4), 1),
        ipv4::Address::new(10, 0, 0, 2),
        1000,
        2000,
        &payload,
    );
    match rng.gen_range(0u8..6) {
        // Claimed: a handled (spi, si).
        0..=2 => {
            let (spi, si, _) = handled[rng.gen_range(0..handled.len())];
            nsh_encap(&mut pkt, spi, si);
            pkt.as_slice().to_vec()
        }
        // Near miss: right SPI, SI off by one.
        3 => {
            let (spi, si, _) = handled[rng.gen_range(0..handled.len())];
            nsh_encap(&mut pkt, spi, si.wrapping_add(1));
            pkt.as_slice().to_vec()
        }
        // Unknown SPI.
        4 => {
            nsh_encap(
                &mut pkt,
                rng.gen_range(100u32..200),
                rng.gen_range(0u8..=255),
            );
            pkt.as_slice().to_vec()
        }
        // Truncated below the claim threshold.
        _ => {
            let (spi, si, _) = handled[rng.gen_range(0..handled.len())];
            nsh_encap(&mut pkt, spi, si);
            let mut bytes = pkt.as_slice().to_vec();
            bytes.truncate(rng.gen_range(1usize..CLAIM_MIN.min(bytes.len())));
            bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn backends_agree_on_random_dispatch_lists() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..100 {
            let divs = backend_trial(&mut rng).expect("capable kinds must synthesize");
            assert!(divs.is_empty(), "backend divergence: {:?}", divs[0]);
        }
    }

    #[test]
    fn claim_predicate_matches_guard() {
        // A frame one byte below the claim threshold must not be claimed.
        let handled = [(5u32, 200u8, NfKind::Acl)];
        let mut pkt = udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(10, 0, 0, 1),
            ipv4::Address::new(10, 0, 0, 2),
            1,
            2,
            &[0u8; 64],
        );
        nsh_encap(&mut pkt, 5, 200);
        let mut bytes = pkt.as_slice().to_vec();
        assert!(nic_claims(&handled, &bytes).is_some());
        bytes.truncate(CLAIM_MIN - 1);
        assert!(nic_claims(&handled, &bytes).is_none());
    }
}
