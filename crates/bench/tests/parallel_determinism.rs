//! Parallel-determinism contract: the search engine must be a pure
//! function of its inputs, independent of worker count.
//!
//! Brute force and the heuristic run on Figure-2 chain sets with 1, 2,
//! and 8 workers; every run must produce a bit-identical
//! `EvaluatedPlacement` (`Debug` repr, which covers the assignment,
//! rates, core allocation, and the telemetry counters) and the bench
//! sweep must serialize bit-identical JSON reports. This is what lets
//! the supervisor treat a re-computed placement as the same last-known-
//! good artifact regardless of the machine it was planned on.

use lemur_bench::{build_problem, figure2_set, run_cells, Scheme};
use lemur_metacompiler::CachedCompilerOracle;
use lemur_placer::brute::{optimal_with_workers, BruteConfig};
use lemur_placer::corealloc::CoreStrategy;
use lemur_placer::heuristic::place_with_workers;
use lemur_placer::parallel::Workers;
use lemur_placer::topology::Topology;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Debug repr of a search outcome under a fresh memoized oracle. A fresh
/// cache per run keeps the telemetry counters comparable: hits/misses
/// are schedule-independent (compute-once per key) but depend on what
/// was cached before the search started.
fn search_repr(set: char, brute: bool, workers: usize) -> String {
    let chains = figure2_set(set).expect("known set");
    let (p, _) = build_problem(&chains, 1.0, Topology::testbed());
    let oracle = CachedCompilerOracle::new();
    let result = if brute {
        optimal_with_workers(&p, &oracle, BruteConfig::default(), Workers::new(workers))
    } else {
        place_with_workers(&p, &oracle, CoreStrategy::WaterFill, Workers::new(workers))
    };
    format!("{result:?}")
}

#[test]
fn heuristic_bit_identical_across_worker_counts() {
    for set in ['b', 'e'] {
        let baseline = search_repr(set, false, 1);
        for w in WORKER_COUNTS {
            assert_eq!(
                search_repr(set, false, w),
                baseline,
                "heuristic diverged on set {set} with {w} workers"
            );
        }
    }
}

#[test]
fn brute_bit_identical_across_worker_counts() {
    let baseline = search_repr('b', true, 1);
    for w in WORKER_COUNTS {
        assert_eq!(
            search_repr('b', true, w),
            baseline,
            "brute force diverged with {w} workers"
        );
    }
}

#[test]
fn serialized_reports_identical_across_worker_counts() {
    let chains = figure2_set('b').expect("known set");
    let cells: Vec<(Scheme, f64)> = Scheme::COMPARISON.iter().map(|&s| (s, 1.0)).collect();
    let report = |workers: usize| {
        let oracle = CachedCompilerOracle::new();
        let rows = run_cells(
            &cells,
            &chains,
            &Topology::testbed(),
            &oracle,
            0.002,
            Workers::new(workers),
        );
        serde_json::to_string_pretty(&rows).expect("rows serialize")
    };
    let baseline = report(1);
    for w in WORKER_COUNTS {
        assert_eq!(report(w), baseline, "sweep JSON diverged with {w} workers");
    }
}
