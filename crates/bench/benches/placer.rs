//! Criterion benches for the Placer (§5.3 "Scaling Placer Computation").
//!
//! Regenerates the heuristic-vs-brute-force comparison as statistically
//! sound microbenchmarks: the paper reports 3.5 s for the heuristic on the
//! 4-chain / 34-NF-instance configuration vs 14 901 s for exhaustive brute
//! force; our ranked brute force bounds the exhaustive search, and the
//! per-candidate evaluation cost lets `exp_placer_scaling` project the
//! full-enumeration time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemur_bench::{build_problem, cached_compiler_oracle, compiler_oracle};
use lemur_core::chains::CanonicalChain::{self, *};
use lemur_placer::brute::BruteConfig;
use lemur_placer::oracle::ModelOracle;
use lemur_placer::topology::Topology;

fn sets() -> Vec<(&'static str, Vec<CanonicalChain>)> {
    vec![
        ("1chain", vec![Chain3]),
        ("2chains", vec![Chain2, Chain3]),
        ("4chains", vec![Chain1, Chain2, Chain3, Chain4]),
    ]
}

fn bench_heuristic(c: &mut Criterion) {
    let mut group = c.benchmark_group("placer_heuristic");
    group.sample_size(10);
    let oracle = compiler_oracle();
    for (label, chains) in sets() {
        let (p, _) = build_problem(&chains, 1.0, Topology::testbed());
        group.bench_with_input(BenchmarkId::from_parameter(label), &p, |b, p| {
            b.iter(|| lemur_placer::heuristic::place(p, &oracle).unwrap());
        });
    }
    group.finish();
}

fn bench_brute(c: &mut Criterion) {
    let mut group = c.benchmark_group("placer_brute_ranked");
    group.sample_size(10);
    let oracle = compiler_oracle();
    for (label, chains) in sets() {
        let (p, _) = build_problem(&chains, 1.0, Topology::testbed());
        group.bench_with_input(BenchmarkId::from_parameter(label), &p, |b, p| {
            b.iter(|| lemur_placer::brute::optimal(p, &oracle, BruteConfig::default()).unwrap());
        });
    }
    group.finish();
}

fn bench_brute_cached(c: &mut Criterion) {
    // The same ranked brute force with the memoized stage oracle: the
    // search's repeated probes of identical switch programs (candidates
    // differing only in server choice) hit the cache instead of
    // re-running stage packing. Compare against `placer_brute_ranked`
    // for the cache's end-to-end win; the warm variant keeps the cache
    // across iterations (a δ-sweep's steady state), the cold variant
    // clears it every iteration (a single search from scratch).
    let mut group = c.benchmark_group("placer_brute_cached");
    group.sample_size(10);
    let oracle = cached_compiler_oracle();
    for (label, chains) in sets() {
        let (p, _) = build_problem(&chains, 1.0, Topology::testbed());
        group.bench_with_input(BenchmarkId::new("warm", label), &p, |b, p| {
            b.iter(|| lemur_placer::brute::optimal(p, &oracle, BruteConfig::default()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("cold", label), &p, |b, p| {
            b.iter(|| {
                oracle.cache().clear();
                lemur_placer::brute::optimal(p, &oracle, BruteConfig::default()).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_stage_oracle(c: &mut Criterion) {
    // The cost of one stage-feasibility check: the real compiler vs the
    // analytic model — the gap the heuristic's pruning saves.
    let (p, _) = build_problem(&[Chain1, Chain2, Chain3, Chain4], 1.0, Topology::testbed());
    let a = lemur_placer::baselines::hw_preferred_assignment(&p);
    let real = compiler_oracle();
    let model = ModelOracle::default();
    let mut group = c.benchmark_group("stage_oracle");
    group.bench_function("compiler", |b| {
        b.iter(|| lemur_placer::oracle::StageOracle::check(&real, &p, &a));
    });
    group.bench_function("model", |b| {
        b.iter(|| lemur_placer::oracle::StageOracle::check(&model, &p, &a));
    });
    group.finish();
}

fn bench_lp(c: &mut Criterion) {
    // The marginal-throughput LP plus core allocation (§3.2 step 3).
    let (p, _) = build_problem(&[Chain1, Chain2, Chain3, Chain4], 1.0, Topology::testbed());
    let a = lemur_placer::baselines::hw_preferred_assignment(&p);
    c.bench_function("placement_evaluate_lp", |b| {
        b.iter(|| {
            p.evaluate(&a, lemur_placer::corealloc::CoreStrategy::WaterFill)
                .unwrap()
        });
    });
}

/// Short measurement windows: these benches exist to regenerate the
/// paper's cost comparisons, not to chase nanosecond precision.
fn quick_config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_heuristic, bench_brute, bench_brute_cached, bench_stage_oracle, bench_lp
}
criterion_main!(benches);
