//! Criterion benches for the fused batch dataplane: single-NF sweeps over
//! a whole batch, fused static dispatch vs the boxed trait-object
//! reference, for the NFs whose per-packet cost the fusion work targets
//! (NAT's translation table, ACL's rule scan, Monitor's flow table).
//!
//! These isolate the per-NF dispatch + parse cost that
//! `exp_dataplane_throughput` measures end-to-end per chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lemur_bess::profiler::{generate_traffic, TrafficPattern};
use lemur_metacompiler::FusedSegment;
use lemur_nf::fused::FusedNf;
use lemur_nf::{build_nf, NfCtx, NfKind, NfParams, ParamValue};
use lemur_packet::batch::Batch;

const BATCH: usize = 32;

fn nf_params(kind: NfKind) -> NfParams {
    let mut params = NfParams::new();
    if kind == NfKind::Acl {
        params.set("num_rules", ParamValue::Int(256));
    }
    params
}

fn bench_single_nf_sweeps(c: &mut Criterion) {
    let traffic = generate_traffic(TrafficPattern::LongLived, BATCH, 64);
    let mut group = c.benchmark_group("dataplane_batch");
    group.throughput(Throughput::Elements(BATCH as u64));
    for kind in [NfKind::Nat, NfKind::Acl, NfKind::Monitor] {
        let params = nf_params(kind);
        group.bench_with_input(BenchmarkId::new("boxed", kind.name()), &kind, |b, &k| {
            b.iter_batched(
                || (build_nf(k, &params), traffic.clone()),
                |(mut nf, mut pkts)| {
                    let ctx = NfCtx { now_ns: 0 };
                    for pkt in pkts.iter_mut() {
                        let _ = nf.process(&ctx, pkt);
                    }
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("fused", kind.name()), &kind, |b, &k| {
            b.iter_batched(
                || {
                    (
                        FusedSegment::new("bench", vec![FusedNf::build(k, &params)]),
                        Batch::from_packets(traffic.clone()),
                        Vec::new(),
                    )
                },
                |(mut seg, mut batch, mut gates)| {
                    let ctx = NfCtx { now_ns: 0 };
                    let _ = seg.process_batch_inplace(&ctx, &mut batch, &mut gates);
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Short measurement windows: these benches exist as regression tripwires
/// for the fused sweep, not to chase nanosecond precision.
fn quick_config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_single_nf_sweeps
}
criterion_main!(benches);
