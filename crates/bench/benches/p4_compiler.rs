//! Criterion benches for the P4 stage-packing compiler — the feasibility
//! oracle the Placer invokes per candidate placement (§3.2 motivates the
//! heuristic by the cost of these invocations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lemur_core::chains::extreme_nat_chain;
use lemur_core::graph::ChainSpec;
use lemur_core::Slo;
use lemur_metacompiler::{p4gen, routing};
use lemur_p4sim::compiler::{compile, estimate_conservative, CompileOptions};
use lemur_p4sim::PisaModel;
use lemur_placer::placement::PlacementProblem;
use lemur_placer::profiles::NfProfiles;
use lemur_placer::topology::Topology;

fn nat_program(n: usize) -> lemur_p4sim::P4Program {
    let mut p = PlacementProblem::new(
        vec![ChainSpec {
            name: format!("extreme{n}"),
            graph: extreme_nat_chain(n),
            slo: Some(Slo::bulk()),
            aggregate: None,
        }],
        Topology::testbed(),
        NfProfiles::table4(),
    );
    p.chains[0].slo = Some(Slo::elastic_pipe(0.0, 100e9));
    let a = lemur_placer::baselines::hw_preferred_assignment(&p);
    let plan = routing::plan(&p, &a);
    p4gen::synthesize(&p, &a, &plan, p4gen::P4GenOptions::default())
        .unwrap()
        .program
}

fn bench_compile(c: &mut Criterion) {
    let model = PisaModel::default();
    let mut group = c.benchmark_group("p4_stage_packing");
    for n in [4usize, 8, 10] {
        let program = nat_program(n);
        group.bench_with_input(BenchmarkId::new("compile", n), &program, |b, p| {
            b.iter(|| compile(p, &model, CompileOptions::default()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("estimate", n), &program, |b, p| {
            b.iter(|| estimate_conservative(p, &model));
        });
    }
    group.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    // Full meta-compilation (synthesis + entries), per oracle invocation.
    let mut p = PlacementProblem::new(
        vec![ChainSpec {
            name: "extreme10".into(),
            graph: extreme_nat_chain(10),
            slo: Some(Slo::bulk()),
            aggregate: None,
        }],
        Topology::testbed(),
        NfProfiles::table4(),
    );
    p.chains[0].slo = Some(Slo::elastic_pipe(0.0, 100e9));
    let a = lemur_placer::baselines::hw_preferred_assignment(&p);
    c.bench_function("p4_synthesize_10nat", |b| {
        b.iter(|| {
            let plan = routing::plan(&p, &a);
            p4gen::synthesize(&p, &a, &plan, p4gen::P4GenOptions::default()).unwrap()
        });
    });
}

/// Short measurement windows: these benches exist to regenerate the
/// paper's cost comparisons, not to chase nanosecond precision.
fn quick_config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_compile, bench_synthesis
}
criterion_main!(benches);
