//! Criterion benches for the flow-level fast path: the per-window costs
//! the hybrid engine pays that the packet-level engine does not —
//! scenario materialization (inverse-CDF sampling + arrival scheduling),
//! analytic tail-plan aggregation, and heavy-hitter packet replay.
//!
//! `exp_scale` measures the same machinery end-to-end at million-flow
//! scale; these isolate the flowsim stages so regressions are
//! attributable.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lemur_dataplane::{
    ChainLoad, Diurnal, FlowPacketSource, FlowSizeDist, ScenarioSpec, Surge, SurgeKind, TrafficSpec,
};

const FLOWS: usize = 20_000;
const HORIZON_NS: u64 = 10_000_000;
const THETA: u64 = 256;
const WINDOW_NS: u64 = 1_000_000;

fn spec() -> ScenarioSpec {
    ScenarioSpec {
        seed: 42,
        horizon_ns: HORIZON_NS,
        chains: vec![ChainLoad {
            flows: FLOWS,
            flow_rate_pps: 400_000.0,
            size: FlowSizeDist {
                alpha: 1.1,
                min_packets: 1,
                max_packets: 2_048,
            },
            diurnal: Some(Diurnal {
                period_ns: HORIZON_NS,
                amplitude: 0.3,
            }),
            surges: vec![Surge {
                kind: SurgeKind::FlashCrowd,
                start_ns: HORIZON_NS / 2,
                duration_ns: HORIZON_NS / 8,
                factor: 3.0,
            }],
        }],
    }
}

fn bench_flowsim_window(c: &mut Criterion) {
    let s = spec();
    let scenario = s.materialize();
    let traffic = TrafficSpec::for_chain(1, 1e9).expect("chain 1 in range");
    let frame_len = vec![(traffic.payload_len + 42) as u64];

    let mut group = c.benchmark_group("flowsim_window");
    group.throughput(Throughput::Elements(FLOWS as u64));
    group.bench_function("materialize_20k", |b| {
        b.iter(|| criterion::black_box(&s).materialize());
    });
    group.bench_function("tail_plan_20k", |b| {
        b.iter(|| {
            criterion::black_box(&scenario).tail_plan(THETA, WINDOW_NS, WINDOW_NS, &frame_len)
        });
    });
    group.bench_function("heavy_replay_20k", |b| {
        b.iter(|| {
            let mut src = FlowPacketSource::new(
                criterion::black_box(&scenario),
                0,
                |f| f.size_packets >= THETA,
                traffic.src_prefix,
                traffic.payload_len,
            );
            let mut n = 0u64;
            while let Some((_t, buf)) = src.next_packet() {
                criterion::black_box(&buf);
                n += 1;
            }
            n
        });
    });
    group.finish();
}

criterion_group!(benches, bench_flowsim_window);
criterion_main!(benches);
