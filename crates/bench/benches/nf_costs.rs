//! Criterion benches for the NF library — the per-packet processing cost
//! ladder behind Table 4 / the Placer's profiles. Each bench processes one
//! pre-built packet through one NF (matching the profiler's per-packet
//! accounting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lemur_bess::profiler::{generate_traffic, TrafficPattern};
use lemur_nf::{build_nf, NfCtx, NfKind, NfParams, ParamValue};

fn bench_nfs(c: &mut Criterion) {
    let traffic = generate_traffic(TrafficPattern::LongLived, 256, 1024);
    let mut group = c.benchmark_group("nf_per_packet");
    group.throughput(Throughput::Elements(traffic.len() as u64));
    for kind in NfKind::ALL {
        let mut params = NfParams::new();
        if kind == NfKind::Acl {
            params.set("num_rules", ParamValue::Int(1024));
        }
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter_batched(
                || (build_nf(k, &params), traffic.clone()),
                |(mut nf, mut batch)| {
                    let ctx = NfCtx { now_ns: 0 };
                    for pkt in batch.iter_mut() {
                        let _ = nf.process(&ctx, pkt);
                    }
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_crypto(c: &mut Criterion) {
    use lemur_nf::crypto::{cbc_encrypt, Aes128, ChaCha20};
    let data = vec![0xabu8; 1400];
    let aes = Aes128::new(b"0123456789abcdef");
    let chacha = ChaCha20::new(&[7u8; 32], &[1u8; 12]);
    let mut group = c.benchmark_group("crypto_1400B");
    group.throughput(Throughput::Bytes(1400));
    group.bench_function("aes128_cbc", |b| {
        b.iter(|| cbc_encrypt(&aes, &[0u8; 16], &data));
    });
    group.bench_function("chacha20", |b| {
        b.iter_batched(
            || data.clone(),
            |mut d| chacha.apply(1, &mut d),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// Short measurement windows: these benches exist to regenerate the
/// paper's cost comparisons, not to chase nanosecond precision.
fn quick_config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_nfs, bench_crypto
}
criterion_main!(benches);
