//! Criterion benches for the §5.3 coordination overheads: NSH encap/decap
//! ("about 220 cycles"), demux steering ("about 180 cycles to load-balance
//! packets"), and the end-to-end testbed hop costs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lemur_bess::demux::{Demux, DemuxKey};
use lemur_packet::builder::{nsh_decap, nsh_encap, udp_packet, vlan_pop, vlan_push};
use lemur_packet::{ethernet, ipv4, PacketBuf};

fn base_packet() -> PacketBuf {
    udp_packet(
        ethernet::Address([2, 0, 0, 0, 0, 1]),
        ethernet::Address([2, 0, 0, 0, 0, 2]),
        ipv4::Address::new(10, 0, 0, 1),
        ipv4::Address::new(10, 0, 0, 2),
        1000,
        2000,
        &[0u8; 1400],
    )
}

fn bench_nsh(c: &mut Criterion) {
    let pkt = base_packet();
    let mut group = c.benchmark_group("coordination");
    group.throughput(Throughput::Elements(1));
    group.bench_function("nsh_encap_decap", |b| {
        b.iter_batched(
            || pkt.clone(),
            |mut p| {
                nsh_encap(&mut p, 1, 250);
                nsh_decap(&mut p)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("vlan_push_pop", |b| {
        b.iter_batched(
            || pkt.clone(),
            |mut p| {
                vlan_push(&mut p, 42);
                vlan_pop(&mut p)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    let mut demux = Demux::new();
    demux.add_entry(DemuxKey { spi: 1, si: 249 }, 0, 4);
    let mut enc = pkt.clone();
    nsh_encap(&mut enc, 1, 249);
    group.bench_function("demux_steer_4way", |b| {
        b.iter_batched(
            || enc.clone(),
            |mut p| demux.steer(&mut p),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_switch_pipeline(c: &mut Criterion) {
    // Full generated-P4 switch traversal for chain 5's ingress visit.
    use lemur_bench::{build_problem, Scheme};
    use lemur_core::chains::CanonicalChain::Chain5;
    use lemur_placer::topology::Topology;
    let (p, _) = build_problem(&[Chain5], 0.5, Topology::testbed());
    let oracle = lemur_bench::compiler_oracle();
    let e = lemur_bench::place(Scheme::Lemur, &p, &oracle).unwrap();
    let plan = lemur_metacompiler::routing::plan(&p, &e.assignment);
    let synth = lemur_metacompiler::p4gen::synthesize(&p, &e.assignment, &plan, Default::default())
        .unwrap();
    let mut sw =
        lemur_p4sim::Switch::new(synth.program.clone(), *p.topology.pisa().unwrap()).unwrap();
    synth.install(&mut sw);
    let fresh = udp_packet(
        ethernet::Address([2, 0, 0, 0, 0, 1]),
        ethernet::Address([2, 0, 0, 0, 0, 2]),
        ipv4::Address::new(10, 1, 0, 1),
        ipv4::Address::new(10, 200, 0, 1),
        1234,
        80,
        &[0u8; 256],
    );
    c.bench_function("switch_ingress_visit", |b| {
        b.iter_batched(
            || fresh.clone(),
            |mut p| sw.process(&mut p),
            criterion::BatchSize::SmallInput,
        );
    });
}

/// Short measurement windows: these benches exist to regenerate the
/// paper's cost comparisons, not to chase nanosecond precision.
fn quick_config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_nsh, bench_switch_pipeline
}
criterion_main!(benches);
