//! # lemur-bench
//!
//! The experiment harness: shared machinery used by the `exp_*` binaries
//! to regenerate every table and figure of the paper's evaluation (see
//! `DESIGN.md`'s per-experiment index) and by the Criterion microbenches.
//!
//! The flow for every throughput experiment mirrors §5.1 "Metrics":
//! compute the placement per scheme, generate code with the meta-compiler,
//! and — *only when the placement is feasible* — execute the chains on the
//! simulated testbed and measure aggregate throughput.

pub mod table;

use lemur_core::chains::{canonical_chain, CanonicalChain};
use lemur_core::graph::ChainSpec;
use lemur_core::Slo;
use lemur_dataplane::{SimConfig, Testbed, TrafficSpec};
use lemur_metacompiler::{CachedCompilerOracle, CompilerOracle};
use lemur_placer::oracle::StageOracle;
use lemur_placer::parallel::{parallel_map, Workers};
use lemur_placer::placement::{EvaluatedPlacement, PlacementError, PlacementProblem};
use lemur_placer::profiles::NfProfiles;
use lemur_placer::topology::Topology;
use std::fmt;
use std::path::PathBuf;

/// The placement schemes compared in Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    Lemur,
    Optimal,
    HwPreferred,
    SwPreferred,
    MinBounce,
    Greedy,
    NoProfiling,
    NoCoreAlloc,
}

impl Scheme {
    /// The six Figure 2(a–e) schemes.
    pub const COMPARISON: [Scheme; 6] = [
        Scheme::Lemur,
        Scheme::Optimal,
        Scheme::HwPreferred,
        Scheme::SwPreferred,
        Scheme::MinBounce,
        Scheme::Greedy,
    ];

    /// The Figure 2f variants.
    pub const ABLATIONS: [Scheme; 3] = [Scheme::Lemur, Scheme::NoProfiling, Scheme::NoCoreAlloc];
}

impl serde::Serialize for Scheme {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(format!("{self:?}"))
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scheme::Lemur => "Lemur",
            Scheme::Optimal => "Optimal",
            Scheme::HwPreferred => "HW Preferred",
            Scheme::SwPreferred => "SW Preferred",
            Scheme::MinBounce => "Min Bounce",
            Scheme::Greedy => "Greedy",
            Scheme::NoProfiling => "No Profiling",
            Scheme::NoCoreAlloc => "No Core Alloc",
        };
        write!(f, "{s:>13}")
    }
}

/// Build the placement problem for a set of canonical chains at a given δ
/// (t_min = δ × base rate, t_max = 100 Gbps, §5.1), along with matching
/// traffic specs whose aggregates the generated P4 classifies on.
pub fn build_problem(
    which: &[CanonicalChain],
    delta: f64,
    topology: Topology,
) -> (PlacementProblem, Vec<TrafficSpec>) {
    let mut specs = Vec::new();
    let chains: Vec<ChainSpec> = which
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let spec = TrafficSpec::for_chain(i + 1, 1e9).expect("chain index in range");
            let agg = spec.aggregate();
            specs.push(spec);
            ChainSpec {
                name: format!("chain{}", w.index()),
                graph: canonical_chain(*w),
                slo: None,
                aggregate: Some(agg),
            }
        })
        .collect();
    let mut p = PlacementProblem::new(chains, topology, NfProfiles::table4());
    for i in 0..p.chains.len() {
        let base = p.base_rate_bps(i);
        p.chains[i].slo = Some(Slo::elastic_pipe(delta * base, 100e9));
    }
    (p, specs)
}

/// Run one scheme's placement (stage feasibility via the real compiler
/// oracle unless the caller supplies another).
pub fn place(
    scheme: Scheme,
    problem: &PlacementProblem,
    oracle: &dyn StageOracle,
) -> Result<EvaluatedPlacement, PlacementError> {
    match scheme {
        Scheme::Lemur => lemur_placer::heuristic::place(problem, oracle),
        Scheme::Optimal => lemur_placer::brute::optimal(
            problem,
            oracle,
            lemur_placer::brute::BruteConfig::default(),
        ),
        Scheme::HwPreferred => lemur_placer::baselines::hw_preferred(problem, oracle),
        Scheme::SwPreferred => lemur_placer::baselines::sw_preferred(problem, oracle),
        Scheme::MinBounce => lemur_placer::baselines::min_bounce(problem, oracle),
        Scheme::Greedy => lemur_placer::baselines::greedy(problem, oracle),
        Scheme::NoProfiling => lemur_placer::ablations::no_profiling(problem, oracle),
        Scheme::NoCoreAlloc => lemur_placer::ablations::no_core_allocation(problem, oracle),
    }
}

/// The default stage oracle: the meta-compiler + `lemur-p4sim` compiler.
pub fn compiler_oracle() -> CompilerOracle {
    CompilerOracle::new()
}

/// The memoizing stage oracle: identical verdicts to [`compiler_oracle`],
/// but repeated probes of the same synthesized switch program skip stage
/// packing. Share one instance across a whole (set, δ, scheme) sweep so
/// cells that re-derive the same program hit the cache.
pub fn cached_compiler_oracle() -> CachedCompilerOracle {
    CachedCompilerOracle::new()
}

/// Why a measurement run could not start: each stage of the
/// placer → meta-compiler → dataplane pipeline surfaces its own typed
/// error instead of a panic or a stringly-typed one.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureError {
    /// The meta-compiler rejected the placement.
    Compile(lemur_metacompiler::CompileError),
    /// The simulated testbed could not be built from the deployment.
    Build(lemur_dataplane::BuildError),
}

impl From<lemur_metacompiler::CompileError> for MeasureError {
    fn from(e: lemur_metacompiler::CompileError) -> Self {
        MeasureError::Compile(e)
    }
}

impl From<lemur_dataplane::BuildError> for MeasureError {
    fn from(e: lemur_dataplane::BuildError) -> Self {
        MeasureError::Build(e)
    }
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::Compile(e) => write!(f, "meta-compilation failed: {e}"),
            MeasureError::Build(e) => write!(f, "testbed build failed: {e}"),
        }
    }
}

impl std::error::Error for MeasureError {}

/// Meta-compile and execute a feasible placement on the simulated
/// testbed; offered load = 110% of each chain's predicted rate.
pub fn measure(
    problem: &PlacementProblem,
    placement: &EvaluatedPlacement,
    specs: &[TrafficSpec],
    duration_s: f64,
) -> Result<lemur_dataplane::SimReport, MeasureError> {
    let deployment = lemur_metacompiler::compile(problem, placement)?;
    let mut testbed = Testbed::build(problem, placement, deployment)?;
    let mut offered: Vec<TrafficSpec> = specs.to_vec();
    for (i, s) in offered.iter_mut().enumerate() {
        s.offered_bps = (placement.chain_rates_bps[i] * 1.1).max(1e8);
    }
    let config = SimConfig {
        duration_s,
        warmup_s: duration_s / 5.0,
        ..SimConfig::default()
    };
    Ok(testbed.run(&offered, config))
}

/// Like [`measure`], but injecting a [`FaultPlan`] mid-run with the SLO
/// guard armed (per-chain SLOs from the problem), so the report carries a
/// fault/violation timeline and per-window samples.
pub fn measure_with_faults(
    problem: &PlacementProblem,
    placement: &EvaluatedPlacement,
    specs: &[TrafficSpec],
    duration_s: f64,
    plan: &lemur_dataplane::FaultPlan,
) -> Result<lemur_dataplane::SimReport, MeasureError> {
    let deployment = lemur_metacompiler::compile(problem, placement)?;
    let mut testbed = Testbed::build(problem, placement, deployment)?;
    let mut offered: Vec<TrafficSpec> = specs.to_vec();
    for (i, s) in offered.iter_mut().enumerate() {
        s.offered_bps = (placement.chain_rates_bps[i] * 1.1).max(1e8);
    }
    let config = SimConfig {
        duration_s,
        warmup_s: duration_s / 5.0,
        ..SimConfig::default()
    };
    let slos: Vec<Option<Slo>> = problem.chains.iter().map(|c| c.slo).collect();
    Ok(testbed.run_with_faults(&offered, config, plan, &slos))
}

/// One result row of a comparison experiment.
#[derive(Debug, Clone)]
pub struct Row {
    pub scheme: Scheme,
    pub delta: f64,
    pub feasible: bool,
    /// Σ t_min over chains (the hashed rectangle of Figure 2).
    pub aggregate_tmin_gbps: f64,
    /// Placer-predicted aggregate throughput (the ◇ marker).
    pub predicted_gbps: f64,
    /// Measured aggregate throughput (the bar).
    pub measured_gbps: f64,
    pub marginal_gbps: f64,
    pub stages_used: Option<usize>,
    /// Stage-oracle invocations the search made for this cell (from
    /// [`lemur_placer::placement::SearchTelemetry`]); `None` when the
    /// placement failed. Deterministic — independent of worker count.
    pub oracle_calls: Option<u64>,
}

impl serde::Serialize for Row {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("scheme".to_string(), self.scheme.to_value()),
            ("delta".to_string(), self.delta.to_value()),
            ("feasible".to_string(), self.feasible.to_value()),
            (
                "aggregate_tmin_gbps".to_string(),
                self.aggregate_tmin_gbps.to_value(),
            ),
            ("predicted_gbps".to_string(), self.predicted_gbps.to_value()),
            ("measured_gbps".to_string(), self.measured_gbps.to_value()),
            ("marginal_gbps".to_string(), self.marginal_gbps.to_value()),
            ("stages_used".to_string(), self.stages_used.to_value()),
            ("oracle_calls".to_string(), self.oracle_calls.to_value()),
        ])
    }
}

/// Pretty-print rows grouped by δ.
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    println!(
        "{:>13} {:>5} {:>9} {:>10} {:>10} {:>10} {:>7} {:>8}",
        "scheme", "δ", "feasible", "Σt_min(G)", "pred(G)", "meas(G)", "stages", "oracle"
    );
    for r in rows {
        println!(
            "{} {:>5.1} {:>9} {:>10.2} {:>10.2} {:>10.2} {:>7} {:>8}",
            r.scheme,
            r.delta,
            if r.feasible { "yes" } else { "NO" },
            r.aggregate_tmin_gbps,
            if r.feasible {
                r.predicted_gbps
            } else {
                f64::NAN
            },
            if r.feasible {
                r.measured_gbps
            } else {
                f64::NAN
            },
            r.stages_used.map(|s| s.to_string()).unwrap_or_default(),
            r.oracle_calls.map(|c| c.to_string()).unwrap_or_default(),
        );
    }
}

/// Write a JSON result artifact under `target/experiments/`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("experiments");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if std::fs::write(&path, s).is_ok() {
                println!("[wrote {}]", path.display());
            }
        }
        Err(e) => eprintln!("failed to serialize {name}: {e}"),
    }
}

/// Run one (scheme, δ) cell of a comparison figure.
pub fn run_cell(
    scheme: Scheme,
    which: &[CanonicalChain],
    delta: f64,
    topology: Topology,
    oracle: &dyn StageOracle,
    sim_duration_s: f64,
) -> Row {
    let (problem, specs) = build_problem(which, delta, topology);
    let aggregate_tmin: f64 = problem
        .chains
        .iter()
        .map(|c| c.slo.unwrap().t_min_bps)
        .sum();
    match place(scheme, &problem, oracle) {
        Ok(placement) => {
            let measured = measure(&problem, &placement, &specs, sim_duration_s)
                .map(|r| r.aggregate_bps())
                .unwrap_or(0.0);
            Row {
                scheme,
                delta,
                feasible: true,
                aggregate_tmin_gbps: aggregate_tmin / 1e9,
                predicted_gbps: placement.aggregate_bps / 1e9,
                measured_gbps: measured / 1e9,
                marginal_gbps: (measured - aggregate_tmin).max(0.0) / 1e9,
                stages_used: placement.stages_used,
                oracle_calls: placement.telemetry.map(|t| t.oracle_calls),
            }
        }
        Err(_) => Row {
            scheme,
            delta,
            feasible: false,
            aggregate_tmin_gbps: aggregate_tmin / 1e9,
            predicted_gbps: 0.0,
            measured_gbps: 0.0,
            marginal_gbps: 0.0,
            stages_used: None,
            oracle_calls: None,
        },
    }
}

/// Fan a whole (scheme, δ) sweep over the worker pool. Each cell is
/// independent (it builds its own problem and testbed), so the sweep is
/// embarrassingly parallel; ordered reduction in
/// [`lemur_placer::parallel::parallel_map`] returns rows in exactly the
/// order of `cells` — identical to the sequential nested loop regardless
/// of worker count, which keeps the printed tables and JSON artifacts
/// bit-comparable across `LEMUR_WORKERS` settings.
pub fn run_cells(
    cells: &[(Scheme, f64)],
    which: &[CanonicalChain],
    topology: &Topology,
    oracle: &dyn StageOracle,
    sim_duration_s: f64,
    workers: Workers,
) -> Vec<Row> {
    parallel_map(workers, cells, |_, &(scheme, delta)| {
        run_cell(
            scheme,
            which,
            delta,
            topology.clone(),
            oracle,
            sim_duration_s,
        )
    })
}

/// Chain-set definitions for Figure 2(a–e).
pub fn figure2_set(set: char) -> Option<Vec<CanonicalChain>> {
    use CanonicalChain::*;
    Some(match set {
        'a' => vec![Chain1, Chain2, Chain3, Chain4],
        'b' => vec![Chain1, Chain2, Chain3],
        'c' => vec![Chain1, Chain2, Chain4],
        'd' => vec![Chain1, Chain3, Chain4],
        'e' => vec![Chain2, Chain3, Chain4],
        'f' => vec![Chain1, Chain2, Chain3, Chain4],
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_placer::oracle::AlwaysFits;

    #[test]
    fn cell_runs_lemur_feasibly() {
        let row = run_cell(
            Scheme::Lemur,
            &[CanonicalChain::Chain3],
            0.5,
            Topology::testbed(),
            &AlwaysFits,
            0.003,
        );
        assert!(row.feasible);
        assert!(row.measured_gbps > 0.0);
        assert!(row.predicted_gbps > 0.0);
    }

    #[test]
    fn figure2_sets_defined() {
        for set in ['a', 'b', 'c', 'd', 'e', 'f'] {
            assert!(figure2_set(set).is_some());
        }
        assert!(figure2_set('z').is_none());
        assert_eq!(figure2_set('a').unwrap().len(), 4);
        assert_eq!(figure2_set('b').unwrap().len(), 3);
    }

    #[test]
    fn infeasible_cell_reports_cleanly() {
        let row = run_cell(
            Scheme::NoCoreAlloc,
            &[CanonicalChain::Chain3],
            3.0,
            Topology::testbed(),
            &AlwaysFits,
            0.003,
        );
        assert!(!row.feasible);
        assert_eq!(row.measured_gbps, 0.0);
    }
}
