//! Console-table and JSON-row emission shared by the `exp_*` binaries.
//!
//! Every experiment prints an aligned table to stdout and serializes the
//! same rows into a `target/experiments/*.json` artifact. Before this
//! module each binary hand-rolled both — column widths in one format
//! string, headers in another, and a field-by-field [`serde::Serialize`]
//! impl that had to repeat every name. [`Table`] keeps header and row
//! alignment in one place, and [`json_row`] builds the artifact object
//! from the same `(name, value)` pairs.

use std::fmt::Display;

/// Column alignment within its fixed width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

/// An aligned console table: declare the columns once, then print the
/// header and any number of rows with matching alignment.
#[derive(Debug, Default)]
pub struct Table {
    cols: Vec<(String, usize, Align)>,
}

impl Table {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a left-aligned column of the given width.
    pub fn left(mut self, header: &str, width: usize) -> Self {
        self.cols.push((header.to_string(), width, Align::Left));
        self
    }

    /// Append a right-aligned column of the given width.
    pub fn right(mut self, header: &str, width: usize) -> Self {
        self.cols.push((header.to_string(), width, Align::Right));
        self
    }

    fn format_cells(&self, cells: &[String]) -> String {
        assert_eq!(
            cells.len(),
            self.cols.len(),
            "row arity {} != column count {}",
            cells.len(),
            self.cols.len()
        );
        let mut line = String::new();
        for (cell, (_, width, align)) in cells.iter().zip(&self.cols) {
            if !line.is_empty() {
                line.push(' ');
            }
            match align {
                Align::Left => line.push_str(&format!("{cell:<width$}")),
                Align::Right => line.push_str(&format!("{cell:>width$}")),
            }
        }
        // Trailing pad spaces from a final left column are noise.
        line.trim_end().to_string()
    }

    /// The header line (column names in their declared widths).
    pub fn header(&self) -> String {
        let names: Vec<String> = self.cols.iter().map(|(h, _, _)| h.clone()).collect();
        self.format_cells(&names)
    }

    /// One data row; panics if the cell count does not match the columns.
    pub fn row(&self, cells: &[String]) -> String {
        self.format_cells(cells)
    }

    pub fn print_header(&self) {
        println!("{}", self.header());
    }

    pub fn print_row(&self, cells: &[String]) {
        println!("{}", self.row(cells));
    }
}

/// Shorthand for building a row: stringify anything displayable.
pub fn cell(v: impl Display) -> String {
    v.to_string()
}

/// A float cell with fixed precision.
pub fn fnum(v: f64, precision: usize) -> String {
    format!("{v:.precision$}")
}

/// Build a JSON object row from `(name, value)` pairs — the serialization
/// twin of [`Table::row`], so experiment structs can implement
/// [`serde::Serialize`] without repeating `.to_string()` per field.
pub fn json_row(fields: Vec<(&str, serde::Value)>) -> serde::Value {
    serde::Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[test]
    fn header_and_rows_align() {
        let t = Table::new().left("chain", 8).right("pps", 10);
        assert_eq!(t.header(), "chain           pps");
        assert_eq!(
            t.row(&[cell("nat-mon"), fnum(1.25, 2)]),
            "nat-mon        1.25"
        );
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let t = Table::new().left("a", 3);
        t.row(&[cell(1), cell(2)]);
    }

    #[test]
    fn json_row_preserves_order_and_types() {
        let v = json_row(vec![
            ("name", "x".to_value()),
            ("count", 3u64.to_value()),
            ("rate", 0.5f64.to_value()),
        ]);
        assert_eq!(v.get("name").and_then(|v| v.as_str()), Some("x"));
        assert_eq!(v.get("count").and_then(|v| v.as_f64()), Some(3.0));
        match &v {
            serde::Value::Object(entries) => {
                let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["name", "count", "rate"]);
            }
            other => panic!("not an object: {other:?}"),
        }
    }
}
