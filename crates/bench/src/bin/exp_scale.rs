//! Million-flow hybrid-engine scaling: the flow-level fast path over the
//! fused dataplane, end to end.
//!
//! Usage: `exp_scale [--quick] [--baseline PATH]`
//!
//! A two-chain placement (Chain3 + Chain5, hardware-preferred) is driven
//! by seeded flow-level scenarios of growing size — 10 k, 100 k, and
//! 1 M flows total — with heavy-tailed sizes (bounded Pareto, α = 1.1),
//! a diurnal rate curve, a mid-run flash crowd, and a DDoS surge of
//! minimum-size junk flows. Heavy hitters (≥ θ packets) are materialized
//! packet-by-packet through the fused path; the long tail advances
//! analytically per SLO window, so simulated work scales with *heavy*
//! packets while conservation stays exact-integer.
//!
//! Per cell the experiment reports materialization and run wall-clock,
//! simulated packet rate, and the heavy/tail split; every scenario must
//! pass the statistical traffic validator, and every run's conservation
//! ledger must balance. A small cell is additionally replayed at full
//! packet level and compared against the hybrid run within the
//! documented in-flight + window-edge bound.
//!
//! Results land in `target/experiments/BENCH_scale.json`; a snapshot is
//! checked in at the repo root. Exit is non-zero if any gate fails:
//! validator rejection, unbalanced ledger, equivalence divergence, the
//! 1 M-flow cell exceeding its 60 s wall-clock budget (full mode), or —
//! when `--baseline` points at a previous artifact — a cell simulating
//! packets at less than half the baseline's rate.

use lemur_bench::table::{cell, fnum, json_row, Table};
use lemur_bench::{build_problem, write_json};
use lemur_core::chains::CanonicalChain;
use lemur_dataplane::{
    validate_scenario, ChainLoad, Diurnal, FlowSizeDist, HybridConfig, HybridMode, RuntimeMode,
    Scenario, ScenarioSpec, SimConfig, Surge, SurgeKind, Testbed, TrafficSpec, TrafficTolerance,
};
use lemur_placer::corealloc::CoreStrategy;
use lemur_placer::placement::{EvaluatedPlacement, PlacementProblem};
use std::time::Instant;

/// Heavy-hitter threshold (packets): flows at or above it are
/// materialized, the rest advance analytically.
const THETA: u64 = 512;
/// Wall-clock budget for the headline 1 M-flow cell (full mode).
const HEADLINE_BUDGET_S: f64 = 60.0;
const HEADLINE_FLOWS: usize = 1_000_000;

fn scales(quick: bool) -> Vec<usize> {
    if quick {
        vec![10_000, 50_000]
    } else {
        vec![10_000, 100_000, HEADLINE_FLOWS]
    }
}

/// One chain's load: heavy-tailed sizes under a diurnal envelope with a
/// flash crowd and a DDoS junk-flow surge in the back half of the run.
fn load(flows: usize, horizon_ns: u64, chain: usize) -> ChainLoad {
    ChainLoad {
        flows,
        flow_rate_pps: 400_000.0 + 100_000.0 * chain as f64,
        size: FlowSizeDist {
            alpha: 1.1,
            min_packets: 1,
            max_packets: 2_048,
        },
        diurnal: Some(Diurnal {
            period_ns: horizon_ns,
            amplitude: 0.3,
        }),
        surges: vec![
            Surge {
                kind: SurgeKind::FlashCrowd,
                start_ns: horizon_ns / 2,
                duration_ns: horizon_ns / 8,
                factor: 3.0,
            },
            Surge {
                kind: SurgeKind::Ddos,
                start_ns: horizon_ns * 5 / 8,
                duration_ns: horizon_ns / 8,
                factor: 2.0,
            },
        ],
    }
}

fn scenario_spec(total_flows: usize, horizon_ns: u64, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        seed,
        horizon_ns,
        chains: (0..2)
            .map(|ci| load(total_flows / 2, horizon_ns, ci))
            .collect(),
    }
}

fn sim_config() -> SimConfig {
    SimConfig {
        duration_s: 0.02,
        warmup_s: 0.005,
        seed: 7,
        ..SimConfig::default()
    }
}

fn horizon_ns(c: &SimConfig) -> u64 {
    ((c.warmup_s + c.duration_s) * 1e9) as u64
}

struct ScaleRow {
    flows_total: usize,
    /// DDoS junk flows included in `flows_total`.
    junk_flows: usize,
    packets_total: u64,
    heavy_flows: usize,
    heavy_packets: u64,
    materialize_s: f64,
    run_s: f64,
    /// Simulated packets (heavy + analytic tail) per wall-clock second.
    sim_mpps: f64,
    delivered_gbps: f64,
    ledger_balanced: bool,
    validator_ok: bool,
}

impl serde::Serialize for ScaleRow {
    fn to_value(&self) -> serde::Value {
        json_row(vec![
            ("flows_total", self.flows_total.to_value()),
            ("junk_flows", self.junk_flows.to_value()),
            ("packets_total", self.packets_total.to_value()),
            ("heavy_flows", self.heavy_flows.to_value()),
            ("heavy_packets", self.heavy_packets.to_value()),
            ("materialize_s", self.materialize_s.to_value()),
            ("run_s", self.run_s.to_value()),
            ("sim_mpps", self.sim_mpps.to_value()),
            ("delivered_gbps", self.delivered_gbps.to_value()),
            ("ledger_balanced", self.ledger_balanced.to_value()),
            ("validator_ok", self.validator_ok.to_value()),
        ])
    }
}

struct EquivalenceCheck {
    flows_total: usize,
    injected_packet: u64,
    injected_hybrid: u64,
    delivered_packet: u64,
    delivered_hybrid: u64,
    bound: u64,
    ok: bool,
}

impl serde::Serialize for EquivalenceCheck {
    fn to_value(&self) -> serde::Value {
        json_row(vec![
            ("flows_total", self.flows_total.to_value()),
            ("injected_packet", self.injected_packet.to_value()),
            ("injected_hybrid", self.injected_hybrid.to_value()),
            ("delivered_packet", self.delivered_packet.to_value()),
            ("delivered_hybrid", self.delivered_hybrid.to_value()),
            ("bound", self.bound.to_value()),
            ("ok", self.ok.to_value()),
        ])
    }
}

struct Artifact {
    quick: bool,
    theta: u64,
    cells: Vec<ScaleRow>,
    equivalence: EquivalenceCheck,
}

impl serde::Serialize for Artifact {
    fn to_value(&self) -> serde::Value {
        json_row(vec![
            ("quick", self.quick.to_value()),
            ("theta", self.theta.to_value()),
            ("cells", self.cells.to_value()),
            ("equivalence", self.equivalence.to_value()),
        ])
    }
}

fn testbed(p: &PlacementProblem, e: &EvaluatedPlacement) -> Testbed {
    Testbed::build_with_mode(p, e, RuntimeMode::Fused).expect("testbed build")
}

fn run_cell(
    p: &PlacementProblem,
    e: &EvaluatedPlacement,
    specs: &[TrafficSpec],
    total_flows: usize,
    failures: &mut Vec<String>,
) -> ScaleRow {
    let config = sim_config();
    let spec = scenario_spec(
        total_flows,
        horizon_ns(&config),
        0xC0FFEE ^ total_flows as u64,
    );
    let t0 = Instant::now();
    let scenario = spec.materialize();
    let materialize_s = t0.elapsed().as_secs_f64();

    let validator_ok = match validate_scenario(
        &spec,
        &scenario,
        config.window_ns,
        &TrafficTolerance::default(),
    ) {
        Ok(_) => true,
        Err(e) => {
            failures.push(format!(
                "{total_flows} flows: traffic validator rejected: {e}"
            ));
            false
        }
    };

    let junk_flows = scenario.flows.iter().filter(|f| f.ddos).count();
    let packets_total: u64 = scenario.flows.iter().map(|f| f.packets).sum();
    let heavy_flows = scenario.heavy_indices(THETA).len();
    let heavy_packets: u64 = scenario
        .flows
        .iter()
        .filter(|f| f.size_packets >= THETA)
        .map(|f| f.packets)
        .sum();

    let mut tb = testbed(p, e);
    let mode = HybridMode::Hybrid(HybridConfig {
        heavy_min_packets: THETA,
        ..HybridConfig::default()
    });
    let t1 = Instant::now();
    let report = tb
        .run_scenario(&scenario, specs, config, &mode)
        .expect("valid hybrid config");
    let run_s = t1.elapsed().as_secs_f64();

    if !report.ledger.balanced() {
        failures.push(format!(
            "{total_flows} flows: conservation ledger unbalanced: {:?}",
            report.ledger
        ));
    }
    ScaleRow {
        flows_total: scenario.flows.len(),
        junk_flows,
        packets_total,
        heavy_flows,
        heavy_packets,
        materialize_s,
        run_s,
        sim_mpps: packets_total as f64 / run_s / 1e6,
        delivered_gbps: report.aggregate_bps() / 1e9,
        ledger_balanced: report.ledger.balanced(),
        validator_ok,
    }
}

/// Replay a small cell at full packet level and check the hybrid run
/// against it within the in-flight + window-edge bound the equivalence
/// suite documents. The bound only holds in the unsaturated regime (a
/// saturated packet path drops what an unconstrained analytic tail does
/// not), so this cell runs the flow mix without surges.
fn equivalence_check(
    p: &PlacementProblem,
    e: &EvaluatedPlacement,
    specs: &[TrafficSpec],
    failures: &mut Vec<String>,
) -> EquivalenceCheck {
    let config = sim_config();
    let spec = ScenarioSpec {
        seed: 0xBEEF,
        horizon_ns: horizon_ns(&config),
        chains: (0..2)
            .map(|ci| ChainLoad {
                flows: 100,
                flow_rate_pps: 10_000.0 + 2_000.0 * ci as f64,
                size: FlowSizeDist {
                    alpha: 1.1,
                    min_packets: 1,
                    max_packets: 2_048,
                },
                diurnal: None,
                surges: vec![],
            })
            .collect(),
    };
    let scenario: Scenario = spec.materialize();
    let run = |mode: &HybridMode| {
        testbed(p, e)
            .run_scenario(&scenario, specs, config, mode)
            .expect("valid hybrid config")
    };
    let packet = run(&HybridMode::PacketLevel);
    let hybrid = run(&HybridMode::Hybrid(HybridConfig {
        heavy_min_packets: THETA,
        ..HybridConfig::default()
    }));
    let bound = packet.ledger.in_flight_at_end
        + hybrid.ledger.in_flight_at_end
        + (packet.ledger.injected / 50).max(3);
    let ok = packet.ledger.injected == hybrid.ledger.injected
        && packet.ledger.balanced()
        && hybrid.ledger.balanced()
        && packet.ledger.delivered.abs_diff(hybrid.ledger.delivered) <= bound;
    if !ok {
        failures.push(format!(
            "hybrid vs packet-level divergence: injected {} vs {}, delivered {} vs {} (bound {bound})",
            packet.ledger.injected,
            hybrid.ledger.injected,
            packet.ledger.delivered,
            hybrid.ledger.delivered,
        ));
    }
    EquivalenceCheck {
        flows_total: scenario.flows.len(),
        injected_packet: packet.ledger.injected,
        injected_hybrid: hybrid.ledger.injected,
        delivered_packet: packet.ledger.delivered,
        delivered_hybrid: hybrid.ledger.delivered,
        bound,
        ok,
    }
}

/// Regression gate: each cell must simulate packets at ≥ 50% of the rate
/// recorded for the same flow count in the baseline artifact.
fn check_baseline(path: &str, cells: &[ScaleRow], failures: &mut Vec<String>) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            failures.push(format!("baseline {path}: unreadable: {e}"));
            return;
        }
    };
    let value = match serde_json::parse_value_str(&text) {
        Ok(v) => v,
        Err(e) => {
            failures.push(format!("baseline {path}: parse error: {e:?}"));
            return;
        }
    };
    let Some(base_cells) = value.get("cells").and_then(|c| c.as_array()) else {
        failures.push(format!("baseline {path}: no `cells` array"));
        return;
    };
    for row in cells {
        let matched = base_cells.iter().find(|c| {
            c.get("flows_total").and_then(|v| v.as_f64()) == Some(row.flows_total as f64)
        });
        let Some(base_mpps) = matched
            .and_then(|c| c.get("sim_mpps"))
            .and_then(|v| v.as_f64())
        else {
            continue; // baseline has no cell at this scale (e.g. quick vs full)
        };
        if row.sim_mpps < 0.5 * base_mpps {
            failures.push(format!(
                "{} flows: {:.2} sim-Mpps < 50% of baseline {:.2}",
                row.flows_total, row.sim_mpps, base_mpps
            ));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (p, specs) = build_problem(
        &[CanonicalChain::Chain3, CanonicalChain::Chain5],
        0.3,
        lemur_placer::topology::Topology::testbed(),
    );
    let a = lemur_placer::baselines::hw_preferred_assignment(&p);
    let e = p.evaluate(&a, CoreStrategy::WaterFill).expect("placement");

    let mut failures = Vec::new();
    println!("=== Hybrid engine scaling (Chain3 + Chain5, θ = {THETA} packets) ===\n");
    let table = Table::new()
        .right("flows", 9)
        .right("junk", 8)
        .right("pkts(M)", 9)
        .right("heavy", 7)
        .right("hv-pkts(M)", 10)
        .right("mat_s", 8)
        .right("run_s", 8)
        .right("sim-Mpps", 9)
        .right("dlv(G)", 8)
        .right("ledger", 7)
        .right("traffic", 8);
    table.print_header();
    let mut cells = Vec::new();
    for total in scales(quick) {
        let row = run_cell(&p, &e, &specs, total, &mut failures);
        table.print_row(&[
            cell(row.flows_total),
            cell(row.junk_flows),
            fnum(row.packets_total as f64 / 1e6, 2),
            cell(row.heavy_flows),
            fnum(row.heavy_packets as f64 / 1e6, 2),
            fnum(row.materialize_s, 3),
            fnum(row.run_s, 3),
            fnum(row.sim_mpps, 2),
            fnum(row.delivered_gbps, 2),
            cell(if row.ledger_balanced { "ok" } else { "FAIL" }),
            cell(if row.validator_ok { "ok" } else { "FAIL" }),
        ]);
        if !quick && total >= HEADLINE_FLOWS && row.run_s > HEADLINE_BUDGET_S {
            failures.push(format!(
                "{total} flows: {:.1}s exceeds the {HEADLINE_BUDGET_S}s wall-clock budget",
                row.run_s
            ));
        }
        cells.push(row);
    }

    println!("\n=== Hybrid vs packet-level replay (small cell) ===\n");
    let eq = equivalence_check(&p, &e, &specs, &mut failures);
    println!(
        "{} flows: injected {} vs {}, delivered {} vs {} (bound {}) → {}",
        eq.flows_total,
        eq.injected_packet,
        eq.injected_hybrid,
        eq.delivered_packet,
        eq.delivered_hybrid,
        eq.bound,
        if eq.ok { "ok" } else { "DIVERGED" },
    );

    if let Some(path) = &baseline {
        check_baseline(path, &cells, &mut failures);
    }

    let artifact = Artifact {
        quick,
        theta: THETA,
        cells,
        equivalence: eq,
    };
    write_json("BENCH_scale", &artifact);

    if failures.is_empty() {
        let top = artifact.cells.last().expect("at least one cell");
        println!(
            "\nPASS: {} flows ({:.2} M simulated packets) in {:.2}s wall — {:.2} sim-Mpps, ledgers exact, validator + equivalence green.",
            top.flows_total,
            top.packets_total as f64 / 1e6,
            top.run_s,
            top.sim_mpps,
        );
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
