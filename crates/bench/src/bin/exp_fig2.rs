//! Figure 2 (a–f): scheme comparison across chain sets and δ sweeps, plus
//! the Figure 2f component ablations.
//!
//! Usage: `exp_fig2 [--set a|b|c|d|e|f|all] [--quick]`
//!
//! Output: one table per set — a bar per (scheme, δ) with the aggregate
//! Σt_min (the hashed rectangle), the Placer prediction (◇), and the
//! measured aggregate throughput; missing bars are infeasible placements.
//!
//! The (δ, scheme) sweep fans out over the deterministic worker pool
//! (`LEMUR_WORKERS` controls the width); the memoized compiler oracle is
//! shared across the whole sweep, so candidates that synthesize a switch
//! program already packed at another δ skip recompilation. Both are
//! output-invariant: tables and JSON are identical at any worker count.

use lemur_bench::{cached_compiler_oracle, figure2_set, print_rows, run_cells, Row, Scheme};
use lemur_placer::oracle::StageOracle;
use lemur_placer::parallel::Workers;
use lemur_placer::topology::Topology;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let set_arg = args
        .iter()
        .position(|a| a == "--set")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let deltas: Vec<f64> = if quick {
        vec![0.5, 1.0, 1.5, 2.0]
    } else {
        vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
    };
    let sim_s = if quick { 0.004 } else { 0.01 };
    let sets: Vec<char> = match set_arg {
        "all" => vec!['a', 'b', 'c', 'd', 'e', 'f'],
        s => vec![s.chars().next().unwrap_or('a')],
    };

    let workers = Workers::from_env();
    let oracle = cached_compiler_oracle();
    for set in sets {
        let chains = figure2_set(set).expect("known set");
        let schemes: &[Scheme] = if set == 'f' {
            &Scheme::ABLATIONS
        } else {
            &Scheme::COMPARISON
        };
        let cells: Vec<(Scheme, f64)> = deltas
            .iter()
            .flat_map(|&delta| schemes.iter().map(move |&scheme| (scheme, delta)))
            .collect();
        let before = oracle.cache_stats().unwrap_or_default();
        let rows: Vec<Row> = run_cells(
            &cells,
            &chains,
            &Topology::testbed(),
            &oracle,
            sim_s,
            workers,
        );
        let title = format!(
            "Figure 2{set}: chains {:?}",
            chains.iter().map(|c| c.index()).collect::<Vec<_>>()
        );
        print_rows(&title, &rows);
        // Feasibility summary (the paper's "Lemur is the only one that
        // produces a feasible solution" observation).
        for &scheme in schemes {
            let feas = rows
                .iter()
                .filter(|r| r.scheme == scheme && r.feasible)
                .count();
            let total = rows.iter().filter(|r| r.scheme == scheme).count();
            println!("  {scheme}: feasible {feas}/{total}");
        }
        if quick {
            // Search-cost accounting for the quick CI run: total stage-
            // oracle probes the schemes issued, and how many of those the
            // memoized compiler answered without re-packing stages.
            let total_calls: u64 = rows.iter().filter_map(|r| r.oracle_calls).sum();
            let cache = oracle.cache_stats().unwrap_or_default().since(&before);
            println!(
                "  oracle calls: {total_calls} (cache: {} hits / {} misses, {:.0}% hit rate)",
                cache.hits,
                cache.misses,
                cache.hit_rate() * 100.0
            );
        }
        lemur_bench::write_json(&format!("fig2{set}"), &rows);
    }
}
