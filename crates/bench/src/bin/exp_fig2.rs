//! Figure 2 (a–f): scheme comparison across chain sets and δ sweeps, plus
//! the Figure 2f component ablations.
//!
//! Usage: `exp_fig2 [--set a|b|c|d|e|f|all] [--quick]`
//!
//! Output: one table per set — a bar per (scheme, δ) with the aggregate
//! Σt_min (the hashed rectangle), the Placer prediction (◇), and the
//! measured aggregate throughput; missing bars are infeasible placements.

use lemur_bench::{figure2_set, print_rows, run_cell, write_json, Row, Scheme};
use lemur_placer::topology::Topology;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let set_arg = args
        .iter()
        .position(|a| a == "--set")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let deltas: Vec<f64> = if quick {
        vec![0.5, 1.0, 1.5, 2.0]
    } else {
        vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
    };
    let sim_s = if quick { 0.004 } else { 0.01 };
    let sets: Vec<char> = match set_arg {
        "all" => vec!['a', 'b', 'c', 'd', 'e', 'f'],
        s => vec![s.chars().next().unwrap_or('a')],
    };

    let oracle = lemur_bench::compiler_oracle();
    for set in sets {
        let chains = figure2_set(set).expect("known set");
        let schemes: &[Scheme] = if set == 'f' {
            &Scheme::ABLATIONS
        } else {
            &Scheme::COMPARISON
        };
        let mut rows: Vec<Row> = Vec::new();
        for &delta in &deltas {
            for &scheme in schemes {
                rows.push(run_cell(
                    scheme,
                    &chains,
                    delta,
                    Topology::testbed(),
                    &oracle,
                    sim_s,
                ));
            }
        }
        let title = format!(
            "Figure 2{set}: chains {:?}",
            chains.iter().map(|c| c.index()).collect::<Vec<_>>()
        );
        print_rows(&title, &rows);
        // Feasibility summary (the paper's "Lemur is the only one that
        // produces a feasible solution" observation).
        for &scheme in schemes {
            let feas = rows
                .iter()
                .filter(|r| r.scheme == scheme && r.feasible)
                .count();
            let total = rows.iter().filter(|r| r.scheme == scheme).count();
            println!("  {scheme}: feasible {feas}/{total}");
        }
        write_json(&format!("fig2{set}"), &rows);
    }
}
