//! State-migration soak: hold the epoch-swap migration path to exact
//! integer invariants.
//!
//! * **Part A — observational identity.** A NAT that lived through its
//!   whole history and a NAT restored from a snapshot must translate an
//!   identical replayed trace identically: **zero** differing output
//!   frames, byte for byte. LB affinity must survive a full-fidelity
//!   restore completely and a backend-loss restore exactly for the
//!   surviving backends. Every single-byte corruption of every snapshot
//!   wire image must be rejected at decode.
//! * **Part B — planned cross-platform swap.** A live testbed running a
//!   software-preferred placement swaps to a hardware-preferred one: the
//!   server NAT's binding table is carried onto the ToR as P4 table
//!   entries mid-run. The swap must commit exactly once with state moved
//!   (`snapshots > 0`, `tor_entries > 0`) and a balanced packet ledger.
//!   Each injected migration fault must instead abort the swap (zero
//!   commits) while delivery continues on the old epoch.
//! * **Part C — supervised storm.** A chaos storm with migration faults
//!   must end settled with a consistent decision log, and the whole
//!   report must be bit-for-bit identical across `LEMUR_WORKERS`
//!   settings and repeated runs.
//!
//! Usage: `exp_migration [--seed N] [--quick]`

use lemur_bench::{build_problem, compiler_oracle, place, write_json, Scheme};
use lemur_control::chaos::{chaos_plan, ChaosConfig};
use lemur_control::{Supervisor, SupervisorConfig, SupervisorEvent};
use lemur_core::chains::CanonicalChain;
use lemur_core::Slo;
use lemur_dataplane::WindowSample;
use lemur_dataplane::{
    ControlAction, ControlHook, FaultEvent, FaultKind, FaultPlan, MigrationError,
    MigrationFaultKind, MigrationStats, SimConfig, SimReport, StagedConfig, Testbed, TimelineEvent,
};
use lemur_nf::dedup::Dedup;
use lemur_nf::lb::{Backend, LoadBalancer};
use lemur_nf::limiter::Limiter;
use lemur_nf::monitor::Monitor;
use lemur_nf::nat::Nat;
use lemur_nf::{NetworkFunction, NfCtx, NfKind, NfParams, NfSnapshot, Verdict};
use lemur_packet::builder::udp_packet;
use lemur_packet::flow::FiveTuple;
use lemur_packet::{ethernet, ipv4, PacketBuf};
use lemur_placer::topology::Topology;

const EXT: ipv4::Address = ipv4::Address::new(198, 18, 0, 1);

fn arg_u64(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

// ---------------------------------------------------------------- Part A

fn internal_flow(i: usize) -> (ipv4::Address, u16) {
    (
        ipv4::Address::new(10, 1, (i / 200) as u8, (i % 200) as u8 + 1),
        10_000 + i as u16,
    )
}

fn outbound(i: usize) -> PacketBuf {
    let (ip, port) = internal_flow(i);
    udp_packet(
        ethernet::Address([2, 0, 0, 0, 0, 1]),
        ethernet::Address([2, 0, 0, 0, 0, 2]),
        ip,
        ipv4::Address::new(8, 8, 8, 8),
        port,
        53,
        b"query",
    )
}

fn inbound(ext_port: u16) -> PacketBuf {
    udp_packet(
        ethernet::Address([2, 0, 0, 0, 0, 2]),
        ethernet::Address([2, 0, 0, 0, 0, 1]),
        ipv4::Address::new(8, 8, 8, 8),
        EXT,
        53,
        ext_port,
        b"reply",
    )
}

struct NatContinuity {
    frames: u64,
    mistranslated: u64,
    fingerprint_match: bool,
}

/// Golden-vs-migrated NAT: establish flows, snapshot → wire → restore,
/// then replay an identical continuation trace (established outbound,
/// return traffic, brand-new flows) through both and diff every output
/// frame byte for byte.
fn nat_continuity(n_flows: usize) -> NatContinuity {
    let mut golden = Nat::new(EXT, 5000, 1024);
    let mut ext_ports = Vec::with_capacity(n_flows);
    for i in 0..n_flows {
        let ctx = NfCtx {
            now_ns: 1_000 * i as u64,
        };
        let mut p = outbound(i);
        assert_eq!(golden.process(&ctx, &mut p), Verdict::Forward);
        ext_ports.push(
            FiveTuple::parse(p.as_slice())
                .expect("translated frame")
                .src_port,
        );
    }

    let snap = golden.snapshot_state().expect("NAT exports state");
    let wire = snap.encode();
    let decoded = NfSnapshot::decode(&wire).expect("clean wire image decodes");
    let mut migrated = Nat::new(EXT, 5000, 1024);
    migrated
        .restore_state(&decoded)
        .expect("clean snapshot restores");
    let fingerprint_match = golden.state_fingerprint() == migrated.state_fingerprint()
        && golden.state_fingerprint() != 0;

    // Continuation: established outbound + returns + new flows, in one
    // interleaved order, identical for both instances.
    let mut trace: Vec<PacketBuf> = Vec::new();
    for (i, ext_port) in ext_ports.iter().enumerate() {
        trace.push(outbound(i));
        trace.push(inbound(*ext_port));
    }
    for i in n_flows..n_flows + n_flows / 4 {
        trace.push(outbound(i));
    }

    let mut frames = 0u64;
    let mut mistranslated = 0u64;
    for (j, p) in trace.iter().enumerate() {
        let ctx = NfCtx {
            now_ns: 1_000_000 + 1_000 * j as u64,
        };
        let mut a = p.clone();
        let mut b = p.clone();
        let va = golden.process(&ctx, &mut a);
        let vb = migrated.process(&ctx, &mut b);
        frames += 1;
        if va != vb || a.as_slice() != b.as_slice() {
            mistranslated += 1;
        }
    }
    NatContinuity {
        frames,
        mistranslated,
        fingerprint_match,
    }
}

fn lb_pkt(src_port: u16) -> PacketBuf {
    udp_packet(
        ethernet::Address([2, 0, 0, 0, 0, 1]),
        ethernet::Address([2, 0, 0, 0, 0, 2]),
        ipv4::Address::new(203, 0, 113, 5),
        ipv4::Address::new(10, 0, 0, 100),
        src_port,
        80,
        b"GET /",
    )
}

fn lb_backends(n: usize) -> Vec<Backend> {
    (0..n)
        .map(|i| Backend {
            ip: ipv4::Address::new(192, 168, 100, (i + 1) as u8),
            mac: ethernet::Address([2, 0, 0, 100, 0, (i + 1) as u8]),
        })
        .collect()
}

struct LbAffinity {
    flows: u64,
    full_preserved: u64,
    partial_preserved: u64,
    partial_evicted: u64,
    partial_ok: bool,
}

/// LB affinity across restore: a full-fidelity restore keeps every pinned
/// flow on its backend; a restore into an LB that lost a backend keeps
/// exactly the flows whose backend survived and evicts the rest.
fn lb_affinity(n_flows: u16) -> LbAffinity {
    let mut golden = LoadBalancer::new(lb_backends(4));
    let ctx = NfCtx::default();
    let mut tuples = Vec::with_capacity(n_flows as usize);
    for port in 0..n_flows {
        let p = lb_pkt(1000 + port);
        tuples.push(FiveTuple::parse(p.as_slice()).expect("LB input parses"));
        let mut q = p.clone();
        assert_eq!(golden.process(&ctx, &mut q), Verdict::Forward);
    }
    let snap = golden.snapshot_state().expect("LB exports state");

    let mut full = LoadBalancer::new(lb_backends(4));
    full.restore_state(&snap).expect("full restore");
    let full_preserved = tuples
        .iter()
        .filter(|t| {
            full.cached_backend(t).is_some() && full.cached_backend(t) == golden.cached_backend(t)
        })
        .count() as u64;

    let survivors = lb_backends(3);
    let mut partial = LoadBalancer::new(survivors.clone());
    partial.restore_state(&snap).expect("partial restore");
    let mut partial_preserved = 0u64;
    let mut partial_evicted = 0u64;
    let mut partial_ok = true;
    for t in &tuples {
        let old = golden.cached_backend(t).expect("pinned in golden");
        if survivors.contains(&old) {
            partial_preserved += 1;
            if partial.cached_backend(t) != Some(old) {
                partial_ok = false;
            }
        } else {
            partial_evicted += 1;
            if partial.cached_backend(t).is_some() {
                partial_ok = false;
            }
        }
    }
    LbAffinity {
        flows: n_flows as u64,
        full_preserved,
        partial_preserved,
        partial_evicted,
        partial_ok,
    }
}

/// Build every snapshot-bearing NF with non-trivial state and return
/// `(tag, wire image, live fingerprint)` per NF.
fn populated_snapshots(n_flows: usize) -> Vec<(&'static str, Vec<u8>, u128)> {
    let ctx = NfCtx { now_ns: 1_000 };
    let mut out = Vec::new();

    let mut nat = Nat::new(EXT, 5000, 256);
    for i in 0..n_flows {
        nat.process(&ctx, &mut outbound(i));
    }
    out.push((
        "nat",
        nat.snapshot_state().expect("nat state").encode(),
        nat.state_fingerprint(),
    ));

    let mut lb = LoadBalancer::new(lb_backends(4));
    for port in 0..n_flows as u16 {
        lb.process(&ctx, &mut lb_pkt(1000 + port));
    }
    out.push((
        "lb",
        lb.snapshot_state().expect("lb state").encode(),
        lb.state_fingerprint(),
    ));

    let mut dedup = Dedup::from_params(&NfParams::new());
    for i in 0..n_flows {
        dedup.process(&ctx, &mut outbound(i));
    }
    out.push((
        "dedup",
        dedup.snapshot_state().expect("dedup state").encode(),
        dedup.state_fingerprint(),
    ));

    let mut monitor = Monitor::new();
    for i in 0..n_flows {
        monitor.process(&ctx, &mut outbound(i));
    }
    out.push((
        "monitor",
        monitor.snapshot_state().expect("monitor state").encode(),
        monitor.state_fingerprint(),
    ));

    let mut limiter = Limiter::new(1e9, 1e6);
    for i in 0..n_flows {
        limiter.process(&ctx, &mut outbound(i));
    }
    out.push((
        "limiter",
        limiter.snapshot_state().expect("limiter state").encode(),
        limiter.state_fingerprint(),
    ));
    out
}

struct CorruptionSweep {
    attempts: u64,
    rejected: u64,
}

/// Flip every byte of every snapshot wire image, one at a time: each
/// corrupted image must fail to decode (framing or checksum), so a
/// corrupted transfer can never reach `restore_state` at all.
fn corruption_sweep(n_flows: usize) -> CorruptionSweep {
    let mut attempts = 0u64;
    let mut rejected = 0u64;
    for (tag, wire, _) in populated_snapshots(n_flows) {
        for pos in 0..wire.len() {
            let mut bad = wire.clone();
            bad[pos] ^= 0x01;
            attempts += 1;
            match NfSnapshot::decode(&bad) {
                Err(_) => rejected += 1,
                Ok(_) => eprintln!("corrupt {tag} snapshot decoded at byte {pos}"),
            }
        }
    }
    CorruptionSweep { attempts, rejected }
}

// ---------------------------------------------------------------- Part B

/// Stage a pre-built configuration at the first guard window past
/// `trigger_ns`, then count commits and record migration aborts.
struct PlannedSwapHook {
    staged: Option<Box<StagedConfig>>,
    trigger_ns: u64,
    drain_ns: u64,
    commits: u64,
    aborts: Vec<MigrationError>,
}

impl ControlHook for PlannedSwapHook {
    fn on_window(
        &mut self,
        end_ns: u64,
        _samples: &[WindowSample],
        _violations: &[TimelineEvent],
    ) -> ControlAction {
        if end_ns >= self.trigger_ns {
            if let Some(staged) = self.staged.take() {
                return ControlAction::StageCommit {
                    staged,
                    drain_ns: self.drain_ns,
                };
            }
        }
        ControlAction::Continue
    }

    fn on_commit(&mut self, _at_ns: u64, _epoch: u64, _packets_lost: u64, _rollback: bool) {
        self.commits += 1;
    }

    fn on_migration_failed(&mut self, _at_ns: u64, error: &MigrationError) {
        self.aborts.push(error.clone());
    }
}

struct SwapOutcome {
    commits: u64,
    aborts: Vec<MigrationError>,
    stats: Option<MigrationStats>,
    delivered: u64,
    balanced: bool,
    cross_platform: bool,
}

/// Run a planned sw-preferred → hw-preferred swap mid-traffic, optionally
/// arming one migration fault just before the drain window.
fn planned_swap(seed: u64, fault: Option<MigrationFaultKind>) -> SwapOutcome {
    let oracle = compiler_oracle();
    let (problem, mut specs) =
        build_problem(&[CanonicalChain::Chain2], 0.3, Topology::with_servers(4));
    let sw = place(Scheme::SwPreferred, &problem, &oracle).expect("sw-preferred placement");
    let hw = place(Scheme::HwPreferred, &problem, &oracle).expect("hw-preferred placement");
    let deployment = lemur_metacompiler::compile(&problem, &sw).expect("sw deployment");
    let spi_bases: Vec<u32> = deployment.routing.entry_spi.clone();
    let hw_deployment =
        lemur_metacompiler::compile_repair(&problem, &hw, &spi_bases).expect("hw deployment");

    // The move is cross-platform iff the new epoch runs NAT on the ToR
    // (lookup + rewrite tables) while the old one ran it in software.
    let nat_on_tor = |d: &lemur_metacompiler::Deployment| {
        d.p4.nf_tables
            .iter()
            .any(|(_, _, kind, tables)| *kind == NfKind::Nat && tables.len() == 2)
    };
    let cross_platform = nat_on_tor(&hw_deployment) && !nat_on_tor(&deployment);

    let slos: Vec<Option<Slo>> = problem.chains.iter().map(|c| c.slo).collect();
    let admitted = vec![true; problem.chains.len()];
    let staged = StagedConfig::build(&problem, &hw, hw_deployment, admitted, slos.clone(), false)
        .expect("staged hw configuration");

    let mut testbed = Testbed::build(&problem, &sw, deployment).expect("testbed");
    for (i, s) in specs.iter_mut().enumerate() {
        s.offered_bps = (sw.chain_rates_bps[i] * 1.1).max(1e8);
    }
    let config = SimConfig {
        duration_s: 0.008,
        warmup_s: 0.002,
        seed,
        window_ns: 1_000_000,
        ..Default::default()
    };
    let plan = match fault {
        Some(f) => FaultPlan::new(vec![FaultEvent {
            at_ns: 3_600_000,
            kind: FaultKind::MigrationFault { fault: f },
        }]),
        None => FaultPlan::empty(),
    };
    let mut hook = PlannedSwapHook {
        staged: Some(Box::new(staged)),
        trigger_ns: 4_000_000,
        drain_ns: 300_000,
        commits: 0,
        aborts: Vec::new(),
    };
    let report = testbed.run_supervised(&specs, config, &plan, &slos, &mut hook);
    let stats = report.migrations().next().copied();
    SwapOutcome {
        commits: hook.commits,
        aborts: hook.aborts,
        stats,
        delivered: report.ledger.delivered,
        balanced: report.ledger.balanced(),
        cross_platform,
    }
}

// ---------------------------------------------------------------- Part C

type StormOutcome = (SimReport, Vec<SupervisorEvent>, String, bool);

/// A supervised chaos storm with migration faults, at a given worker
/// count. Mirrors `exp_chaos` with a shorter horizon.
fn storm(seed: u64, duration_ms: u64, workers: &str) -> StormOutcome {
    std::env::set_var("LEMUR_WORKERS", workers);
    let oracle = compiler_oracle();
    let (mut problem, mut specs) = build_problem(
        &[
            CanonicalChain::Chain1,
            CanonicalChain::Chain2,
            CanonicalChain::Chain3,
        ],
        0.3,
        Topology::with_servers(4),
    );
    let n_chains = problem.chains.len();
    for i in 0..n_chains {
        let slo = problem.chains[i]
            .slo
            .unwrap()
            .with_priority((n_chains - i) as u8);
        problem.chains[i].slo = Some(slo);
    }
    let placement = lemur_placer::heuristic::place(&problem, &oracle).expect("healthy placement");
    let deployment = lemur_metacompiler::compile(&problem, &placement).expect("deployment");
    for (i, s) in specs.iter_mut().enumerate() {
        s.offered_bps = (placement.chain_rates_bps[i] * 1.1).max(1e8);
    }

    // Bias link faults toward loaded servers so the storm displaces
    // chains: repairs (and thus epoch swaps for the armed migration
    // faults to hit) actually happen.
    let mut load = [0usize; 4];
    for sg in &placement.subgroups {
        load[sg.server] += 1;
    }
    let mut hot_servers: Vec<usize> = (0..4).filter(|&s| load[s] > 0).collect();
    hot_servers.sort_by_key(|&s| std::cmp::Reverse(load[s]));

    let warmup_s = 0.003;
    let duration_s = duration_ms as f64 / 1e3;
    let horizon_ns = ((warmup_s + duration_s) * 1e9) as u64;
    let chaos = ChaosConfig {
        seed,
        n_faults: 10,
        start_ns: (warmup_s * 1e9) as u64 + 2_000_000,
        end_ns: horizon_ns * 3 / 5,
        n_servers: 4,
        cores_per_server: problem.topology.servers[0].num_cores(),
        n_subgroups: placement.subgroups.len(),
        n_chains,
        max_core_fails_per_server: 2,
        n_migration_faults: 3,
        hot_servers,
    };
    let plan = chaos_plan(&chaos);
    plan.validate(&problem.topology, placement.subgroups.len(), n_chains)
        .expect("valid storm");

    let mut supervisor = Supervisor::new(
        &problem,
        &placement,
        &deployment,
        &oracle,
        SupervisorConfig {
            seed,
            ..Default::default()
        },
    );
    let mut testbed = Testbed::build(&problem, &placement, deployment).expect("testbed");
    let config = SimConfig {
        duration_s,
        warmup_s,
        seed,
        window_ns: 1_000_000,
        ..Default::default()
    };
    let slos: Vec<Option<Slo>> = problem.chains.iter().map(|c| c.slo).collect();
    let report = testbed.run_supervised(&specs, config, &plan, &slos, &mut supervisor);
    let state = format!("{:?}", supervisor.state());
    let wal_ok = supervisor.wal().is_consistent();
    (report, supervisor.events().to_vec(), state, wal_ok)
}

// ------------------------------------------------------------------ main

struct FaultCell {
    fault: &'static str,
    aborted: bool,
    commits: u64,
    delivered: u64,
}

impl serde::Serialize for FaultCell {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "fault".to_string(),
                serde::Value::Str(self.fault.to_string()),
            ),
            ("aborted".to_string(), self.aborted.to_value()),
            ("commits".to_string(), self.commits.to_value()),
            ("delivered".to_string(), self.delivered.to_value()),
        ])
    }
}

struct MigrationRow {
    seed: u64,
    quick: bool,
    nat_frames: u64,
    nat_mistranslated: u64,
    nat_fingerprint_match: bool,
    lb_flows: u64,
    lb_full_preserved: u64,
    lb_partial_preserved: u64,
    lb_partial_evicted: u64,
    corruption_attempts: u64,
    corruption_rejected: u64,
    swap_commits: u64,
    swap_snapshots: u64,
    swap_restored: u64,
    swap_tor_entries: u64,
    swap_cross_platform: bool,
    fault_matrix: Vec<FaultCell>,
    storm_final_state: String,
    storm_migration_aborts: u64,
    storm_wal_consistent: bool,
    storm_reproducible: bool,
}

impl serde::Serialize for MigrationRow {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("seed".to_string(), self.seed.to_value()),
            ("quick".to_string(), self.quick.to_value()),
            ("nat_frames".to_string(), self.nat_frames.to_value()),
            (
                "nat_mistranslated".to_string(),
                self.nat_mistranslated.to_value(),
            ),
            (
                "nat_fingerprint_match".to_string(),
                self.nat_fingerprint_match.to_value(),
            ),
            ("lb_flows".to_string(), self.lb_flows.to_value()),
            (
                "lb_full_preserved".to_string(),
                self.lb_full_preserved.to_value(),
            ),
            (
                "lb_partial_preserved".to_string(),
                self.lb_partial_preserved.to_value(),
            ),
            (
                "lb_partial_evicted".to_string(),
                self.lb_partial_evicted.to_value(),
            ),
            (
                "corruption_attempts".to_string(),
                self.corruption_attempts.to_value(),
            ),
            (
                "corruption_rejected".to_string(),
                self.corruption_rejected.to_value(),
            ),
            ("swap_commits".to_string(), self.swap_commits.to_value()),
            ("swap_snapshots".to_string(), self.swap_snapshots.to_value()),
            ("swap_restored".to_string(), self.swap_restored.to_value()),
            (
                "swap_tor_entries".to_string(),
                self.swap_tor_entries.to_value(),
            ),
            (
                "swap_cross_platform".to_string(),
                self.swap_cross_platform.to_value(),
            ),
            ("fault_matrix".to_string(), self.fault_matrix.to_value()),
            (
                "storm_final_state".to_string(),
                self.storm_final_state.to_value(),
            ),
            (
                "storm_migration_aborts".to_string(),
                self.storm_migration_aborts.to_value(),
            ),
            (
                "storm_wal_consistent".to_string(),
                self.storm_wal_consistent.to_value(),
            ),
            (
                "storm_reproducible".to_string(),
                self.storm_reproducible.to_value(),
            ),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = arg_u64(&args, "--seed", 42);
    let n_flows = if quick { 48 } else { 128 };
    let storm_ms = if quick { 16 } else { 24 };
    let mut failures: Vec<String> = Vec::new();

    // Part A: observational identity + corruption rejection.
    println!("part A: golden-vs-migrated NF harness ({n_flows} flows)");
    let nat = nat_continuity(n_flows);
    println!(
        "  NAT: {} frames replayed, {} mistranslated, fingerprint match={}",
        nat.frames, nat.mistranslated, nat.fingerprint_match
    );
    if nat.mistranslated != 0 {
        failures.push(format!(
            "{} frames mistranslated after NAT restore",
            nat.mistranslated
        ));
    }
    if !nat.fingerprint_match {
        failures.push("restored NAT fingerprint differs from source".to_string());
    }
    let lb = lb_affinity(n_flows as u16);
    println!(
        "  LB: {} flows, full restore preserved {}, partial preserved {} / evicted {}",
        lb.flows, lb.full_preserved, lb.partial_preserved, lb.partial_evicted
    );
    if lb.full_preserved != lb.flows {
        failures.push("full-fidelity LB restore lost affinity".to_string());
    }
    if !lb.partial_ok || lb.partial_preserved + lb.partial_evicted != lb.flows {
        failures.push("backend-loss LB restore mishandled affinity".to_string());
    }
    let sweep = corruption_sweep(if quick { 16 } else { 32 });
    println!(
        "  corruption sweep: {}/{} single-byte corruptions rejected",
        sweep.rejected, sweep.attempts
    );
    if sweep.rejected != sweep.attempts {
        failures.push(format!(
            "{} corrupted snapshots were accepted",
            sweep.attempts - sweep.rejected
        ));
    }

    // Part B: planned cross-platform swap, clean + fault matrix.
    println!("part B: planned sw→hw epoch swap on the testbed");
    let clean = planned_swap(seed, None);
    let stats = clean.stats.unwrap_or_default();
    println!(
        "  clean: commits={} snapshots={} restored={} tor_entries={} dropped={} cross_platform={}",
        clean.commits,
        stats.snapshots,
        stats.restored,
        stats.tor_entries,
        stats.dropped,
        clean.cross_platform
    );
    if clean.commits != 1 || !clean.aborts.is_empty() {
        failures.push(format!(
            "clean swap: {} commits, {} aborts (want 1 / 0)",
            clean.commits,
            clean.aborts.len()
        ));
    }
    if stats.snapshots == 0 {
        failures.push("clean swap moved no state".to_string());
    }
    if !clean.cross_platform || stats.tor_entries == 0 {
        failures.push("swap did not carry NAT bindings onto the ToR".to_string());
    }
    if !clean.balanced {
        failures.push("clean swap broke packet conservation".to_string());
    }
    let mut fault_matrix = Vec::new();
    for fault in MigrationFaultKind::ALL {
        let out = planned_swap(seed, Some(fault));
        let aborted = !out.aborts.is_empty();
        println!(
            "  fault {fault}: aborted={} commits={} delivered={}",
            aborted, out.commits, out.delivered
        );
        if !aborted || out.commits != 0 {
            failures.push(format!(
                "fault {fault}: aborted={aborted} commits={} (want abort, 0 commits)",
                out.commits
            ));
        }
        if out.delivered == 0 || !out.balanced {
            failures.push(format!("fault {fault}: old epoch stopped delivering"));
        }
        fault_matrix.push(FaultCell {
            fault: fault.tag(),
            aborted,
            commits: out.commits,
            delivered: out.delivered,
        });
    }

    // Part C: supervised storm, reproducible across worker counts.
    println!("part C: supervised storm with migration faults ({storm_ms}ms)");
    let (r1, e1, state, wal_ok) = storm(seed, storm_ms, "1");
    let (r4, e4, ..) = storm(seed, storm_ms, "4");
    let (r1b, e1b, ..) = storm(seed, storm_ms, "1");
    let reproducible = r1 == r4 && e1 == e4 && r1 == r1b && e1 == e1b;
    let storm_aborts = r1.migration_aborts().count() as u64;
    println!(
        "  final={state} migration_aborts={storm_aborts} wal_consistent={wal_ok} reproducible={reproducible}"
    );
    if !(state == "Converged" || state == "GracefulDegraded") {
        failures.push(format!("storm ended unsettled: {state}"));
    }
    if !wal_ok {
        failures.push("storm decision log ended with a dangling intent".to_string());
    }
    if !reproducible {
        failures.push("storm not bit-for-bit reproducible across LEMUR_WORKERS".to_string());
    }
    if !r1.ledger.balanced() {
        failures.push("storm broke packet conservation".to_string());
    }

    let row = MigrationRow {
        seed,
        quick,
        nat_frames: nat.frames,
        nat_mistranslated: nat.mistranslated,
        nat_fingerprint_match: nat.fingerprint_match,
        lb_flows: lb.flows,
        lb_full_preserved: lb.full_preserved,
        lb_partial_preserved: lb.partial_preserved,
        lb_partial_evicted: lb.partial_evicted,
        corruption_attempts: sweep.attempts,
        corruption_rejected: sweep.rejected,
        swap_commits: clean.commits,
        swap_snapshots: stats.snapshots,
        swap_restored: stats.restored,
        swap_tor_entries: stats.tor_entries,
        swap_cross_platform: clean.cross_platform,
        fault_matrix,
        storm_final_state: state,
        storm_migration_aborts: storm_aborts,
        storm_wal_consistent: wal_ok,
        storm_reproducible: reproducible,
    };
    write_json("exp_migration", &row);

    if failures.is_empty() {
        println!("migration soak PASSED");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
