//! §5.3 "Adding latency constraints".
//!
//! Chains {1, 4} with per-chain latency SLOs on a 12-core server (tight
//! enough that switch offloads buy throughput at the price of bounces).
//! A loose bound lets Lemur trade extra switch↔server bounces for
//! marginal throughput; tightening the bound forces fewer bounces and a
//! lower-throughput placement; tightening past the chain's compute floor
//! is infeasible. (Paper: >21 Gbps at 45 µs with extra bounces vs 9 Gbps
//! at 25 µs — the same monotone shape at our simulator's constants.)

use lemur_bench::{build_problem, write_json};
use lemur_core::chains::CanonicalChain::{Chain1, Chain4};
use lemur_placer::topology::Topology;

fn main() {
    let oracle = lemur_bench::compiler_oracle();
    let mut rows = Vec::new();
    println!("=== §5.3 latency constraints: chains {{1, 4}} ===\n");
    for d_max_us in [90.0f64, 60.0, 45.0, 30.0] {
        let mut topo = Topology::testbed();
        topo.servers[0].cores_per_socket = 6; // a 12-core box: tight enough
                                              // that offloads buy rate
        let (mut p, _) = build_problem(&[Chain1, Chain4], 0.75, topo);
        for c in p.chains.iter_mut() {
            c.slo = Some(c.slo.unwrap().with_latency_ns(d_max_us * 1e3));
        }
        match lemur_placer::heuristic::place(&p, &oracle) {
            Ok(e) => {
                let bounces: f64 = e.bounces.iter().sum();
                let worst_lat = e.latency_ns.iter().cloned().fold(0.0, f64::max);
                println!(
                    "  d_max={d_max_us:>4.0}us: aggregate {:>6.2} G, total bounces {:>4.1}, worst path {:>5.1}us",
                    e.aggregate_bps / 1e9,
                    bounces,
                    worst_lat / 1e3
                );
                rows.push((d_max_us, e.aggregate_bps / 1e9, bounces, worst_lat / 1e3));
            }
            Err(err) => {
                println!("  d_max={d_max_us:>4.0}us: infeasible ({err})");
                rows.push((d_max_us, 0.0, 0.0, 0.0));
            }
        }
    }
    write_json("latency", &rows);
    println!("\nPaper shape: looser latency bounds admit more bounces and higher throughput.");
}
