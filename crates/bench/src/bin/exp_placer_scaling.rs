//! §5.3 "Scaling Placer Computation": heuristic vs brute-force placement
//! time, and the search engine's scaling knobs — worker count and the
//! memoized stage-oracle cache.
//!
//! Usage: `exp_placer_scaling [--quick]`
//!
//! Part 1 reproduces the paper's comparison (14 901 s exhaustive brute
//! force vs 3.5 s heuristic; our brute force ranks candidates before the
//! expensive LP + compiler stage, so its absolute time is smaller, but
//! the orders-of-magnitude gap reproduces) and projects the exhaustive
//! cost from the measured per-candidate evaluation time.
//!
//! Part 2 sweeps the (algorithm, oracle, workers) matrix: each cell runs
//! the same search with 1/2/4/8 workers, with the plain compiler oracle
//! and with the memoized [`CachedCompilerOracle`] (cache cleared before
//! every run, so hit rates are per-search). Every cell's placement is
//! checked bit-identical (`Debug` repr) against the 1-worker run of the
//! same configuration — the determinism contract the supervisor's
//! last-known-good rollback relies on. Results land in
//! `target/experiments/BENCH_placer.json`; a snapshot is checked in at
//! the repo root.
//!
//! Part 3 measures the cache where it actually pays: across a δ-sweep.
//! Within one search the ranked candidates mostly synthesize distinct
//! switch programs (each pattern is a different NF split), but re-running
//! the search at another δ re-probes the very same programs — with a
//! shared cache the whole sweep's stage packing collapses to the first
//! run's misses.

use lemur_bench::{build_problem, write_json};
use lemur_core::chains::CanonicalChain::{self, *};
use lemur_metacompiler::{CachedCompilerOracle, CompilerOracle};
use lemur_placer::brute::{optimal_with_workers, BruteConfig};
use lemur_placer::corealloc::CoreStrategy;
use lemur_placer::heuristic::place_with_workers;
use lemur_placer::oracle::StageOracle;
use lemur_placer::parallel::Workers;
use lemur_placer::placement::{EvaluatedPlacement, PlacementError, PlacementProblem};
use lemur_placer::topology::Topology;
use std::time::Instant;

/// One cell of the scaling matrix.
struct ScalingRow {
    set: String,
    algo: &'static str,
    oracle: &'static str,
    workers: usize,
    wall_s: f64,
    feasible: bool,
    oracle_calls: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    /// `Debug` repr identical to the 1-worker run of this configuration.
    identical_to_1worker: bool,
}

impl serde::Serialize for ScalingRow {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("set".to_string(), self.set.to_value()),
            ("algo".to_string(), self.algo.to_value()),
            ("oracle".to_string(), self.oracle.to_value()),
            ("workers".to_string(), self.workers.to_value()),
            ("wall_s".to_string(), self.wall_s.to_value()),
            ("feasible".to_string(), self.feasible.to_value()),
            ("oracle_calls".to_string(), self.oracle_calls.to_value()),
            ("cache_hits".to_string(), self.cache_hits.to_value()),
            ("cache_misses".to_string(), self.cache_misses.to_value()),
            ("cache_hit_rate".to_string(), self.cache_hit_rate.to_value()),
            (
                "identical_to_1worker".to_string(),
                self.identical_to_1worker.to_value(),
            ),
        ])
    }
}

fn run_algo(
    algo: &'static str,
    p: &PlacementProblem,
    oracle: &dyn StageOracle,
    workers: Workers,
) -> Result<EvaluatedPlacement, PlacementError> {
    match algo {
        "heuristic" => place_with_workers(p, oracle, CoreStrategy::WaterFill, workers),
        _ => optimal_with_workers(p, oracle, BruteConfig::default(), workers),
    }
}

fn scaling_matrix(sets: &[(&str, &[CanonicalChain])], worker_counts: &[usize]) -> Vec<ScalingRow> {
    let plain = lemur_bench::compiler_oracle();
    let cached = CachedCompilerOracle::new();
    let mut rows = Vec::new();
    for (label, chains) in sets {
        let (p, _) = build_problem(chains, 1.0, Topology::testbed());
        for algo in ["heuristic", "brute"] {
            for oracle_kind in ["compiler", "cached"] {
                let mut baseline_repr: Option<String> = None;
                for &w in worker_counts {
                    cached.cache().clear();
                    let before = cached.cache().stats();
                    let oracle: &dyn StageOracle = if oracle_kind == "cached" {
                        &cached
                    } else {
                        &plain
                    };
                    let t0 = Instant::now();
                    let result = run_algo(algo, &p, oracle, Workers::new(w));
                    let wall_s = t0.elapsed().as_secs_f64();
                    let cache = cached.cache().stats().since(&before);
                    let repr = format!("{result:?}");
                    let identical = *baseline_repr.get_or_insert_with(|| repr.clone()) == repr;
                    let telemetry = result
                        .as_ref()
                        .ok()
                        .and_then(|e| e.telemetry)
                        .unwrap_or_default();
                    rows.push(ScalingRow {
                        set: label.to_string(),
                        algo,
                        oracle: oracle_kind,
                        workers: w,
                        wall_s,
                        feasible: result.is_ok(),
                        oracle_calls: telemetry.oracle_calls,
                        cache_hits: cache.hits,
                        cache_misses: cache.misses,
                        cache_hit_rate: cache.hit_rate(),
                        identical_to_1worker: identical,
                    });
                }
            }
        }
    }
    rows
}

/// The δ-sweep cells: one search per δ on `chains`, sharing `oracle`.
/// Returns one aggregated row (wall time, summed oracle calls, and the
/// cache counters accumulated over the whole sweep).
fn sweep_row(
    label: &str,
    chains: &[CanonicalChain],
    deltas: &[f64],
    algo: &'static str,
    oracle_kind: &'static str,
    plain: &CompilerOracle,
    cached: &CachedCompilerOracle,
) -> ScalingRow {
    cached.cache().clear();
    let before = cached.cache().stats();
    let oracle: &dyn StageOracle = if oracle_kind == "cached" {
        cached
    } else {
        plain
    };
    let mut oracle_calls = 0u64;
    let mut feasible = true;
    let t0 = Instant::now();
    for &delta in deltas {
        let (p, _) = build_problem(chains, delta, Topology::testbed());
        match run_algo(algo, &p, oracle, Workers::from_env()) {
            Ok(e) => oracle_calls += e.telemetry.map(|t| t.oracle_calls).unwrap_or(0),
            Err(_) => feasible = false,
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let cache = cached.cache().stats().since(&before);
    ScalingRow {
        set: format!("{label} δ-sweep x{}", deltas.len()),
        algo,
        oracle: oracle_kind,
        workers: Workers::from_env().get(),
        wall_s,
        feasible,
        oracle_calls,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_hit_rate: cache.hit_rate(),
        identical_to_1worker: true,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let all_sets: &[(&str, &[CanonicalChain])] = &[
        ("1 chain  {3}", &[Chain3]),
        ("2 chains {2,3}", &[Chain2, Chain3]),
        ("3 chains {1,2,3}", &[Chain1, Chain2, Chain3]),
        ("4 chains {1,2,3,4}", &[Chain1, Chain2, Chain3, Chain4]),
    ];
    let sets = if quick { &all_sets[..2] } else { all_sets };

    // Part 1: §5.3 heuristic vs ranked brute force (sequential timings).
    let oracle = lemur_bench::compiler_oracle();
    println!("=== §5.3 Placer scaling (δ = 1.0) ===\n");
    let mut rows = Vec::new();
    for (label, chains) in sets {
        let (p, _) = build_problem(chains, 1.0, Topology::testbed());
        let t0 = Instant::now();
        let h = place_with_workers(&p, &oracle, CoreStrategy::WaterFill, Workers::new(1));
        let t_h = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let b = optimal_with_workers(&p, &oracle, BruteConfig::default(), Workers::new(1));
        let t_b = t1.elapsed().as_secs_f64();
        // Projected exhaustive cost: candidates × (patterns per chain).
        let patterns = lemur_placer::brute::per_chain_patterns(&p, usize::MAX);
        let combos: f64 = patterns.iter().map(|v| v.len() as f64).product();
        let per_candidate = t_b / BruteConfig::default().candidates as f64;
        let projected = combos * per_candidate;
        println!(
            "  {label:<20} heuristic {t_h:>8.3}s ({}) | ranked brute {t_b:>8.3}s ({}) | {combos:>10.0} patterns ≈ {projected:>9.0}s exhaustive",
            h.as_ref().map(|_| "ok").unwrap_or("infeasible"),
            b.as_ref().map(|_| "ok").unwrap_or("infeasible"),
        );
        if let (Ok(h), Ok(b)) = (&h, &b) {
            let gap = (b.marginal_bps - h.marginal_bps) / b.marginal_bps.max(1.0);
            println!(
                "      marginal: heuristic {:.2} G vs optimal {:.2} G (gap {:.1}%)",
                h.marginal_bps / 1e9,
                b.marginal_bps / 1e9,
                gap * 100.0
            );
        }
        rows.push((label.to_string(), t_h, t_b, combos, projected));
    }
    write_json("placer_scaling", &rows);

    // Part 2: workers × oracle matrix with determinism checks.
    let worker_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    println!("\n=== Search-engine scaling: workers × oracle ===\n");
    println!(
        "{:<20} {:>9} {:>9} {:>7} {:>9} {:>8} {:>7} {:>7} {:>6} {:>10}",
        "set", "algo", "oracle", "workers", "wall_s", "oracle#", "hits", "misses", "hit%", "det"
    );
    let mut matrix = scaling_matrix(sets, worker_counts);

    // Part 3: δ-sweep cache effectiveness on the largest set.
    let deltas: &[f64] = if quick {
        &[0.5, 1.0, 1.5, 2.0]
    } else {
        &[0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
    };
    let (label, chains) = sets.last().expect("at least one set");
    let plain = CompilerOracle::new();
    let cached = CachedCompilerOracle::new();
    for algo in ["heuristic", "brute"] {
        for oracle_kind in ["compiler", "cached"] {
            matrix.push(sweep_row(
                label,
                chains,
                deltas,
                algo,
                oracle_kind,
                &plain,
                &cached,
            ));
        }
    }

    let mut all_deterministic = true;
    for r in &matrix {
        all_deterministic &= r.identical_to_1worker;
        println!(
            "{:<20} {:>9} {:>9} {:>7} {:>9.3} {:>8} {:>7} {:>7} {:>5.0}% {:>10}",
            r.set,
            r.algo,
            r.oracle,
            r.workers,
            r.wall_s,
            r.oracle_calls,
            r.cache_hits,
            r.cache_misses,
            r.cache_hit_rate * 100.0,
            if r.identical_to_1worker {
                "identical"
            } else {
                "DIVERGED"
            },
        );
    }
    write_json("BENCH_placer", &matrix);
    println!(
        "\ndeterminism: {}",
        if all_deterministic {
            "every worker count reproduced the 1-worker placement bit-for-bit"
        } else {
            "DIVERGENCE DETECTED — parallel search is not schedule-independent"
        }
    );
    println!("\nPaper shape: heuristic is orders of magnitude faster than exhaustive");
    println!("brute force (3.5 s vs 14901 s on the authors' machine) at matching quality.");
    if !all_deterministic {
        std::process::exit(1);
    }
}
