//! §5.3 "Scaling Placer Computation": heuristic vs brute-force placement
//! time on the 4-chain configuration (34 NF instances).
//!
//! The paper reports 14 901 s for exhaustive brute force vs 3.5 s for the
//! heuristic. Our brute force ranks candidates before the expensive LP +
//! compiler stage, so its absolute time is smaller, but the orders-of-
//! magnitude gap and the growth trend with chain count reproduce. An
//! `--exhaustive-estimate` flag prints the projected full-enumeration cost
//! from the measured per-candidate evaluation time.

use lemur_bench::{build_problem, write_json};
use lemur_core::chains::CanonicalChain::*;
use lemur_placer::brute::BruteConfig;
use lemur_placer::topology::Topology;
use std::time::Instant;

fn main() {
    let oracle = lemur_bench::compiler_oracle();
    let sets: &[(&str, &[lemur_core::chains::CanonicalChain])] = &[
        ("1 chain  {3}", &[Chain3]),
        ("2 chains {2,3}", &[Chain2, Chain3]),
        ("3 chains {1,2,3}", &[Chain1, Chain2, Chain3]),
        ("4 chains {1,2,3,4}", &[Chain1, Chain2, Chain3, Chain4]),
    ];
    println!("=== §5.3 Placer scaling (δ = 1.0) ===\n");
    let mut rows = Vec::new();
    for (label, chains) in sets {
        let (p, _) = build_problem(chains, 1.0, Topology::testbed());
        let t0 = Instant::now();
        let h = lemur_placer::heuristic::place(&p, &oracle);
        let t_h = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let b = lemur_placer::brute::optimal(&p, &oracle, BruteConfig::default());
        let t_b = t1.elapsed().as_secs_f64();
        // Projected exhaustive cost: candidates × (patterns per chain).
        let patterns = lemur_placer::brute::per_chain_patterns(&p, usize::MAX);
        let combos: f64 = patterns.iter().map(|v| v.len() as f64).product();
        let per_candidate = t_b / BruteConfig::default().candidates as f64;
        let projected = combos * per_candidate;
        println!(
            "  {label:<20} heuristic {t_h:>8.3}s ({}) | ranked brute {t_b:>8.3}s ({}) | {combos:>10.0} patterns ≈ {projected:>9.0}s exhaustive",
            h.as_ref().map(|_| "ok").unwrap_or("infeasible"),
            b.as_ref().map(|_| "ok").unwrap_or("infeasible"),
        );
        if let (Ok(h), Ok(b)) = (&h, &b) {
            let gap = (b.marginal_bps - h.marginal_bps) / b.marginal_bps.max(1.0);
            println!(
                "      marginal: heuristic {:.2} G vs optimal {:.2} G (gap {:.1}%)",
                h.marginal_bps / 1e9,
                b.marginal_bps / 1e9,
                gap * 100.0
            );
        }
        rows.push((label.to_string(), t_h, t_b, combos, projected));
    }
    write_json("placer_scaling", &rows);
    println!("\nPaper shape: heuristic is orders of magnitude faster than exhaustive");
    println!("brute force (3.5 s vs 14901 s on the authors' machine) at matching quality.");
}
