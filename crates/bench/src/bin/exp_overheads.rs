//! §5.3 coordination overheads.
//!
//! Paper: "We have to burn two P4 stages, one each to encapsulate and
//! decapsulate packets. Our BESS cycle cost overheads for these are modest
//! at about 220 cycles. The server also incurs about 180 cycles to
//! load-balance packets when a subgroup is allocated to multiple cores."
//!
//! This runner reports (a) the P4 stage overhead: stages used by a chain's
//! program with coordination vs the same NF tables compiled standalone,
//! and (b) measured NSH encap/decap and demux-steering costs of the actual
//! Rust implementations, converted to testbed-clock cycles.

use lemur_bench::{build_problem, write_json};
use lemur_bess::demux::{Demux, DemuxKey};
use lemur_core::chains::CanonicalChain::*;
use lemur_placer::corealloc::CoreStrategy;
use lemur_placer::topology::Topology;
use std::time::Instant;

fn measured_cycles<F: FnMut()>(mut f: F, iters: usize, clock_hz: f64) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * clock_hz / iters as f64
}

fn main() {
    println!("=== §5.3 coordination overheads ===\n");
    let clock = 1.7e9;

    // (a) P4 stage overhead of NSH coordination.
    let (p, _) = build_problem(&[Chain2], 0.5, Topology::testbed());
    let a = lemur_placer::baselines::hw_preferred_assignment(&p);
    let e = p.evaluate(&a, CoreStrategy::WaterFill).expect("feasible");
    let dep = lemur_metacompiler::compile(&p, &e).expect("codegen");
    let full = lemur_p4sim::compiler::compile(
        &dep.p4.program,
        p.topology.pisa().unwrap(),
        Default::default(),
    )
    .expect("fits")
    .num_stages_used;
    // NF tables only: strip steering by rebuilding the program with every
    // chain entirely on the switch impossible — instead report the model
    // constant: steer (1) + encap/decap folded into coordination tables.
    println!("  P4 stages with coordination: {full} (steering/encap/decap tables included)");
    println!("  paper: 2 extra stages burned for NSH encap + decap");

    // (b) BESS-side NSH + steering costs, measured on real code.
    let base_pkt = lemur_packet::builder::udp_packet(
        lemur_packet::ethernet::Address([2, 0, 0, 0, 0, 1]),
        lemur_packet::ethernet::Address([2, 0, 0, 0, 0, 2]),
        lemur_packet::ipv4::Address::new(10, 0, 0, 1),
        lemur_packet::ipv4::Address::new(10, 0, 0, 2),
        1000,
        2000,
        &[0u8; 1400],
    );
    let nsh_cycles = measured_cycles(
        || {
            let mut pkt = base_pkt.clone();
            lemur_packet::builder::nsh_encap(&mut pkt, 1, 250);
            let _ = lemur_packet::builder::nsh_decap(&mut pkt);
        },
        200_000,
        clock,
    );
    let mut demux = Demux::new();
    demux.add_entry(DemuxKey { spi: 1, si: 249 }, 0, 4);
    let mut enc = base_pkt.clone();
    lemur_packet::builder::nsh_encap(&mut enc, 1, 249);
    let steer_cycles = measured_cycles(
        || {
            let mut pkt = enc.clone();
            let _ = demux.steer(&mut pkt);
        },
        200_000,
        clock,
    );
    println!(
        "\n  NSH encap+decap:      {nsh_cycles:>6.0} cycles/pkt (paper: ~220, charged as {} in the model)",
        lemur_placer::NSH_OVERHEAD_CYCLES
    );
    println!(
        "  demux replica steer:  {steer_cycles:>6.0} cycles/pkt (paper: ~180, charged as {} in the model)",
        lemur_placer::REPLICATION_OVERHEAD_CYCLES
    );
    println!("\n  (Measured numbers are clone-inclusive upper bounds on this machine;");
    println!("   the placement model charges the paper's calibrated constants.)");
    write_json(
        "overheads",
        &serde_json::json!({
            "p4_stages_with_coordination": full,
            "nsh_cycles_measured": nsh_cycles,
            "steer_cycles_measured": steer_cycles,
            "nsh_cycles_model": lemur_placer::NSH_OVERHEAD_CYCLES,
            "steer_cycles_model": lemur_placer::REPLICATION_OVERHEAD_CYCLES,
        }),
    );
}
