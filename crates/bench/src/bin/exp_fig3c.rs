//! Figure 3c: accelerating an NF chain with an OpenFlow switch (§5.3).
//!
//! Chain 3 with an OpenFlow ToR (no PISA switch). Offloading the ACL to
//! the OF switch splits the server run `{Dedup ACL Limiter LB}` into
//! `{Dedup} | ACL(OF) | {Limiter LB}`, making Dedup replicable — the paper
//! reports ~7710 Mbps with the offload vs ~693 Mbps keeping ACL on the
//! server (one unreplicable subgroup). This experiment reproduces that
//! comparison (predicted rates from the Placer's LP — the OF dataplane is
//! validated functionally below), plus the table-order check that rejects
//! invalid OF placements.

use lemur_bench::write_json;
use lemur_core::chains::{canonical_chain, CanonicalChain};
use lemur_core::graph::ChainSpec;
use lemur_core::Slo;
use lemur_nf::NfKind;
use lemur_placer::corealloc::CoreStrategy;
use lemur_placer::placement::PlacementProblem;
use lemur_placer::profiles::{NfProfiles, Platform};
use lemur_placer::topology::Topology;
use std::collections::BTreeMap;

fn problem() -> PlacementProblem {
    let mut p = PlacementProblem::new(
        vec![ChainSpec {
            name: "chain3".into(),
            graph: canonical_chain(CanonicalChain::Chain3),
            slo: None,
            aggregate: None,
        }],
        Topology::with_openflow_tor(),
        NfProfiles::table4_full_caps(),
    );
    let base = p.base_rate_bps(0);
    p.chains[0].slo = Some(Slo::elastic_pipe(0.5 * base, 100e9));
    p
}

/// Chain 3 with a manual platform per kind.
fn assignment(p: &PlacementProblem, acl_on_of: bool) -> lemur_placer::Assignment {
    vec![p.chains[0]
        .graph
        .nodes()
        .map(|(id, n)| {
            let plat = match n.kind {
                NfKind::Acl if acl_on_of => Platform::OpenFlow,
                NfKind::Ipv4Fwd => Platform::OpenFlow,
                _ => Platform::Server(0),
            };
            (id, plat)
        })
        .collect::<BTreeMap<_, _>>()]
}

fn main() {
    let p = problem();
    let mut results = Vec::new();
    for acl_on_of in [true, false] {
        let a = assignment(&p, acl_on_of);
        match p.evaluate(&a, CoreStrategy::WaterFill) {
            Ok(e) => {
                println!(
                    "  ACL on {}: chain rate {:.0} Mbps ({} subgroups, Dedup cores {})",
                    if acl_on_of {
                        "OpenFlow switch"
                    } else {
                        "server        "
                    },
                    e.chain_rates_bps[0] / 1e6,
                    e.subgroups.len(),
                    e.subgroups
                        .iter()
                        .find(|sg| sg
                            .nodes
                            .iter()
                            .any(|id| { p.chains[0].graph.node(*id).kind == NfKind::Dedup }))
                        .map(|sg| sg.cores)
                        .unwrap_or(0),
                );
                results.push((acl_on_of, e.chain_rates_bps[0]));
            }
            Err(err) => println!("  ACL on_of={acl_on_of}: infeasible: {err}"),
        }
    }
    println!("\n=== Figure 3c: OpenFlow ACL offload, Chain 3 ===");
    if let (Some((_, with)), Some((_, without))) = (
        results.iter().find(|(of, _)| *of),
        results.iter().find(|(of, _)| !*of),
    ) {
        println!(
            "  offloaded {:.0} Mbps vs server-stitched {:.0} Mbps ({}x) — paper: 7710 vs 693 Mbps",
            with / 1e6,
            without / 1e6,
            (with / without).round()
        );
    }

    // Functional validation: generate OF rules for the offloaded placement
    // and walk a packet through the fixed-order pipeline.
    let a = assignment(&p, true);
    let plan = lemur_metacompiler::routing::plan(&p, &a);
    let config = lemur_metacompiler::ofgen::generate(&p, &a, &plan).expect("vid fits");
    let mut sw = lemur_openflow::OfSwitch::new();
    config.install(&mut sw);
    println!(
        "  generated {} OpenFlow rules; ACL table holds {}",
        config.rules.len(),
        sw.num_rules(lemur_openflow::OfTableType::Acl)
            + sw.num_rules(lemur_openflow::OfTableType::VlanPush)
    );
    write_json("fig3c", &results);
}
