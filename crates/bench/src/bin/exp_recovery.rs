//! Recovery experiment: inject faults mid-run, let the SLO guard detect
//! the violation, repair the placement on the degraded rack, and measure
//! what the repaired deployment delivers.
//!
//! Sweeps fault intensity on a 3-server rack (one downed uplink → a
//! downed uplink plus failed cores → two downed uplinks) and reports,
//! per scenario:
//!
//! * `detect_us` — virtual time from fault injection to the first SLO
//!   violation the windowed guard emits,
//! * `replan_us` — wall-clock time to compute the repair placement,
//! * `time_to_recover_us` — the sum: violation-driven repair latency,
//! * `shed` — chains dropped (ascending SLO priority) when the degraded
//!   rack cannot hold everyone,
//! * `goodput_retained` — post-repair measured aggregate over the
//!   pre-fault baseline,
//! * `survivors_meet_tmin` — whether every kept chain still clears its
//!   `t_min` on the repaired deployment.

use lemur_bench::{
    build_problem, cached_compiler_oracle, measure, measure_with_faults, write_json,
};
use lemur_core::chains::CanonicalChain::{Chain1, Chain2, Chain3};
use lemur_dataplane::{FaultKind, FaultPlan};
use lemur_placer::parallel::{parallel_map, Workers};
use lemur_placer::repair::{repair, RepairMode};
use lemur_placer::topology::{ResourceMask, Topology};

const DURATION_S: f64 = 0.012;
const FAULT_NS: u64 = 6_000_000; // 6 ms: past warm-up, mid-measurement

struct Scenario {
    name: &'static str,
    servers_down: usize,
    cores_down: usize,
}

const SCENARIOS: [Scenario; 3] = [
    Scenario {
        name: "link-down",
        servers_down: 1,
        cores_down: 0,
    },
    Scenario {
        name: "link+cores",
        servers_down: 1,
        cores_down: 3,
    },
    Scenario {
        name: "two-links",
        servers_down: 2,
        cores_down: 0,
    },
];

struct RecoveryRow {
    scenario: &'static str,
    servers_down: usize,
    cores_down: usize,
    detect_us: f64,
    replan_us: f64,
    time_to_recover_us: f64,
    mode: &'static str,
    shed: Vec<usize>,
    baseline_gbps: f64,
    recovered_gbps: f64,
    goodput_retained: f64,
    survivors_meet_tmin: bool,
}

impl serde::Serialize for RecoveryRow {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("scenario".to_string(), self.scenario.to_value()),
            ("servers_down".to_string(), self.servers_down.to_value()),
            ("cores_down".to_string(), self.cores_down.to_value()),
            ("detect_us".to_string(), self.detect_us.to_value()),
            ("replan_us".to_string(), self.replan_us.to_value()),
            (
                "time_to_recover_us".to_string(),
                self.time_to_recover_us.to_value(),
            ),
            ("mode".to_string(), self.mode.to_value()),
            ("shed".to_string(), self.shed.to_value()),
            ("baseline_gbps".to_string(), self.baseline_gbps.to_value()),
            ("recovered_gbps".to_string(), self.recovered_gbps.to_value()),
            (
                "goodput_retained".to_string(),
                self.goodput_retained.to_value(),
            ),
            (
                "survivors_meet_tmin".to_string(),
                self.survivors_meet_tmin.to_value(),
            ),
        ])
    }
}

/// Servers ranked by how many subgroups they host (busiest first), so the
/// injected failures hit where they hurt.
fn busiest_servers(
    placement: &lemur_placer::placement::EvaluatedPlacement,
    n_servers: usize,
) -> Vec<usize> {
    let mut load = vec![0usize; n_servers];
    for sg in &placement.subgroups {
        load[sg.server] += 1;
    }
    let mut order: Vec<usize> = (0..n_servers).collect();
    order.sort_by_key(|&s| std::cmp::Reverse(load[s]));
    order
}

fn main() {
    // One memoized oracle across the healthy placement and every repair:
    // repairs re-probe switch programs the initial search already packed.
    let oracle = cached_compiler_oracle();
    let (mut problem, specs) =
        build_problem(&[Chain1, Chain2, Chain3], 0.5, Topology::with_servers(3));
    // Descending shedding priority by chain index: chain 0 survives longest.
    let n_chains = problem.chains.len();
    for i in 0..n_chains {
        let slo = problem.chains[i]
            .slo
            .unwrap()
            .with_priority((n_chains - i) as u8);
        problem.chains[i].slo = Some(slo);
    }

    let placement =
        lemur_placer::heuristic::place(&problem, &oracle).expect("healthy rack placement");
    let baseline = measure(&problem, &placement, &specs, DURATION_S)
        .expect("baseline run")
        .aggregate_bps();
    println!("baseline aggregate: {:.2} Gbps", baseline / 1e9);

    let ranked = busiest_servers(&placement, problem.topology.servers.len());

    // Scenarios are independent (each builds its own faulted testbed), so
    // they fan out over the worker pool; ordered reduction keeps the rows
    // — and any repair-failure notes, printed afterwards — in scenario
    // order at every worker count. `replan_us` is the only wall-clock
    // field and is measured inside a single worker.
    let outcomes = parallel_map(Workers::from_env(), &SCENARIOS, |_, sc| {
        // Build the plan: down the k busiest uplinks; fail the first
        // worker cores (core 0 is the demux) on the busiest survivor.
        let mut plan = FaultPlan::empty();
        for &s in ranked.iter().take(sc.servers_down) {
            plan = plan.with(FAULT_NS, FaultKind::LinkDown { server: s });
        }
        if sc.cores_down > 0 {
            let victim = ranked[sc.servers_down];
            for core in 1..=sc.cores_down {
                plan = plan.with(
                    FAULT_NS,
                    FaultKind::CoreFail {
                        server: victim,
                        core,
                    },
                );
            }
        }

        // Detection: run the faulted deployment with the SLO guard armed.
        let faulted = measure_with_faults(&problem, &placement, &specs, DURATION_S, &plan)
            .expect("faulted run");
        let detect_ns = faulted
            .violations()
            .map(|e| e.at_ns())
            .find(|&t| t >= FAULT_NS)
            .map(|t| t - FAULT_NS);

        // Repair: re-place on the degraded rack.
        let mut mask = ResourceMask::none();
        for s in plan.links_down_at_end() {
            mask = mask.with_server_down(s);
        }
        for (server, _core) in plan.cores_failed() {
            mask = mask.with_cores_down(server, 1);
        }
        let t0 = std::time::Instant::now();
        let repaired = repair(&problem, &placement, mask, &oracle);
        let replan_us = t0.elapsed().as_secs_f64() * 1e6;

        let mut note = None;
        let row = match repaired {
            Ok(r) => {
                let kept_specs: Vec<_> = r.kept.iter().map(|&c| specs[c].clone()).collect();
                let report = measure(&r.problem, &r.placement, &kept_specs, DURATION_S)
                    .expect("repaired run");
                let recovered = report.aggregate_bps();
                let t_mins: Vec<f64> = r
                    .problem
                    .chains
                    .iter()
                    .map(|c| c.slo.unwrap().t_min_bps)
                    .collect();
                let detect_us = detect_ns.map(|d| d as f64 / 1e3).unwrap_or(f64::NAN);
                RecoveryRow {
                    scenario: sc.name,
                    servers_down: sc.servers_down,
                    cores_down: sc.cores_down,
                    detect_us,
                    replan_us,
                    time_to_recover_us: detect_us + replan_us,
                    mode: match r.mode {
                        RepairMode::Incremental => "incremental",
                        RepairMode::FullReplace => "full-replace",
                    },
                    shed: r.shed.clone(),
                    baseline_gbps: baseline / 1e9,
                    recovered_gbps: recovered / 1e9,
                    goodput_retained: recovered / baseline,
                    survivors_meet_tmin: report.slos_met(&t_mins, 0.05),
                }
            }
            Err(e) => {
                note = Some(format!("{}: repair failed: {e}", sc.name));
                RecoveryRow {
                    scenario: sc.name,
                    servers_down: sc.servers_down,
                    cores_down: sc.cores_down,
                    detect_us: detect_ns.map(|d| d as f64 / 1e3).unwrap_or(f64::NAN),
                    replan_us,
                    time_to_recover_us: f64::NAN,
                    mode: "failed",
                    shed: Vec::new(),
                    baseline_gbps: baseline / 1e9,
                    recovered_gbps: 0.0,
                    goodput_retained: 0.0,
                    survivors_meet_tmin: false,
                }
            }
        };
        (row, note)
    });
    let mut rows: Vec<RecoveryRow> = Vec::new();
    for (row, note) in outcomes {
        if let Some(note) = note {
            println!("{note}");
        }
        rows.push(row);
    }

    println!(
        "\n{:>11} {:>7} {:>6} {:>10} {:>10} {:>12} {:>13} {:>6} {:>9} {:>9} {:>7}",
        "scenario",
        "links",
        "cores",
        "detect_us",
        "replan_us",
        "recover_us",
        "mode",
        "shed",
        "base(G)",
        "rec(G)",
        "kept%"
    );
    for r in &rows {
        println!(
            "{:>11} {:>7} {:>6} {:>10.1} {:>10.1} {:>12.1} {:>13} {:>6} {:>9.2} {:>9.2} {:>6.1}% {}",
            r.scenario,
            r.servers_down,
            r.cores_down,
            r.detect_us,
            r.replan_us,
            r.time_to_recover_us,
            r.mode,
            format!("{:?}", r.shed),
            r.baseline_gbps,
            r.recovered_gbps,
            r.goodput_retained * 100.0,
            if r.survivors_meet_tmin { "t_min ok" } else { "t_min MISSED" },
        );
    }
    write_json("exp_recovery", &rows);
}
