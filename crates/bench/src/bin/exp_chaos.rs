//! Chaos soak: run the online supervisor against a seeded storm of ≥20
//! faults (always including a link-flap burst) and hold it to the
//! transactional-reconfiguration contract:
//!
//! * **Exact conservation** — injected = delivered + Σ per-reason drops +
//!   in-flight at the horizon, as integers, across every epoch swap.
//! * **Settled ending** — the supervisor finishes `Converged` (or
//!   `GracefulDegraded` if the storm was genuinely unsurvivable), never
//!   mid-drain or mid-backoff.
//! * **Survivors whole** — when converged, every admitted chain clears
//!   its `t_min` in the final guard window.
//! * **Bit-for-bit reproducible** — the same seed yields an identical
//!   `SimReport` (timeline included) and supervisor decision log.
//!
//! Reports the update-time loss (packets dropped by epoch swaps), the
//! commit/rollback counts, and the whole ledger.
//!
//! Usage: `exp_chaos [--seed N] [--faults N] [--duration-ms N] [--quick]`

use lemur_bench::{build_problem, compiler_oracle, write_json};
use lemur_control::chaos::{chaos_plan, ChaosConfig};
use lemur_control::{Supervisor, SupervisorConfig, SupervisorEvent};
use lemur_core::Slo;
use lemur_dataplane::{SimConfig, SimReport, Testbed};
use lemur_placer::topology::Topology;

const N_SERVERS: usize = 4;
const WINDOW_NS: u64 = 1_000_000;

fn arg_u64(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct ChaosRow {
    seed: u64,
    faults: usize,
    duration_ms: u64,
    final_state: String,
    commits: usize,
    rollbacks: usize,
    update_time_loss: u64,
    injected: u64,
    delivered: u64,
    drops_reconfig: u64,
    drops_shed: u64,
    drops_fault: u64,
    drops_queue: u64,
    shed_at_end: Vec<usize>,
    migrations: usize,
    migration_aborts: usize,
    wal_consistent: bool,
    conservation_ok: bool,
    survivors_meet_tmin: bool,
    reproducible: bool,
}

impl serde::Serialize for ChaosRow {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("seed".to_string(), self.seed.to_value()),
            ("faults".to_string(), self.faults.to_value()),
            ("duration_ms".to_string(), self.duration_ms.to_value()),
            ("final_state".to_string(), self.final_state.to_value()),
            ("commits".to_string(), self.commits.to_value()),
            ("rollbacks".to_string(), self.rollbacks.to_value()),
            (
                "update_time_loss".to_string(),
                self.update_time_loss.to_value(),
            ),
            ("injected".to_string(), self.injected.to_value()),
            ("delivered".to_string(), self.delivered.to_value()),
            ("drops_reconfig".to_string(), self.drops_reconfig.to_value()),
            ("drops_shed".to_string(), self.drops_shed.to_value()),
            ("drops_fault".to_string(), self.drops_fault.to_value()),
            ("drops_queue".to_string(), self.drops_queue.to_value()),
            ("shed_at_end".to_string(), self.shed_at_end.to_value()),
            ("migrations".to_string(), self.migrations.to_value()),
            (
                "migration_aborts".to_string(),
                self.migration_aborts.to_value(),
            ),
            ("wal_consistent".to_string(), self.wal_consistent.to_value()),
            (
                "conservation_ok".to_string(),
                self.conservation_ok.to_value(),
            ),
            (
                "survivors_meet_tmin".to_string(),
                self.survivors_meet_tmin.to_value(),
            ),
            ("reproducible".to_string(), self.reproducible.to_value()),
        ])
    }
}

/// One full soak: build, supervise, report. Deterministic per seed.
type SoakOutcome = (
    SimReport,
    Vec<SupervisorEvent>,
    String,
    Vec<usize>,
    bool,
    bool,
);

fn soak(seed: u64, n_faults: usize, duration_ms: u64) -> SoakOutcome {
    let oracle = compiler_oracle();
    let (mut problem, mut specs) = build_problem(
        &[
            lemur_core::chains::CanonicalChain::Chain1,
            lemur_core::chains::CanonicalChain::Chain2,
            lemur_core::chains::CanonicalChain::Chain3,
        ],
        0.3,
        Topology::with_servers(N_SERVERS),
    );
    // Descending shedding priority by index: chain 0 survives longest.
    let n_chains = problem.chains.len();
    for i in 0..n_chains {
        let slo = problem.chains[i]
            .slo
            .unwrap()
            .with_priority((n_chains - i) as u8);
        problem.chains[i].slo = Some(slo);
    }

    let placement =
        lemur_placer::heuristic::place(&problem, &oracle).expect("healthy rack placement");
    let deployment = lemur_metacompiler::compile(&problem, &placement).expect("meta-compilation");
    for (i, s) in specs.iter_mut().enumerate() {
        s.offered_bps = (placement.chain_rates_bps[i] * 1.1).max(1e8);
    }

    // Busiest servers first, so the chaos plan's link faults actually
    // displace chains instead of downing idle uplinks.
    let mut load = [0usize; N_SERVERS];
    for sg in &placement.subgroups {
        load[sg.server] += 1;
    }
    let mut hot_servers: Vec<usize> = (0..N_SERVERS).filter(|&s| load[s] > 0).collect();
    hot_servers.sort_by_key(|&s| std::cmp::Reverse(load[s]));

    let warmup_s = 0.003;
    let duration_s = duration_ms as f64 / 1e3;
    let horizon_ns = ((warmup_s + duration_s) * 1e9) as u64;
    // Faults stop at 60% of the horizon so the supervisor has a tail of
    // quiet windows to converge in.
    let chaos = ChaosConfig {
        seed,
        n_faults,
        start_ns: (warmup_s * 1e9) as u64 + 2 * WINDOW_NS,
        end_ns: horizon_ns * 3 / 5,
        n_servers: N_SERVERS,
        cores_per_server: problem.topology.servers[0].num_cores(),
        n_subgroups: placement.subgroups.len(),
        n_chains,
        max_core_fails_per_server: 2,
        n_migration_faults: 2,
        hot_servers,
    };
    let plan = chaos_plan(&chaos);
    plan.validate(&problem.topology, placement.subgroups.len(), n_chains)
        .expect("generated chaos plan must be valid");

    let mut supervisor = Supervisor::new(
        &problem,
        &placement,
        &deployment,
        &oracle,
        SupervisorConfig {
            seed,
            ..Default::default()
        },
    );
    let mut testbed = Testbed::build(&problem, &placement, deployment).expect("testbed");
    let config = SimConfig {
        duration_s,
        warmup_s,
        seed,
        window_ns: WINDOW_NS,
        ..Default::default()
    };
    let slos: Vec<Option<Slo>> = problem.chains.iter().map(|c| c.slo).collect();
    let report = testbed.run_supervised(&specs, config, &plan, &slos, &mut supervisor);

    let shed_at_end: Vec<usize> = supervisor
        .admitted()
        .iter()
        .enumerate()
        .filter(|(_, &a)| !a)
        .map(|(c, _)| c)
        .collect();

    // Survivors whole: each admitted chain's *last* guard window clears
    // its t_min (5% tolerance, matching the repair validation slack).
    let survivors_ok = (0..n_chains)
        .filter(|&c| supervisor.admitted()[c])
        .all(|c| {
            let t_min = problem.chains[c].slo.map_or(0.0, |s| s.t_min_bps);
            report
                .windows
                .iter()
                .rev()
                .find(|w| w.chain == c)
                .is_some_and(|w| w.delivered_bps >= t_min * 0.95)
        });

    let state = format!("{:?}", supervisor.state());
    let wal_consistent = supervisor.wal().is_consistent();
    (
        report,
        supervisor.events().to_vec(),
        state,
        shed_at_end,
        survivors_ok,
        wal_consistent,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = arg_u64(&args, "--seed", 42);
    let n_faults = arg_u64(&args, "--faults", if quick { 12 } else { 22 }) as usize;
    let duration_ms = arg_u64(&args, "--duration-ms", if quick { 24 } else { 36 });

    println!("chaos soak: seed={seed} faults>={n_faults} duration={duration_ms}ms");
    let (report, events, final_state, shed_at_end, survivors_ok, wal_consistent) =
        soak(seed, n_faults, duration_ms);
    let (report2, events2, ..) = soak(seed, n_faults, duration_ms);
    let reproducible = report == report2 && events == events2;

    let rollbacks = events
        .iter()
        .filter(|e| matches!(e, SupervisorEvent::Committed { rollback: true, .. }))
        .count();
    let ledger = report.ledger;
    let row = ChaosRow {
        seed,
        faults: n_faults,
        duration_ms,
        final_state: final_state.clone(),
        commits: report.commits(),
        rollbacks,
        update_time_loss: report.update_time_loss(),
        injected: ledger.injected,
        delivered: ledger.delivered,
        drops_reconfig: ledger.drops_reconfig,
        drops_shed: ledger.drops_shed,
        drops_fault: ledger.drops_fault,
        drops_queue: ledger.drops_queue,
        shed_at_end: shed_at_end.clone(),
        migrations: report.migrations().count(),
        migration_aborts: report.migration_aborts().count(),
        wal_consistent,
        conservation_ok: ledger.balanced(),
        survivors_meet_tmin: survivors_ok,
        reproducible,
    };

    println!(
        "final={final_state} commits={} rollbacks={rollbacks} update_time_loss={} pkts",
        row.commits, row.update_time_loss
    );
    println!(
        "migrations={} migration_aborts={} wal_consistent={}",
        row.migrations, row.migration_aborts, row.wal_consistent
    );
    println!(
        "ledger: injected={} delivered={} reconfig={} shed={} fault={} queue={} in_flight={}",
        ledger.injected,
        ledger.delivered,
        ledger.drops_reconfig,
        ledger.drops_shed,
        ledger.drops_fault,
        ledger.drops_queue,
        ledger.in_flight_at_end
    );
    if !shed_at_end.is_empty() {
        println!("shed at end: {shed_at_end:?}");
    }
    write_json("exp_chaos", &row);

    // Invariants. Any failure is a supervisor bug, not a chaotic outcome.
    let mut failures = Vec::new();
    if !ledger.balanced() {
        failures.push(format!("packet conservation violated: {ledger:?}"));
    }
    if !(final_state == "Converged" || final_state == "GracefulDegraded") {
        failures.push(format!("soak ended unsettled: {final_state}"));
    }
    if final_state == "Converged" && !survivors_ok {
        failures.push("a surviving chain missed t_min in the final window".to_string());
    }
    if !reproducible {
        failures.push("same seed produced a different report or decision log".to_string());
    }
    if !wal_consistent {
        failures.push("decision log ended with a dangling intent".to_string());
    }
    if report.commits() == 0 && !events.is_empty() {
        // A storm this size should force at least one reconfiguration;
        // zero commits with a non-empty decision log means the supervisor
        // only ever backed off.
        println!(
            "note: no epoch swap was committed (decision log: {} events)",
            events.len()
        );
    }
    if failures.is_empty() {
        println!("chaos soak PASSED");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
