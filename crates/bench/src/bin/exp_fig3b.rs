//! Figure 3b: SmartNIC offload (§5.3).
//!
//! Chain 5 (`ACL -> UrlFilter -> FastEncrypt -> IPv4Fwd`) with and without
//! a 40 G Netronome-class SmartNIC. The eBPF ChaCha offload is >10× faster
//! than the server implementation, so with the NIC Lemur sustains rates a
//! server-only placement cannot; at high δ the server-only topology has no
//! feasible solution at all.

use lemur_bench::{print_rows, run_cell, write_json, Row, Scheme};
use lemur_core::chains::CanonicalChain::Chain5;
use lemur_placer::topology::Topology;

/// The SmartNIC experiment's server: a single 8-core box, so ChaCha's
/// server cost actually binds (the 16-core testbed hides the offload win).
fn topo(with_nic: bool) -> Topology {
    let mut t = Topology::with_servers(1);
    if with_nic {
        t.smartnics
            .push(lemur_placer::topology::SmartNicSpec::agilio_cx_40g(0));
    }
    t
}

fn main() {
    let oracle = lemur_bench::compiler_oracle();
    let mut rows: Vec<(bool, Row)> = Vec::new();
    for delta in [0.5, 1.0, 2.0, 4.0] {
        for with_nic in [false, true] {
            let topo = topo(with_nic);
            let row = run_cell(Scheme::Lemur, &[Chain5], delta, topo, &oracle, 0.008);
            rows.push((with_nic, row));
        }
    }
    println!("\n=== Figure 3b: Chain 5 (ChaCha) with/without SmartNIC ===");
    for (nic, r) in &rows {
        println!(
            "  smartnic={} δ={:.1}: {}",
            if *nic { "yes" } else { " no" },
            r.delta,
            if r.feasible {
                format!(
                    "measured {:.2} G (predicted {:.2} G)",
                    r.measured_gbps, r.predicted_gbps
                )
            } else {
                "INFEASIBLE".to_string()
            }
        );
    }
    let flat: Vec<Row> = rows.iter().map(|(_, r)| r.clone()).collect();
    print_rows("Figure 3b rows", &flat);
    write_json("fig3b", &rows);
}
