//! §5.2 "The stability of profiled cycle costs": profiling-error
//! sensitivity.
//!
//! Reduce all profiled cycle costs by 1–10% (mimicking under-estimation)
//! and re-run Lemur's placement. The paper finds the resulting
//! configuration keeps the same aggregate marginal throughput up to ~8%
//! error. Rates are always *re-evaluated* under the true profiles, so a
//! placement misled by bad profiles shows up as lost marginal throughput
//! or infeasibility.

use lemur_bench::{build_problem, write_json};
use lemur_core::chains::CanonicalChain::*;
use lemur_placer::placement::PlacementProblem;
use lemur_placer::profiles::NfProfiles;
use lemur_placer::topology::Topology;

fn main() {
    let oracle = lemur_bench::compiler_oracle();
    let (truth, _) = build_problem(&[Chain1, Chain2, Chain3, Chain4], 1.0, Topology::testbed());
    let baseline = lemur_placer::heuristic::place(&truth, &oracle).expect("baseline placement");
    println!("=== §5.2 profiling-error sensitivity (chains {{1,2,3,4}}, δ=1.0) ===\n");
    println!(
        "  error  0%: marginal {:.2} G (baseline)",
        baseline.marginal_bps / 1e9
    );
    let mut rows = vec![(0.0, baseline.marginal_bps / 1e9, true)];
    for pct in [1.0f64, 2.0, 4.0, 6.0, 8.0, 10.0] {
        let erred = PlacementProblem::new(
            truth.chains.clone(),
            truth.topology.clone(),
            NfProfiles::table4().with_error(1.0 - pct / 100.0),
        );
        let row = match lemur_placer::heuristic::place(&erred, &oracle) {
            Ok(decided) => {
                // Re-evaluate the mis-profiled decision under the truth.
                let cores: Vec<usize> = decided.subgroups.iter().map(|sg| sg.cores).collect();
                match truth.evaluate_with_cores(&decided.assignment, &cores) {
                    Ok(real) => {
                        let same = (real.marginal_bps - baseline.marginal_bps).abs()
                            < 0.02 * baseline.marginal_bps.max(1.0);
                        println!(
                            "  error {pct:>2.0}%: marginal {:.2} G{}",
                            real.marginal_bps / 1e9,
                            if same { "  (same as baseline)" } else { "" }
                        );
                        (pct, real.marginal_bps / 1e9, true)
                    }
                    Err(e) => {
                        println!("  error {pct:>2.0}%: SLO VIOLATED under true profiles ({e})");
                        (pct, 0.0, false)
                    }
                }
            }
            Err(e) => {
                println!("  error {pct:>2.0}%: placement failed ({e})");
                (pct, 0.0, false)
            }
        };
        rows.push(row);
    }
    write_json("profile_error", &rows);
    println!("\nPaper shape: identical marginal throughput up to ~8% profiling error.");
}
