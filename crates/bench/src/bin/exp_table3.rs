//! Table 3: NFs and available placement choices — the capability matrix
//! the Placer plans against, printed from the live code so the table can
//! never drift from the implementation.

use lemur_nf::{build_nf, NfKind, NfParams};
use lemur_placer::profiles::{capabilities, capabilities_full, is_replicable, PlatformClass};

fn main() {
    println!("=== Table 3: NFs and available placement choices ===\n");
    println!(
        "{:<14} {:>4} {:>4} {:>5} {:>4}   {:<12} stateful",
        "NF", "C++", "P4", "eBPF", "OF", "replicable"
    );
    let has = |kind, class| capabilities_full(kind).contains(&class);
    let mark = |b: bool| if b { "●" } else { " " };
    let params = NfParams::new();
    for kind in NfKind::ALL {
        let nf = build_nf(kind, &params);
        println!(
            "{:<14} {:>4} {:>4} {:>5} {:>4}   {:<12} {}",
            kind.name(),
            mark(has(kind, PlatformClass::Server)),
            mark(has(kind, PlatformClass::Pisa)),
            mark(has(kind, PlatformClass::SmartNic)),
            mark(has(kind, PlatformClass::OpenFlow)),
            if is_replicable(kind) {
                "yes"
            } else {
                "NO (bold)"
            },
            if nf.is_stateful() { "yes" } else { "no" },
        );
    }
    println!("\nEvaluation-parity note: IPv4Fwd is artificially limited to P4");
    println!(
        "in the experiment matrix (here: {:?}), matching the Table 3 footnote.",
        capabilities(NfKind::Ipv4Fwd)
    );
}
