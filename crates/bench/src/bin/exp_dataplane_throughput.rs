//! Fused-chain batch dataplane throughput: the reference per-NF
//! trait-object runtime ([`Subgroup`]) vs the fused batch-sweep runtime
//! ([`FusedSegment`]) compiled from the same chain specs.
//!
//! Usage: `exp_dataplane_throughput [--quick]`
//!
//! Part 1 — **segment sweep**: for each server-side chain and each batch
//! size in {1, 8, 32, 64}, recycle a fixed ring of packet buffers through
//! the steady-state processing loop and time only that loop (no batch
//! construction inside the timed region). Each cell is the best of
//! several runs (minimum wall time — the standard micro-bench guard
//! against scheduler noise). Reports pkts/sec/core (single thread == one
//! core), ns/packet, and cycles-equivalent/packet at a nominal 3.0 GHz
//! clock.
//!
//! The headline chain carries production-shaped configs — a 256-rule ACL
//! (the paper's Table 4 profiles rule-bearing ACLs) and a hash-guard BPF
//! ahead of Monitor and Limiter — with the traffic pool's 256 flows
//! spread uniformly across the rule prefixes, so the reference path pays
//! the table's average linear-scan depth on every packet while the fused
//! path folds the whole classifier run into one per-flow memo probe. A
//! bare-config variant of the same shape is also swept so the speedup
//! attributable to fusion alone (static dispatch + parse-once) is
//! reported separately from the classifier memo.
//!
//! Part 2 — **overload drop curve**: drive the simulated testbed at
//! offered loads from 0.5× to 3× the predicted rate under both runtime
//! modes. Virtual-time results (delivered rate, drop fraction) must be
//! bit-identical between modes — the differential test's invariant — so
//! the curve doubles as an end-to-end equivalence check; the wall-clock
//! time to simulate the same window is recorded per mode.
//!
//! Results land in `target/experiments/BENCH_dataplane.json`; a snapshot
//! is checked in at the repo root. Exit is non-zero if the fused runtime
//! is slower than the reference on any cell (>10% regression tolerance),
//! or if the headline 4-NF chain misses the 2× speedup floor at batch 32,
//! or if any overload cell's reports diverge between modes.

use lemur_bench::table::{cell, fnum, json_row, Table};
use lemur_bench::{build_problem, write_json};
use lemur_bess::subgroup::Subgroup;
use lemur_core::chains::CanonicalChain;
use lemur_dataplane::{RuntimeMode, SimConfig, Testbed};
use lemur_metacompiler::FusedSegment;
use lemur_nf::fused::FusedNf;
use lemur_nf::{build_nf, NfCtx, NfKind, NfParams, ParamValue};
use lemur_packet::batch::Batch;
use lemur_packet::builder::udp_packet;
use lemur_packet::{ethernet, ipv4, PacketBuf};
use lemur_placer::corealloc::CoreStrategy;
use std::time::Instant;

/// Nominal clock for the cycles-equivalent metric: ns/packet × 3.0.
const NOMINAL_GHZ: f64 = 3.0;
const BATCH_SIZES: [usize; 4] = [1, 8, 32, 64];
/// The acceptance chain: four server-side NFs with production-shaped
/// configs (256-rule ACL, hash-guard BPF, Monitor, Limiter).
const HEADLINE: &str = "acl256-bpf-monitor-limiter";

struct SweepRow {
    chain: String,
    nfs: usize,
    batch_size: usize,
    mode: &'static str,
    packets: u64,
    wall_s: f64,
    pkts_per_sec_per_core: f64,
    ns_per_pkt: f64,
    cycles_eq_per_pkt: f64,
    /// reference ns/pkt ÷ fused ns/pkt (1.0 on reference rows).
    speedup: f64,
}

impl serde::Serialize for SweepRow {
    fn to_value(&self) -> serde::Value {
        json_row(vec![
            ("chain", self.chain.to_value()),
            ("nfs", self.nfs.to_value()),
            ("batch_size", self.batch_size.to_value()),
            ("mode", self.mode.to_value()),
            ("packets", self.packets.to_value()),
            ("wall_s", self.wall_s.to_value()),
            (
                "pkts_per_sec_per_core",
                self.pkts_per_sec_per_core.to_value(),
            ),
            ("ns_per_pkt", self.ns_per_pkt.to_value()),
            ("cycles_eq_per_pkt", self.cycles_eq_per_pkt.to_value()),
            ("speedup", self.speedup.to_value()),
        ])
    }
}

struct OverloadRow {
    offered_multiplier: f64,
    offered_gbps: f64,
    delivered_gbps: f64,
    drop_frac: f64,
    reference_wall_s: f64,
    fused_wall_s: f64,
    reports_identical: bool,
}

impl serde::Serialize for OverloadRow {
    fn to_value(&self) -> serde::Value {
        json_row(vec![
            ("offered_multiplier", self.offered_multiplier.to_value()),
            ("offered_gbps", self.offered_gbps.to_value()),
            ("delivered_gbps", self.delivered_gbps.to_value()),
            ("drop_frac", self.drop_frac.to_value()),
            ("reference_wall_s", self.reference_wall_s.to_value()),
            ("fused_wall_s", self.fused_wall_s.to_value()),
            ("reports_identical", self.reports_identical.to_value()),
        ])
    }
}

/// Server-side chains under test, each NF with its spec parameters. The
/// headline chain is the rule-bearing variant; the bare variant of the
/// same shape isolates the fusion-only gains.
fn chains() -> Vec<(String, Vec<(NfKind, NfParams)>)> {
    let bare = NfParams::new;
    let mut acl256 = NfParams::new();
    acl256.set("num_rules", ParamValue::Int(256));
    let mut bpf = NfParams::new();
    bpf.set("split", ParamValue::Int(1));
    bpf.set("salt", ParamValue::Int(7));
    vec![
        (
            HEADLINE.to_string(),
            vec![
                (NfKind::Acl, acl256),
                (NfKind::Match, bpf),
                (NfKind::Monitor, bare()),
                (NfKind::Limiter, bare()),
            ],
        ),
        (
            "bare-acl-match-monitor-limiter".to_string(),
            vec![
                (NfKind::Acl, bare()),
                (NfKind::Match, bare()),
                (NfKind::Monitor, bare()),
                (NfKind::Limiter, bare()),
            ],
        ),
        (
            "nat-monitor".to_string(),
            vec![(NfKind::Nat, bare()), (NfKind::Monitor, bare())],
        ),
        (
            "lb-acl-monitor".to_string(),
            vec![
                (NfKind::Lb, bare()),
                (NfKind::Acl, bare()),
                (NfKind::Monitor, bare()),
            ],
        ),
        (
            "encrypt-limiter".to_string(),
            vec![(NfKind::FastEncrypt, bare()), (NfKind::Limiter, bare())],
        ),
    ]
}

/// 256 distinct flows in 64-byte frames. Destination addresses land one
/// per `10.0.x.0/24` — the headline ACL's synthetic rule prefixes — so
/// rule indices (and therefore the reference path's linear-scan depth)
/// are uniform over the table.
fn template_pool() -> Vec<PacketBuf> {
    (0..256u16)
        .map(|i| {
            udp_packet(
                ethernet::Address([2, 0, 0, 0, 0, 1]),
                ethernet::Address([2, 0, 0, 0, 0, 2]),
                ipv4::Address::new(198, 51, 100, (i % 251) as u8),
                ipv4::Address::new(10, 0, i as u8, 9),
                1000 + i,
                80,
                b"fused dataplane sweep!",
            )
        })
        .collect()
}

/// Both timed loops recycle a fixed ring of `batch_size` buffers — the
/// NIC-ring working set of a steady-state dataplane. Each iteration
/// refreshes every buffer's frame from the template pool (an in-place
/// memcpy reusing the allocation, paid identically by both modes), then
/// runs one subgroup invocation. Dropped packets are replaced from the
/// pool; with these chain configs the sweeps drop nothing, so the steady
/// state allocates nothing.
fn time_reference(
    nfs: &[(NfKind, NfParams)],
    pool: &[PacketBuf],
    batch_size: usize,
    iters: usize,
) -> f64 {
    let mut sg = Subgroup::new("bench", nfs.iter().map(|(k, p)| build_nf(*k, p)).collect());
    let mask = pool.len() - 1;
    debug_assert!(pool.len().is_power_of_two());
    let mut ring: Vec<PacketBuf> = (0..batch_size).map(|i| pool[i & mask].clone()).collect();
    let mut cursor = 0usize;
    let mut now_ns = 0u64;
    let mut sink = 0u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        while ring.len() < batch_size {
            ring.push(pool[cursor & mask].clone());
        }
        for buf in ring.iter_mut() {
            buf.copy_frame_from(&pool[cursor & mask]);
            cursor += 1;
        }
        let ctx = NfCtx { now_ns };
        let out = sg.process_batch(&ctx, Batch::from_packets(std::mem::take(&mut ring)));
        sink += out.dropped as u64;
        ring.extend(out.packets.into_iter().map(|(p, gate)| {
            sink += gate as u64;
            p
        }));
        now_ns += 10_000;
    }
    let wall = t0.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    wall
}

fn time_fused(
    nfs: &[(NfKind, NfParams)],
    pool: &[PacketBuf],
    batch_size: usize,
    iters: usize,
) -> f64 {
    let mut fs = FusedSegment::new(
        "bench",
        nfs.iter().map(|(k, p)| FusedNf::build(*k, p)).collect(),
    );
    let mask = pool.len() - 1;
    debug_assert!(pool.len().is_power_of_two());
    let mut batch = Batch::from_packets((0..batch_size).map(|i| pool[i & mask].clone()).collect());
    let mut gates = Vec::new();
    let mut cursor = 0usize;
    let mut now_ns = 0u64;
    let mut sink = 0u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        while batch.len() < batch_size {
            batch.push(pool[cursor & mask].clone());
        }
        for buf in batch.iter_mut() {
            buf.copy_frame_from(&pool[cursor & mask]);
            cursor += 1;
        }
        let ctx = NfCtx { now_ns };
        let dropped = fs.process_batch_inplace(&ctx, &mut batch, &mut gates);
        sink += dropped as u64 + gates.iter().sum::<usize>() as u64;
        now_ns += 10_000;
    }
    let wall = t0.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    wall
}

fn sweep(quick: bool) -> Vec<SweepRow> {
    let total_pkts: usize = if quick { 400_000 } else { 2_000_000 };
    let runs = if quick { 2 } else { 3 };
    let pool = template_pool();
    let mut rows = Vec::new();
    for (name, nfs) in chains() {
        for &bs in &BATCH_SIZES {
            let iters = total_pkts / bs;
            let warmup = (iters / 10).max(1);
            // Warm both runtimes' caches and the allocator.
            let _ = time_reference(&nfs, &pool, bs, warmup);
            let _ = time_fused(&nfs, &pool, bs, warmup);
            // Interleave the modes' runs and keep each mode's minimum, so
            // clock/thermal drift on a busy host cannot systematically
            // penalize whichever mode runs later.
            let mut ref_wall = f64::INFINITY;
            let mut fused_wall = f64::INFINITY;
            for _ in 0..runs {
                ref_wall = ref_wall.min(time_reference(&nfs, &pool, bs, iters));
                fused_wall = fused_wall.min(time_fused(&nfs, &pool, bs, iters));
            }
            let pkts = (iters * bs) as u64;
            let ref_ns = ref_wall * 1e9 / pkts as f64;
            let fused_ns = fused_wall * 1e9 / pkts as f64;
            for (mode, wall, ns, speedup) in [
                ("reference", ref_wall, ref_ns, 1.0),
                ("fused", fused_wall, fused_ns, ref_ns / fused_ns),
            ] {
                rows.push(SweepRow {
                    chain: name.clone(),
                    nfs: nfs.len(),
                    batch_size: bs,
                    mode,
                    packets: pkts,
                    wall_s: wall,
                    pkts_per_sec_per_core: pkts as f64 / wall,
                    ns_per_pkt: ns,
                    cycles_eq_per_pkt: ns * NOMINAL_GHZ,
                    speedup,
                });
            }
        }
    }
    rows
}

fn overload_curve(quick: bool) -> Vec<OverloadRow> {
    // All-software placement of a canonical chain: every NF runs in the
    // server runtime under test. The relaxed SLO floor keeps the
    // placement feasible without hardware offload.
    let (p, mut specs) = build_problem(
        &[CanonicalChain::Chain3],
        0.25,
        lemur_placer::topology::Topology::testbed(),
    );
    let a = lemur_placer::baselines::sw_preferred_assignment(&p);
    let e = p.evaluate(&a, CoreStrategy::WaterFill).unwrap();
    let config = SimConfig {
        duration_s: if quick { 0.004 } else { 0.02 },
        warmup_s: if quick { 0.001 } else { 0.004 },
        ..SimConfig::default()
    };
    let mut rows = Vec::new();
    for mult in [0.5, 1.0, 1.5, 2.0, 3.0] {
        specs[0].offered_bps = e.chain_rates_bps[0] * mult;
        let mut reference = Testbed::build_with_mode(&p, &e, RuntimeMode::Reference).unwrap();
        let t0 = Instant::now();
        let ref_report = reference.run(&specs, config);
        let ref_wall = t0.elapsed().as_secs_f64();
        let mut fused = Testbed::build_with_mode(&p, &e, RuntimeMode::Fused).unwrap();
        let t1 = Instant::now();
        let fused_report = fused.run(&specs, config);
        let fused_wall = t1.elapsed().as_secs_f64();
        let delivered = fused_report.per_chain[0].delivered_bps;
        rows.push(OverloadRow {
            offered_multiplier: mult,
            offered_gbps: specs[0].offered_bps / 1e9,
            delivered_gbps: delivered / 1e9,
            drop_frac: (1.0 - delivered / specs[0].offered_bps).max(0.0),
            reference_wall_s: ref_wall,
            fused_wall_s: fused_wall,
            reports_identical: ref_report == fused_report,
        });
    }
    rows
}

struct Artifact {
    nominal_ghz: f64,
    quick: bool,
    sweep: Vec<SweepRow>,
    overload: Vec<OverloadRow>,
}

impl serde::Serialize for Artifact {
    fn to_value(&self) -> serde::Value {
        json_row(vec![
            ("nominal_ghz", self.nominal_ghz.to_value()),
            ("quick", self.quick.to_value()),
            ("sweep", self.sweep.to_value()),
            ("overload", self.overload.to_value()),
        ])
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    println!("=== Fused vs reference segment sweep ===\n");
    let sweep_table = Table::new()
        .left("chain", 31)
        .right("nfs", 3)
        .right("batch", 6)
        .right("mode", 10)
        .right("Mpps/core", 12)
        .right("ns/pkt", 10)
        .right("cyc-eq", 10)
        .right("speedup", 8);
    sweep_table.print_header();
    let sweep_rows = sweep(quick);
    for r in &sweep_rows {
        sweep_table.print_row(&[
            cell(&r.chain),
            cell(r.nfs),
            cell(r.batch_size),
            cell(r.mode),
            fnum(r.pkts_per_sec_per_core / 1e6, 3),
            fnum(r.ns_per_pkt, 1),
            fnum(r.cycles_eq_per_pkt, 0),
            format!("{:.2}x", r.speedup),
        ]);
    }

    println!("\n=== Overload drop curve (Chain3, all-software placement) ===\n");
    let overload_table = Table::new()
        .right("mult", 5)
        .right("offered(G)", 12)
        .right("delivered(G)", 14)
        .right("drop%", 10)
        .right("ref_s", 10)
        .right("fused_s", 10)
        .right("identical", 10);
    overload_table.print_header();
    let overload_rows = overload_curve(quick);
    for r in &overload_rows {
        overload_table.print_row(&[
            fnum(r.offered_multiplier, 1),
            fnum(r.offered_gbps, 2),
            fnum(r.delivered_gbps, 2),
            format!("{:.1}%", r.drop_frac * 100.0),
            fnum(r.reference_wall_s, 3),
            fnum(r.fused_wall_s, 3),
            cell(if r.reports_identical { "yes" } else { "NO" }),
        ]);
    }

    let artifact = Artifact {
        nominal_ghz: NOMINAL_GHZ,
        quick,
        sweep: sweep_rows,
        overload: overload_rows,
    };
    write_json("BENCH_dataplane", &artifact);

    // ---- Gates -----------------------------------------------------------
    let mut failures = Vec::new();
    for r in artifact.sweep.iter().filter(|r| r.mode == "fused") {
        if r.speedup < 0.9 {
            failures.push(format!(
                "fused slower than reference: {} batch={} speedup {:.2}x",
                r.chain, r.batch_size, r.speedup
            ));
        }
        if r.chain == HEADLINE && r.batch_size == 32 && r.speedup < 2.0 {
            failures.push(format!(
                "headline chain {} at batch 32: {:.2}x < 2.0x floor",
                r.chain, r.speedup
            ));
        }
    }
    for r in &artifact.overload {
        if !r.reports_identical {
            failures.push(format!(
                "overload curve diverged between modes at {}x offered",
                r.offered_multiplier
            ));
        }
    }
    if failures.is_empty() {
        let headline = artifact
            .sweep
            .iter()
            .find(|r| r.mode == "fused" && r.chain == HEADLINE && r.batch_size == 32)
            .expect("headline cell present");
        println!(
            "\nPASS: {} at batch 32 → {:.2}x fused speedup ({:.2} Mpps/core vs reference), all cells >= 0.9x, overload curves identical.",
            HEADLINE,
            headline.speedup,
            headline.pkts_per_sec_per_core / 1e6
        );
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
