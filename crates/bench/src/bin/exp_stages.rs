//! §5.2 "An extreme configuration: P4 stage constraints".
//!
//! The chain `BPF -> N × NAT (branched) -> IPv4Fwd` at δ = 0.5:
//!
//! * all-switch placement of 11 NATs exceeds the 12-stage pipeline;
//! * 10 NATs fit (the compiler's packing beats the conservative analytic
//!   estimate — paper: estimate 14 vs compiled 12);
//! * without the meta-compiler's dependency-elimination optimizations the
//!   10-NAT program balloons (paper: 27 stages);
//! * Lemur handles the 11-NAT chain by placing one NAT on the server.
//!
//! The four chain lengths are independent, so they fan out over the
//! deterministic worker pool; each N's report lines are preformatted in
//! the worker and printed in N order afterwards, so the output is
//! identical at any `LEMUR_WORKERS` setting. The memoized compiler
//! oracles are shared across the fan-out.

use lemur_bench::write_json;
use lemur_core::chains::extreme_nat_chain;
use lemur_core::graph::ChainSpec;
use lemur_core::Slo;
use lemur_metacompiler::{p4gen, routing, CachedCompilerOracle};
use lemur_placer::oracle::{StageOracle, StageVerdict};
use lemur_placer::parallel::{parallel_map, Workers};
use lemur_placer::placement::PlacementProblem;
use lemur_placer::profiles::{NfProfiles, Platform};
use lemur_placer::topology::Topology;

fn problem(n: usize) -> PlacementProblem {
    let mut p = PlacementProblem::new(
        vec![ChainSpec {
            name: format!("extreme{n}"),
            graph: extreme_nat_chain(n),
            slo: None,
            aggregate: None,
        }],
        Topology::testbed(),
        NfProfiles::table4(),
    );
    let base = p.base_rate_bps(0);
    p.chains[0].slo = Some(Slo::elastic_pipe(1.0 * base, 100e9));
    p
}

/// Everything one chain length produces: the JSON summary tuple plus the
/// two report lines, assembled inside the worker.
struct NatRun {
    summary: (usize, String, usize, usize),
    lines: [String; 2],
}

fn run_one(n: usize, oracle: &CachedCompilerOracle, naive: &CachedCompilerOracle) -> NatRun {
    let p = problem(n);
    let hw = lemur_placer::baselines::hw_preferred_assignment(&p);

    // Real compiler.
    let compiled = oracle.check(&p, &hw);
    // Conservative analytic estimate.
    let plan = routing::plan(&p, &hw);
    let estimate = p4gen::synthesize(&p, &hw, &plan, p4gen::P4GenOptions::default())
        .map(|s| {
            lemur_p4sim::compiler::estimate_conservative(&s.program, p.topology.pisa().unwrap())
        })
        .unwrap_or(0);
    // Naive (no dependency elimination) generation.
    let naive_stages = match naive.check(&p, &hw) {
        StageVerdict::Fits { stages } => stages,
        StageVerdict::OutOfStages { required, .. } => required,
    };
    let compiled_str = match &compiled {
        StageVerdict::Fits { stages } => format!("{stages} (fits)"),
        StageVerdict::OutOfStages { required, .. } => format!("{required} (OVERFLOW)"),
    };
    let line0 = format!(
        "  {n:>2} NATs all-switch: compiled {compiled_str:>15}, analytic estimate {estimate:>2}, naive codegen {naive_stages:>2}"
    );

    // What the full placers do with this chain.
    let lemur = lemur_placer::heuristic::place(&p, oracle);
    let hw_res = lemur_placer::baselines::hw_preferred(&p, oracle);
    let sw_res = lemur_placer::baselines::sw_preferred(&p, oracle);
    let nats_on_server = lemur
        .as_ref()
        .map(|e| {
            p.chains[0]
                .graph
                .nodes()
                .filter(|(id, node)| {
                    node.kind == lemur_nf::NfKind::Nat
                        && matches!(e.assignment[0].get(id), Some(Platform::Server(_)))
                })
                .count()
        })
        .unwrap_or(0);
    let line1 = format!(
        "      Lemur: {} ({} NAT(s) moved to server) | HW Preferred: {} | SW Preferred: {}",
        lemur
            .as_ref()
            .map(|e| format!("feasible, {:.1}G", e.aggregate_bps / 1e9))
            .unwrap_or_else(|e| format!("infeasible ({e})")),
        nats_on_server,
        hw_res
            .map(|_| "feasible".to_string())
            .unwrap_or_else(|e| format!("infeasible ({e})")),
        sw_res
            .map(|_| "feasible".to_string())
            .unwrap_or_else(|e| format!("infeasible ({e})")),
    );
    NatRun {
        summary: (n, compiled_str, estimate, naive_stages),
        lines: [line0, line1],
    }
}

fn main() {
    println!("=== §5.2 extreme configuration: BPF -> N x NAT -> IPv4Fwd ===\n");
    let oracle = CachedCompilerOracle::new();
    let naive = CachedCompilerOracle::naive();
    let ns = [9usize, 10, 11, 12];
    let runs = parallel_map(Workers::from_env(), &ns, |_, &n| {
        run_one(n, &oracle, &naive)
    });
    let mut summary = Vec::new();
    for run in runs {
        println!("{}", run.lines[0]);
        println!("{}", run.lines[1]);
        summary.push(run.summary);
    }
    write_json("stages", &summary);
    println!("\nPaper shape: 10 NATs fit (12 stages; conservative estimate 14; naive 27);");
    println!("11 NATs overflow, and only Lemur finds a feasible mixed placement.");
}
