//! Differential dataplane fuzzing run (robustness experiment).
//!
//! Axis 1: random table programs through the stage-packing compiler vs
//! the naive one-table-per-stage reference vs the control-tree
//! interpreter, on identical packet workloads. Axis 2: generated eBPF
//! NIC programs vs the software NF path on random NSH traffic.
//!
//! Seeds fan out over the deterministic worker pool; each seed's report
//! is a pure function of the seed, so the JSON output is bit-identical
//! at any `LEMUR_WORKERS` setting.
//!
//! Usage:
//!
//! ```text
//! exp_diff_fuzz [--seeds N] [--trials N] [--quick] [--inject-bug]
//! ```
//!
//! * default: 5 seeds x 500 trials per axis;
//! * `--quick`: 2 seeds x 60 trials (CI);
//! * `--inject-bug`: self-test — enable the compiler's deliberate
//!   packing bug and *demand* a divergence that shrinks to <= 2 tables
//!   and <= 3 packets. Exit code 1 if the harness fails to catch it.
//!
//! Exit codes: 0 = clean (or bug caught in `--inject-bug` mode);
//! 1 = unexpected divergence, panic, or missed injected bug.

use lemur_bench::write_json;
use lemur_fuzz::{run_backend_seed, run_seed, RunOptions};
use lemur_placer::parallel::{parallel_map, Workers};
use serde::Value;
use std::process::ExitCode;

struct Args {
    seeds: u64,
    trials: usize,
    inject_bug: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 5,
        trials: 500,
        inject_bug: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                args.seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seeds needs a number"));
            }
            "--trials" => {
                args.trials = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--trials needs a number"));
            }
            "--quick" => {
                args.seeds = 2;
                args.trials = 60;
            }
            "--inject-bug" => args.inject_bug = true,
            other => usage(&format!("unknown argument {other}")),
        }
    }
    args
}

fn usage(msg: &str) -> ! {
    eprintln!("exp_diff_fuzz: {msg}");
    eprintln!("usage: exp_diff_fuzz [--seeds N] [--trials N] [--quick] [--inject-bug]");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args = parse_args();
    let opts = RunOptions {
        inject_bug: args.inject_bug,
        max_failures_per_seed: 3,
    };
    let workers = Workers::from_env();
    let seeds: Vec<u64> = (0..args.seeds).collect();

    println!(
        "== differential dataplane fuzzing: {} seeds x {} trials/axis{} ==",
        args.seeds,
        args.trials,
        if args.inject_bug {
            " [INJECTED BUG SELF-TEST]"
        } else {
            ""
        }
    );

    // Axis 1 (compiler) and axis 2 (backend) per seed, in one fan-out.
    let reports = parallel_map(workers, &seeds, |_, &seed| {
        let a1 = run_seed(seed, args.trials, opts);
        let a2 = run_backend_seed(seed, args.trials);
        (a1, a2)
    });

    let mut exec = 0usize;
    let mut skipped = 0usize;
    let mut packets = 0usize;
    let mut a1_failures = 0usize;
    let mut a2_divergences = 0usize;
    let mut shrunk_ok = 0usize;
    for (a1, a2) in &reports {
        exec += a1.executed + a2.executed;
        skipped += a1.skipped_packed + a1.skipped_naive;
        packets += a1.packets;
        a1_failures += a1.failures.len();
        a2_divergences += a2.divergences.len();
        for f in &a1.failures {
            let small = f.case.program.num_tables() <= 2 && f.case.packets.len() <= 3;
            if small {
                shrunk_ok += 1;
            }
            println!(
                "  seed {} trial {}: {} (shrunk to {} tables / {} packets, {} reductions)",
                f.seed,
                f.trial,
                f.divergence.detail,
                f.case.program.num_tables(),
                f.case.packets.len(),
                f.reductions
            );
        }
        for d in &a2.divergences {
            println!("  backend seed {}: {}", a2.seed, d);
        }
    }
    println!(
        "executed {exec} trials ({packets} packets, {skipped} skipped), \
         {a1_failures} compiler divergences, {a2_divergences} backend divergences"
    );

    let report = Value::object(vec![
        ("seeds".into(), Value::Int(args.seeds as i128)),
        ("trials_per_seed".into(), Value::Int(args.trials as i128)),
        ("inject_bug".into(), Value::Bool(args.inject_bug)),
        ("executed".into(), Value::Int(exec as i128)),
        ("skipped".into(), Value::Int(skipped as i128)),
        ("packets".into(), Value::Int(packets as i128)),
        (
            "axis1".into(),
            Value::Array(reports.iter().map(|(a1, _)| a1.to_value()).collect()),
        ),
        (
            "axis2".into(),
            Value::Array(reports.iter().map(|(_, a2)| a2.to_value()).collect()),
        ),
    ]);
    write_json("diff_fuzz", &report);

    if args.inject_bug {
        // Self-test: the harness must catch the bug and shrink it tight.
        if a1_failures == 0 {
            eprintln!("FAIL: injected packing bug produced no divergence");
            return ExitCode::FAILURE;
        }
        if shrunk_ok == 0 {
            eprintln!("FAIL: no divergence shrank to <= 2 tables / <= 3 packets");
            return ExitCode::FAILURE;
        }
        println!("self-test OK: bug caught and minimized");
        return ExitCode::SUCCESS;
    }
    if a1_failures > 0 || a2_divergences > 0 {
        eprintln!("FAIL: unexpected cross-backend divergence (see report above)");
        return ExitCode::FAILURE;
    }
    println!("OK: no divergences");
    ExitCode::SUCCESS
}
