//! Overload soak: drive the hybrid dataplane through a DDoS + flash-crowd
//! storm under the surge-aware supervisor and hold the whole stack to the
//! graceful-degradation contract, per seed:
//!
//! 1. **Exact conservation, admission engaged** — the ledger balances as
//!    integers and rung 1 actually denied junk tail mass
//!    (`drops_admission > 0`).
//! 2. **No repair churn under pure surge** — every violated window is
//!    classified overload, so `repair_attempts == 0` while
//!    `suppressed_replans > 0`: the supervisor never replans against a
//!    load anomaly it cannot fix.
//! 3. **Priority order holds** — the top-priority chain is never shed by
//!    rung 2 and clears its `t_min` in the final guard window.
//! 4. **Full unwind** — once the storm passes, the ladder steps all the
//!    way back down: every chain re-admitted, admission denial cleared,
//!    no residual scale-out, supervisor settled, decision log consistent.
//!
//! The storm puts the DDoS junk surge on the *high*-priority chain (its
//! junk is denied, the chain itself is untouchable) and the flash crowd
//! on the *low*-priority chain (which rung 2 may shed and must later
//! restore). Per-chain tail capacity and a small fluid-queue buffer make
//! the surge visible as backlog latency and `QueueOverflow` drops, which
//! is what the detector and the SLO guard key off.
//!
//! Results land in `target/experiments/BENCH_overload.json`. Exit is
//! non-zero if any invariant fails on any seed.
//!
//! Usage: `exp_overload [--quick]`

use lemur_bench::table::{cell, json_row, Table};
use lemur_bench::{build_problem, compiler_oracle, write_json};
use lemur_control::surge::{SurgeConfig, SurgeDetector};
use lemur_control::{Supervisor, SupervisorConfig, SupervisorEvent};
use lemur_core::chains::CanonicalChain;
use lemur_core::Slo;
use lemur_dataplane::{
    validate_scenario, ChainLoad, FlowSizeDist, HybridConfig, HybridMode, SimConfig, Surge,
    SurgeKind, Testbed, TrafficTolerance,
};
use lemur_placer::topology::Topology;

/// Heavy-hitter threshold: above every drawn flow size, so the whole
/// storm rides the analytic tail. The latency the guard sees is then
/// exactly the fluid queue's Little's-law waiting time — the signal the
/// overload machinery is built around — with no packet-path queueing
/// noise underneath it. (Heavy/tail interplay is `exp_scale`'s subject;
/// a single materialized heavy hitter saturates a chain's real stations
/// and would violate the latency SLO storm or no storm.)
const THETA: u64 = 1 << 32;
/// Fluid-queue bound (packets) per chain: small enough that a surge
/// overflows within a couple of windows.
const QUEUE_BUFFER: u64 = 256;
/// Latency SLO: calm windows sit at zero added waiting, a part-full
/// backlog's Little's-law waiting time sits far above the bound.
const D_MAX_NS: f64 = 100_000.0;
const WINDOW_NS: u64 = 1_000_000;
const SEEDS: [u64; 5] = [11, 23, 37, 41, 53];
const N_SERVERS: usize = 4;

fn flows_per_chain(quick: bool) -> usize {
    if quick {
        6_000
    } else {
        36_000
    }
}

fn sim_config(seed: u64, quick: bool) -> SimConfig {
    SimConfig {
        // Full depth scales the horizon with the flow count so the
        // realized *rate* (and hence the placement problem) stays the
        // same — more flows buy longer storms and more guard windows,
        // not a hotter rack.
        duration_s: if quick { 0.055 } else { 0.33 },
        warmup_s: 0.005,
        seed,
        window_ns: WINDOW_NS,
        ..SimConfig::default()
    }
}

fn horizon_ns(c: &SimConfig) -> u64 {
    ((c.warmup_s + c.duration_s) * 1e9) as u64
}

/// Chain 0 (top priority) takes the DDoS junk surge; chain 1 (shed
/// first) takes the flash crowd. Both storms end by ~37% of the horizon
/// so the back half is calm enough for a full unwind.
fn storm_load(flows: usize, horizon_ns: u64, chain: usize) -> ChainLoad {
    let surge = if chain == 0 {
        // Junk flows are minimum-size, so their *packet* mass per unit
        // intensity is min/mean of the size distribution; a factor of 6
        // puts the junk slice alone past the chain's tail capacity.
        Surge {
            kind: SurgeKind::Ddos,
            start_ns: horizon_ns / 6,
            duration_ns: horizon_ns / 5,
            factor: 6.0,
        }
    } else {
        Surge {
            kind: SurgeKind::FlashCrowd,
            start_ns: horizon_ns / 6,
            duration_ns: horizon_ns / 6,
            factor: 3.0,
        }
    };
    ChainLoad {
        flows,
        // Short flows (a max-size flow drains within one guard window):
        // the validator's intensity model assumes flow durations small
        // against the modulation, and short flows keep its window
        // statistics tight.
        flow_rate_pps: 300_000.0 + 100_000.0 * chain as f64,
        size: FlowSizeDist {
            alpha: 1.3,
            min_packets: 1,
            max_packets: 256,
        },
        diurnal: None,
        surges: vec![surge],
    }
}

struct OverloadRow {
    seed: u64,
    flows_total: usize,
    junk_flows: usize,
    drops_admission: u64,
    drops_queue: u64,
    drops_shed: u64,
    max_rung: u8,
    suppressed_replans: u64,
    repair_attempts: u64,
    final_state: String,
    conservation_ok: bool,
    surge_suppression_ok: bool,
    priority_held: bool,
    fully_unwound: bool,
}

impl OverloadRow {
    fn ok(&self) -> bool {
        self.conservation_ok
            && self.surge_suppression_ok
            && self.priority_held
            && self.fully_unwound
    }
}

impl serde::Serialize for OverloadRow {
    fn to_value(&self) -> serde::Value {
        json_row(vec![
            ("seed", self.seed.to_value()),
            ("flows_total", self.flows_total.to_value()),
            ("junk_flows", self.junk_flows.to_value()),
            ("drops_admission", self.drops_admission.to_value()),
            ("drops_queue", self.drops_queue.to_value()),
            ("drops_shed", self.drops_shed.to_value()),
            ("max_rung", self.max_rung.to_value()),
            ("suppressed_replans", self.suppressed_replans.to_value()),
            ("repair_attempts", self.repair_attempts.to_value()),
            ("final_state", self.final_state.to_value()),
            ("conservation_ok", self.conservation_ok.to_value()),
            ("surge_suppression_ok", self.surge_suppression_ok.to_value()),
            ("priority_held", self.priority_held.to_value()),
            ("fully_unwound", self.fully_unwound.to_value()),
        ])
    }
}

struct Artifact {
    quick: bool,
    theta: u64,
    queue_buffer_packets: u64,
    d_max_ns: f64,
    seeds: Vec<OverloadRow>,
}

impl serde::Serialize for Artifact {
    fn to_value(&self) -> serde::Value {
        json_row(vec![
            ("quick", self.quick.to_value()),
            ("theta", self.theta.to_value()),
            ("queue_buffer_packets", self.queue_buffer_packets.to_value()),
            ("d_max_ns", self.d_max_ns.to_value()),
            ("seeds", self.seeds.to_value()),
        ])
    }
}

fn run_seed(seed: u64, quick: bool, failures: &mut Vec<String>) -> OverloadRow {
    let oracle = compiler_oracle();
    let (mut problem, specs) = build_problem(
        &[CanonicalChain::Chain3, CanonicalChain::Chain2],
        0.3,
        Topology::with_servers(N_SERVERS),
    );
    let n_chains = problem.chains.len();

    let config = sim_config(seed, quick);
    let horizon = horizon_ns(&config);
    let spec = lemur_dataplane::ScenarioSpec {
        seed,
        horizon_ns: horizon,
        chains: (0..n_chains)
            .map(|ci| storm_load(flows_per_chain(quick), horizon, ci))
            .collect(),
    };
    let scenario = spec.materialize();
    // The observed burst factor is the max over O(100) windows, so it
    // sits above the declared intensity peak by an extreme-value margin
    // that grows with the horizon; give it headroom while keeping the
    // rate, CV, and tail-index checks at their defaults.
    let tol = TrafficTolerance {
        burst_rel: 0.8,
        ..TrafficTolerance::default()
    };
    if let Err(e) = validate_scenario(&spec, &scenario, WINDOW_NS, &tol) {
        failures.push(format!("seed {seed}: traffic validator rejected: {e}"));
    }
    let junk_flows = scenario.flows.iter().filter(|f| f.ddos).count();

    // Size the SLOs and the tail capacity from the *realized* legitimate
    // load: t_min well below the calm delivery rate, capacity between the
    // calm rate and the surge peak so backlog builds only under storm.
    let horizon_s = horizon as f64 / 1e9;
    let legit_bps: Vec<f64> = (0..n_chains)
        .map(|ci| {
            let frame_bits = (specs[ci].payload_len + 42) as f64 * 8.0;
            scenario
                .flows
                .iter()
                .filter(|f| f.chain == ci && !f.ddos)
                .map(|f| f.packets)
                .sum::<u64>() as f64
                * frame_bits
                / horizon_s
        })
        .collect();
    for (i, (chain, &legit)) in problem.chains.iter_mut().zip(&legit_bps).enumerate() {
        // Descending shedding priority by index: chain 0 survives longest.
        chain.slo = Some(
            Slo::elastic_pipe(0.3 * legit, 100e9)
                .with_latency_ns(D_MAX_NS)
                .with_priority((n_chains - i) as u8),
        );
    }

    let placement =
        lemur_placer::heuristic::place(&problem, &oracle).expect("healthy rack placement");
    let deployment = lemur_metacompiler::compile(&problem, &placement).expect("meta-compilation");

    let mut sup = Supervisor::new(
        &problem,
        &placement,
        &deployment,
        &oracle,
        SupervisorConfig {
            seed,
            ladder_patience: 2,
            unwind_patience: 2,
            ..SupervisorConfig::default()
        },
    )
    .with_surge_detector(SurgeDetector::for_scenario(
        &scenario,
        SurgeConfig::default(),
    ));

    let mut testbed = Testbed::build(&problem, &placement, deployment).expect("testbed");
    let slos: Vec<Option<Slo>> = problem.chains.iter().map(|c| c.slo).collect();
    let mode = HybridMode::Hybrid(HybridConfig {
        heavy_min_packets: THETA,
        capacity_bps: legit_bps.iter().map(|&r| 2.0 * r).collect(),
        queue_buffer_packets: QUEUE_BUFFER,
    });
    let report = testbed
        .run_scenario_supervised(
            &scenario,
            &specs,
            config,
            &lemur_dataplane::FaultPlan::empty(),
            &slos,
            &mode,
            &mut sup,
        )
        .expect("valid hybrid config");

    let ledger = report.ledger;
    let max_rung = sup
        .events()
        .iter()
        .filter_map(|e| match e {
            SupervisorEvent::LadderEscalated { rung, .. } => Some(*rung),
            _ => None,
        })
        .max()
        .unwrap_or(0);

    // Invariant 1: exact conservation with rung 1 actually engaged.
    let conservation_ok = ledger.balanced() && ledger.drops_admission > 0;
    if !ledger.balanced() {
        failures.push(format!(
            "seed {seed}: conservation ledger unbalanced: {ledger:?}"
        ));
    }
    if ledger.drops_admission == 0 {
        failures.push(format!(
            "seed {seed}: admission control never denied junk (max rung {max_rung})"
        ));
    }

    // Invariant 2: the storm is pure surge — classified overload, never
    // repaired against.
    let surge_suppression_ok = sup.repair_attempts() == 0 && sup.suppressed_replans() > 0;
    if sup.repair_attempts() != 0 {
        failures.push(format!(
            "seed {seed}: {} replan(s) charged under pure surge",
            sup.repair_attempts()
        ));
    }
    if sup.suppressed_replans() == 0 {
        failures.push(format!(
            "seed {seed}: no suppressed replans — the detector never classified overload"
        ));
    }

    // Invariant 3: the top-priority chain (0) is never shed and clears
    // its t_min in the final guard window.
    let top_shed = sup.events().iter().any(|e| {
        matches!(
            e,
            SupervisorEvent::LadderEscalated {
                rung: 2,
                chain: Some(0),
                ..
            }
        )
    });
    let top_tmin = problem.chains[0].slo.map_or(0.0, |s| s.t_min_bps);
    let top_final_ok = report
        .windows
        .iter()
        .rev()
        .find(|w| w.chain == 0)
        .is_some_and(|w| w.delivered_bps >= top_tmin * 0.95);
    let priority_held = !top_shed && sup.admitted()[0] && top_final_ok;
    if top_shed {
        failures.push(format!("seed {seed}: rung 2 shed the top-priority chain"));
    }
    if !sup.admitted()[0] {
        failures.push(format!(
            "seed {seed}: top-priority chain not admitted at the end"
        ));
    }
    if !top_final_ok {
        failures.push(format!(
            "seed {seed}: top-priority chain below t_min in the final window"
        ));
    }

    // Invariant 4: the ladder unwound completely and the run settled.
    let fully_unwound = !sup.ladder_engaged()
        && sup.admitted().iter().all(|&a| a)
        && sup.is_settled()
        && sup.wal().is_consistent();
    if !fully_unwound {
        failures.push(format!(
            "seed {seed}: residual ladder state at the horizon: engaged={} admitted={:?} state={:?} wal_consistent={}",
            sup.ladder_engaged(),
            sup.admitted(),
            sup.state(),
            sup.wal().is_consistent()
        ));
    }

    OverloadRow {
        seed,
        flows_total: scenario.flows.len(),
        junk_flows,
        drops_admission: ledger.drops_admission,
        drops_queue: ledger.drops_queue,
        drops_shed: ledger.drops_shed,
        max_rung,
        suppressed_replans: sup.suppressed_replans(),
        repair_attempts: sup.repair_attempts(),
        final_state: format!("{:?}", sup.state()),
        conservation_ok,
        surge_suppression_ok,
        priority_held,
        fully_unwound,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");

    println!(
        "=== Overload soak (DDoS on top-priority chain, flash crowd on low, θ = {THETA}) ===\n"
    );
    let table = Table::new()
        .right("seed", 5)
        .right("flows", 7)
        .right("junk", 7)
        .right("adm-drop", 9)
        .right("q-drop", 8)
        .right("shed", 8)
        .right("rung", 5)
        .right("suppr", 6)
        .right("repair", 7)
        .left("final", 17)
        .right("ok", 4);
    table.print_header();

    let mut failures = Vec::new();
    let mut rows = Vec::new();
    for seed in SEEDS {
        let row = run_seed(seed, quick, &mut failures);
        table.print_row(&[
            cell(row.seed),
            cell(row.flows_total),
            cell(row.junk_flows),
            cell(row.drops_admission),
            cell(row.drops_queue),
            cell(row.drops_shed),
            cell(row.max_rung),
            cell(row.suppressed_replans),
            cell(row.repair_attempts),
            cell(row.final_state.clone()),
            cell(if row.ok() { "ok" } else { "FAIL" }),
        ]);
        rows.push(row);
    }

    let artifact = Artifact {
        quick,
        theta: THETA,
        queue_buffer_packets: QUEUE_BUFFER,
        d_max_ns: D_MAX_NS,
        seeds: rows,
    };
    write_json("BENCH_overload", &artifact);

    if failures.is_empty() {
        let escalated = artifact.seeds.iter().map(|r| r.max_rung).max().unwrap_or(0);
        let denied: u64 = artifact.seeds.iter().map(|r| r.drops_admission).sum();
        println!(
            "\nPASS: {} seeds — ladder climbed to rung {escalated}, {denied} junk packets denied, \
             zero replans under surge, every ladder fully unwound.",
            artifact.seeds.len(),
        );
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
