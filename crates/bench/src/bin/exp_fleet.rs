//! Fleet soak: multi-PoP control under seeded storm weather — channel
//! blackouts, asymmetric partitions, brownouts, and coordinator crashes
//! with torn journal tails — held to four hard invariants per seed:
//!
//! * **Exact packet conservation** — generated = forwarded + NF-dropped +
//!   dropped-unowned, as integers, plus an exact copy ledger on the lossy
//!   control channel itself.
//! * **Fencing exclusivity** — no tick ever sees one chain live at two
//!   PoPs; leases, fencing tokens, and incarnations must hold the line
//!   through every blackout and recovery.
//! * **Settled ending** — after the storm, every non-shed chain is live
//!   at exactly its journaled home, and every journal (coordinator and
//!   per-PoP) replays to the live state.
//! * **Bit-identical reproducibility** — the same seed yields an
//!   identical `FleetReport` regardless of `LEMUR_WORKERS`.
//!
//! The sweep must also produce evidence of a full-PoP blackout recovered
//! via cross-site state migration (a drain whose stateful chains restore
//! from replicated snapshots on the survivor, fingerprint-verified).
//!
//! Usage: `exp_fleet [--seeds N] [--pops N] [--base-seed N] [--quick]`

use lemur_bench::{compiler_oracle, write_json};
use lemur_fleet::sim::{FleetSim, FleetSimConfig, FleetSpec};
use lemur_fleet::FleetReport;
use lemur_placer::oracle::StageOracle;
use lemur_placer::parallel::Workers;

fn arg_u64(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn soak(
    seed: u64,
    n_pops: usize,
    workers: Workers,
    validate: bool,
    oracle: &dyn StageOracle,
) -> FleetReport {
    let spec = FleetSpec::canonical(n_pops);
    let mut cfg = FleetSimConfig::soak(seed, n_pops);
    cfg.workers = workers;
    cfg.validate = validate;
    FleetSim::new(spec, cfg).run(oracle)
}

struct FleetRow {
    report: FleetReport,
    reproducible: bool,
    validated: bool,
}

impl serde::Serialize for FleetRow {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("report".to_string(), self.report.to_value()),
            ("reproducible".to_string(), self.reproducible.to_value()),
            ("validated".to_string(), self.validated.to_value()),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let n_seeds = arg_u64(&args, "--seeds", if quick { 3 } else { 10 });
    let n_pops = arg_u64(&args, "--pops", 2) as usize;
    let base_seed = arg_u64(&args, "--base-seed", 1);
    let oracle = compiler_oracle();

    println!(
        "fleet soak: seeds {base_seed}..{} pops={n_pops}{}",
        base_seed + n_seeds - 1,
        if quick { " (quick)" } else { "" }
    );

    let mut rows: Vec<FleetRow> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for seed in base_seed..base_seed + n_seeds {
        // Reproducibility is checked the hard way: the same seed under
        // three worker counts (env, 1, 2) must yield one bit-identical
        // report. Deep validation (per-PoP dataplane re-runs) is sampled
        // below rather than paid on every run.
        let report = soak(seed, n_pops, Workers::from_env(), false, &oracle);
        let one = soak(seed, n_pops, Workers::new(1), false, &oracle);
        let two = soak(seed, n_pops, Workers::new(2), false, &oracle);
        let reproducible = report == one && report == two;

        if !report.invariants_hold() {
            failures.push(format!("seed {seed}: invariant violated: {report:?}"));
        }
        if !reproducible {
            failures.push(format!("seed {seed}: report differs across worker counts"));
        }
        if report.drains == 0 {
            failures.push(format!(
                "seed {seed}: the guaranteed blackout never drained its PoP"
            ));
        }
        println!(
            "seed {seed}: drains={} failovers={} sheds={} state_restores={} \
             fencing={} recoveries={} settled={} reproducible={reproducible}",
            report.drains,
            report.failovers,
            report.sheds,
            report.state_restores,
            report.fencing_events,
            report.coordinator_recoveries,
            report.settled,
        );
        rows.push(FleetRow {
            report,
            reproducible,
            validated: false,
        });
    }

    // Evidence of cross-site state migration: at least one seed must
    // blackout a whole PoP and recover its stateful chains from
    // replicated snapshots on the survivor.
    let migrated: Vec<u64> = rows
        .iter()
        .filter(|r| {
            r.report.blackout_victim.is_some()
                && r.report.drains >= 1
                && r.report.state_restores >= 1
        })
        .map(|r| r.report.seed)
        .collect();
    if migrated.is_empty() {
        failures.push(
            "no seed recovered a full-PoP blackout via cross-site state migration".to_string(),
        );
    } else {
        println!("cross-site state migration recovered seeds: {migrated:?}");
    }

    // Deep validation: rerun the first migration-evidence seed (and the
    // first seed overall) with per-PoP dataplane validation on, under two
    // worker counts — survivors must compile, settle under their own
    // supervisor, and balance their packet ledgers exactly.
    if !quick {
        let mut picks: Vec<u64> = Vec::new();
        if let Some(&s) = migrated.first() {
            picks.push(s);
        }
        if let Some(first) = rows.first().map(|r| r.report.seed) {
            if !picks.contains(&first) {
                picks.push(first);
            }
        }
        for seed in picks {
            let v1 = soak(seed, n_pops, Workers::new(1), true, &oracle);
            let v2 = soak(seed, n_pops, Workers::new(2), true, &oracle);
            if v1 != v2 {
                failures.push(format!(
                    "seed {seed}: validated report differs across worker counts"
                ));
            }
            if !v1.invariants_hold() {
                failures.push(format!(
                    "seed {seed}: dataplane validation failed: {:?}",
                    v1.validations
                ));
            }
            println!(
                "seed {seed}: validated {} surviving PoPs through the dataplane",
                v1.validations.len()
            );
            if let Some(row) = rows.iter_mut().find(|r| r.report.seed == seed) {
                row.report = v1;
                row.validated = true;
            }
        }
    }

    write_json("exp_fleet", &rows);

    if failures.is_empty() {
        println!("fleet soak PASSED ({n_seeds} seeds)");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
