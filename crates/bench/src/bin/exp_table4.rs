//! Table 4: profiled NF costs (cycles/packet), same- vs cross-NUMA, over
//! repeated runs — measured on *this repository's* Rust NFs with the
//! `lemur-bess` profiler, side by side with the paper's numbers.
//!
//! Absolute cycles differ from the authors' Xeon + BESS C++ testbed; the
//! properties the evaluation relies on are what must reproduce: stability
//! (worst case within a few % of the mean) and a small NUMA penalty.
//!
//! The per-NF profiles are independent single-threaded loops, so they fan
//! out over the worker pool (one NF per worker core; the pool clamps to
//! the machine's parallelism, so concurrent profiles run on separate
//! cores and per-core cycle timing is not perturbed). Ordered reduction
//! prints rows in the paper's order. Set `LEMUR_WORKERS=1` for a fully
//! serialized, lowest-noise run.

use lemur_bench::write_json;
use lemur_bess::{profile_nf, ProfileStats, ServerSpec, TrafficPattern};
use lemur_nf::{NfKind, NfParams, ParamValue};
use lemur_placer::parallel::{parallel_map, Workers};

fn main() {
    let server = ServerSpec::lemur_testbed();
    let runs = 20;
    let pkts = 400;
    println!("=== Table 4: profiled NF costs (cycles/packet on this machine) ===\n");
    println!(
        "{:<22} {:>6} {:>9} {:>9} {:>9} {:>8}  paper(mean/min/max)",
        "NF", "NUMA", "Mean", "Min", "Max", "spread"
    );

    type PaperRow = (
        &'static str,
        NfKind,
        Option<(&'static str, i64)>,
        (u32, u32, u32),
        TrafficPattern,
    );
    let paper: &[PaperRow] = &[
        (
            "Encrypt",
            NfKind::Encrypt,
            None,
            (8593, 8405, 8777),
            TrafficPattern::LongLived,
        ),
        (
            "Dedup",
            NfKind::Dedup,
            None,
            (30182, 29202, 30867),
            TrafficPattern::LongLived,
        ),
        (
            "ACL (1024 rules)",
            NfKind::Acl,
            Some(("num_rules", 1024)),
            (3841, 3801, 4008),
            TrafficPattern::ShortLived,
        ),
        (
            "NAT (12000 entries)",
            NfKind::Nat,
            Some(("entries", 12_000)),
            (463, 459, 477),
            TrafficPattern::ShortLived,
        ),
    ];

    let profiled = parallel_map(Workers::from_env(), paper, |_, row| {
        let (name, kind, param, paper_nums, pattern) = row;
        let mut params = NfParams::new();
        if let Some((k, v)) = param {
            params.set(k, ParamValue::Int(*v));
        }
        let same = profile_nf(*kind, &params, *pattern, &server, runs, pkts);
        // Cross-NUMA: apply the measured penalty model (the profiler runs
        // on whatever core the OS gives it; the cross-socket factor is the
        // machine model's, as in `ServerSpec::cross_socket_penalty`).
        let diff = ProfileStats {
            mean_cycles: same.mean_cycles * server.cross_socket_penalty,
            min_cycles: same.min_cycles * server.cross_socket_penalty,
            max_cycles: same.max_cycles * server.cross_socket_penalty,
            runs: same.runs,
        };
        let lines: Vec<String> = [("Same", &same), ("Diff", &diff)]
            .iter()
            .map(|(numa, s)| {
                format!(
                    "{name:<22} {numa:>6} {:>9.0} {:>9.0} {:>9.0} {:>7.1}%  {}/{}/{}",
                    s.mean_cycles,
                    s.min_cycles,
                    s.max_cycles,
                    s.spread() * 100.0,
                    paper_nums.0,
                    paper_nums.1,
                    paper_nums.2
                )
            })
            .collect();
        (lines, (name.to_string(), same))
    });
    let mut rows = Vec::new();
    for (lines, (name, same)) in profiled {
        for line in lines {
            println!("{line}");
        }
        rows.push((
            name,
            same.mean_cycles,
            same.min_cycles,
            same.max_cycles,
            same.spread(),
        ));
    }
    println!("\nPaper property: worst-case cycle cost within 6.5% of the mean for every NF.");
    let worst_spread = rows.iter().map(|r| r.4).fold(0.0f64, f64::max);
    println!("Measured worst spread here: {:.1}%", worst_spread * 100.0);
    write_json("table4", &rows);
}
