//! §5.3 "Meta-compiler Benefits and Overhead": auto-generated code
//! accounting for chains {1, 2, 3, 4}.
//!
//! Paper: "more than a third of the total code (about 820 out of 1700
//! lines) is auto-generated, with most of the auto-generated code (600
//! lines) providing packet steering."

use lemur_bench::{build_problem, write_json};
use lemur_core::chains::CanonicalChain::*;
use lemur_placer::corealloc::CoreStrategy;
use lemur_placer::topology::Topology;

fn main() {
    let (p, _) = build_problem(&[Chain1, Chain2, Chain3, Chain4], 0.5, Topology::testbed());
    let a = lemur_placer::baselines::hw_preferred_assignment(&p);
    let e = p.evaluate(&a, CoreStrategy::WaterFill).expect("feasible");
    let dep = lemur_metacompiler::compile(&p, &e).expect("codegen");
    let s = dep.stats;
    println!("=== §5.3 meta-compiler code accounting, chains {{1,2,3,4}} ===\n");
    println!("  auto-generated P4 lines:        {:>6}", s.p4_generated);
    println!("    of which packet steering:     {:>6}", s.p4_steering);
    println!(
        "    of which NF logic:            {:>6}",
        s.p4_generated - s.p4_steering.min(s.p4_generated)
    );
    println!("  auto-generated BESS lines:      {:>6}", s.bess_generated);
    println!("  auto-generated eBPF insns:      {:>6}", s.ebpf_generated);
    println!("  hand-written NF library lines:  {:>6}", s.library_lines);
    println!(
        "  auto-generated fraction:        {:>5.1}%  (paper: ~30-35% of total, most of it steering)",
        s.generated_fraction() * 100.0
    );
    write_json("codegen_loc", &s);
}
