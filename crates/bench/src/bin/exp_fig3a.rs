//! Figure 3a: placement across multiple servers (§5.3).
//!
//! Chains {1, 2, 3} placed on (a) one 8-core server and (b) two 8-core
//! servers. At δ = 0.5 the single server delivers less than half the
//! 2-server aggregate; at δ = 1.5 the single-server case becomes
//! infeasible (Chain 3's Dedup/Limiter scaling exhausts its cores).

use lemur_bench::{print_rows, run_cell, write_json, Row, Scheme};
use lemur_core::chains::CanonicalChain::*;
use lemur_placer::topology::Topology;

fn main() {
    let chains = [Chain1, Chain2, Chain3];
    let oracle = lemur_bench::compiler_oracle();
    let mut rows: Vec<(usize, Row)> = Vec::new();
    for delta in [0.5, 1.0, 1.5] {
        for n_servers in [1usize, 2] {
            let row = run_cell(
                Scheme::Lemur,
                &chains,
                delta,
                Topology::with_servers(n_servers),
                &oracle,
                0.008,
            );
            rows.push((n_servers, row));
        }
    }
    println!("\n=== Figure 3a: Lemur on 1 vs 2 eight-core servers, chains {{1,2,3}} ===");
    for (n, r) in &rows {
        println!(
            "  servers={n} δ={:.1}: {}",
            r.delta,
            if r.feasible {
                format!(
                    "measured {:.2} G (predicted {:.2} G)",
                    r.measured_gbps, r.predicted_gbps
                )
            } else {
                "INFEASIBLE".to_string()
            }
        );
    }
    let flat: Vec<Row> = rows.iter().map(|(_, r)| r.clone()).collect();
    print_rows("Figure 3a rows", &flat);
    write_json(
        "fig3a",
        &rows.iter().map(|(n, r)| (n, r.clone())).collect::<Vec<_>>(),
    );
}
