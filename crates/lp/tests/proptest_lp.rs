//! Property-based tests for the simplex solver.

use lemur_lp::{Problem, Relation};
use proptest::prelude::*;

proptest! {
    /// Box LPs with non-negative objectives: the optimum is the upper-bound
    /// corner, objective = Σ c_i · u_i.
    #[test]
    fn box_lp_optimum_at_corner(
        bounds in prop::collection::vec((0.0f64..50.0, 0.0f64..100.0), 1..8),
    ) {
        let mut p = Problem::new();
        let mut expected = 0.0;
        let mut vars = Vec::new();
        for (i, (c, u)) in bounds.iter().enumerate() {
            let v = p.add_var(&format!("x{i}"), 0.0, *u, *c);
            expected += c * u;
            vars.push((v, *u));
        }
        let s = p.solve().unwrap();
        prop_assert!((s.objective - expected).abs() < 1e-6 * (1.0 + expected.abs()));
        for (v, u) in vars {
            prop_assert!((s.value(v) - u).abs() < 1e-6 * (1.0 + u.abs()));
        }
    }

    /// Any solution the solver returns must satisfy the constraints it was
    /// given (feasibility is checked independently of the tableau).
    #[test]
    fn solutions_are_feasible(
        n_vars in 1usize..5,
        rows in prop::collection::vec(
            (prop::collection::vec(-3.0f64..3.0, 5), 1.0f64..20.0), 0..6),
        objs in prop::collection::vec(-2.0f64..2.0, 5),
    ) {
        let mut p = Problem::new();
        let vars: Vec<_> = (0..n_vars)
            .map(|i| p.add_var(&format!("x{i}"), 0.0, 10.0, objs[i]))
            .collect();
        for (coeffs, rhs) in &rows {
            let terms: Vec<_> = vars.iter().zip(coeffs).map(|(&v, &c)| (v, c)).collect();
            // rhs > 0 with x=0 feasible ⇒ never infeasible, never unbounded
            // (all vars boxed).
            p.add_constraint(&terms, Relation::Le, *rhs);
        }
        let s = p.solve().unwrap();
        prop_assert!(p.is_feasible(s.values(), 1e-6));
        // Objective must be at least as good as the origin (always feasible).
        prop_assert!(s.objective >= -1e-6);
    }

    /// Relaxing a constraint can never decrease the optimum.
    #[test]
    fn monotonic_in_rhs(
        c1 in 0.1f64..5.0,
        c2 in 0.1f64..5.0,
        rhs in 1.0f64..20.0,
        slack in 0.0f64..10.0,
    ) {
        let build = |r: f64| {
            let mut p = Problem::new();
            let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
            let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
            p.add_constraint(&[(x, c1), (y, c2)], Relation::Le, r);
            p.solve().unwrap().objective
        };
        let tight = build(rhs);
        let loose = build(rhs + slack);
        prop_assert!(loose >= tight - 1e-7);
    }
}
