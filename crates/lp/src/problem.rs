//! LP problem construction API.

use crate::simplex;
use core::fmt;

/// Handle to a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// Errors a solve can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No feasible point satisfies all constraints and bounds.
    Infeasible,
    /// The objective can grow without bound.
    Unbounded,
    /// The simplex iteration limit was exceeded (numerical trouble).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub coeffs: Vec<(usize, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear program: maximize `c·x` subject to linear constraints and
/// per-variable bounds.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
}

/// A solution to an LP.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Optimal objective value.
    pub objective: f64,
    pub(crate) values: Vec<f64>,
}

impl Solution {
    /// Value of a variable at the optimum.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.0]
    }

    /// All variable values, indexed by creation order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Problem {
    /// An empty maximization problem.
    pub fn new() -> Problem {
        Problem::default()
    }

    /// Add a variable with bounds `[lower, upper]` and an objective
    /// coefficient. `upper` may be `f64::INFINITY`. `lower` must be finite
    /// (Placer LPs are rate allocations; every rate has a finite floor).
    pub fn add_var(&mut self, name: &str, lower: f64, upper: f64, objective: f64) -> Var {
        assert!(lower.is_finite(), "lower bound must be finite");
        assert!(
            upper >= lower,
            "upper bound {upper} below lower bound {lower} for {name}"
        );
        self.vars.push(VarDef {
            name: name.to_string(),
            lower,
            upper,
            objective,
        });
        Var(self.vars.len() - 1)
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of explicit constraints (bounds not included).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.vars[v.0].name
    }

    /// Add a linear constraint `sum(coeff * var) REL rhs`.
    ///
    /// Repeated variables in `terms` are summed.
    pub fn add_constraint(&mut self, terms: &[(Var, f64)], relation: Relation, rhs: f64) {
        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            if let Some(slot) = coeffs.iter_mut().find(|(i, _)| *i == v.0) {
                slot.1 += c;
            } else {
                coeffs.push((v.0, c));
            }
        }
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
    }

    /// Solve with the two-phase simplex method.
    pub fn solve(&self) -> Result<Solution, LpError> {
        simplex::solve(self)
    }

    /// Check that an assignment satisfies all constraints and bounds within
    /// `tol`. Useful for tests and for validating MILP incumbents.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (v, def) in values.iter().zip(&self.vars) {
            if *v < def.lower - tol || *v > def.upper + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.coeffs.iter().map(|&(i, co)| co * values[i]).sum();
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Evaluate the objective at an assignment.
    pub fn objective_at(&self, values: &[f64]) -> f64 {
        values
            .iter()
            .zip(&self.vars)
            .map(|(v, def)| v * def.objective)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_terms_are_summed() {
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, 10.0, 1.0);
        p.add_constraint(&[(x, 1.0), (x, 1.0)], Relation::Le, 10.0);
        let sol = p.solve().unwrap();
        assert!((sol.value(x) - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "upper bound")]
    fn inverted_bounds_panic() {
        let mut p = Problem::new();
        p.add_var("x", 1.0, 0.0, 1.0);
    }

    #[test]
    fn feasibility_check() {
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, 5.0, 1.0);
        let y = p.add_var("y", 0.0, 5.0, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 6.0);
        assert!(p.is_feasible(&[3.0, 3.0], 1e-9));
        assert!(!p.is_feasible(&[4.0, 3.0], 1e-9));
        assert!(!p.is_feasible(&[6.0, 0.0], 1e-9)); // bound violation
        assert!(!p.is_feasible(&[1.0], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_eval() {
        let mut p = Problem::new();
        let _x = p.add_var("x", 0.0, 5.0, 2.0);
        let _y = p.add_var("y", 0.0, 5.0, -1.0);
        assert_eq!(p.objective_at(&[2.0, 3.0]), 1.0);
    }
}
