//! Branch-and-bound mixed-integer layer over the simplex solver.
//!
//! The paper notes the placement problem "lends itself to an optimization
//! formulation... cast as an MILP" (§3.2); this module provides the MILP
//! oracle used by that formulation (core counts and placement indicators are
//! integral, rates are continuous).

use crate::problem::{LpError, Problem, Relation, Solution, Var};

/// A mixed-integer linear program: a [`Problem`] plus a set of variables
/// constrained to integer values.
#[derive(Debug, Clone, Default)]
pub struct MilpProblem {
    /// The LP relaxation.
    pub lp: Problem,
    integer_vars: Vec<Var>,
}

impl MilpProblem {
    /// An empty MILP.
    pub fn new() -> MilpProblem {
        MilpProblem::default()
    }

    /// Add a continuous variable.
    pub fn add_var(&mut self, name: &str, lower: f64, upper: f64, objective: f64) -> Var {
        self.lp.add_var(name, lower, upper, objective)
    }

    /// Add an integer variable.
    pub fn add_int_var(&mut self, name: &str, lower: f64, upper: f64, objective: f64) -> Var {
        let v = self.lp.add_var(name, lower, upper, objective);
        self.integer_vars.push(v);
        v
    }

    /// Add a binary (0/1) variable.
    pub fn add_bin_var(&mut self, name: &str, objective: f64) -> Var {
        self.add_int_var(name, 0.0, 1.0, objective)
    }

    /// Add a linear constraint.
    pub fn add_constraint(&mut self, terms: &[(Var, f64)], relation: Relation, rhs: f64) {
        self.lp.add_constraint(terms, relation, rhs);
    }

    /// Solve by branch and bound (best-first on the LP bound).
    ///
    /// Node limit guards against pathological instances; Placer MILPs are
    /// small, so hitting the limit indicates a modelling bug and is surfaced
    /// as [`LpError::IterationLimit`].
    pub fn solve(&self) -> Result<Solution, LpError> {
        const INT_TOL: f64 = 1e-6;
        const NODE_LIMIT: usize = 100_000;

        // Each node narrows bounds on integer variables.
        #[derive(Clone)]
        struct Node {
            bounds: Vec<(usize, f64, f64)>, // (var index, lower, upper)
        }

        let root = Node { bounds: Vec::new() };
        let mut stack = vec![root];
        let mut incumbent: Option<Solution> = None;
        let mut nodes = 0usize;

        while let Some(node) = stack.pop() {
            nodes += 1;
            if nodes > NODE_LIMIT {
                return Err(LpError::IterationLimit);
            }
            // Build the node LP: base problem with tightened bounds.
            let mut lp = self.lp.clone();
            let mut conflict = false;
            for &(vi, lo, hi) in &node.bounds {
                if lo > hi + 1e-12 {
                    conflict = true;
                    break;
                }
                lp.vars[vi].lower = lp.vars[vi].lower.max(lo);
                lp.vars[vi].upper = lp.vars[vi].upper.min(hi);
                if lp.vars[vi].lower > lp.vars[vi].upper {
                    conflict = true;
                    break;
                }
            }
            if conflict {
                continue;
            }
            let relax = match lp.solve() {
                Ok(s) => s,
                Err(LpError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            // Bound: prune if the relaxation can't beat the incumbent.
            if let Some(inc) = &incumbent {
                if relax.objective <= inc.objective + 1e-9 {
                    continue;
                }
            }
            // Find a fractional integer variable.
            let frac = self.integer_vars.iter().find_map(|&v| {
                let val = relax.value(v);
                let nearest = val.round();
                if (val - nearest).abs() > INT_TOL {
                    Some((v, val))
                } else {
                    None
                }
            });
            match frac {
                None => {
                    // Integral: snap and accept as incumbent.
                    let mut sol = relax;
                    for &v in &self.integer_vars {
                        sol.values[v.0] = sol.values[v.0].round();
                    }
                    sol.objective = self.lp.objective_at(sol.values());
                    let better = incumbent
                        .as_ref()
                        .map(|inc| sol.objective > inc.objective + 1e-9)
                        .unwrap_or(true);
                    if better && self.lp.is_feasible(sol.values(), 1e-6) {
                        incumbent = Some(sol);
                    }
                }
                Some((v, val)) => {
                    let floor = val.floor();
                    // Branch down: v <= floor.
                    let mut down = node.clone();
                    down.bounds.push((v.0, f64::NEG_INFINITY, floor));
                    // Branch up: v >= floor + 1.
                    let mut up = node;
                    up.bounds.push((v.0, floor + 1.0, f64::INFINITY));
                    stack.push(down);
                    stack.push(up);
                }
            }
        }
        incumbent.ok_or(LpError::Infeasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary → a=0? Evaluate:
        // {a,c}: 17 weight 5; {b,c}: 20 weight 6; {a,b}: 23 weight 7 no.
        let mut m = MilpProblem::new();
        let a = m.add_bin_var("a", 10.0);
        let b = m.add_bin_var("b", 13.0);
        let c = m.add_bin_var("c", 7.0);
        m.add_constraint(&[(a, 3.0), (b, 4.0), (c, 2.0)], Relation::Le, 6.0);
        let s = m.solve().unwrap();
        approx(s.objective, 20.0);
        approx(s.value(b), 1.0);
        approx(s.value(c), 1.0);
        approx(s.value(a), 0.0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x s.t. 2x <= 7, x integer → 3 (LP relaxation gives 3.5).
        let mut m = MilpProblem::new();
        let x = m.add_int_var("x", 0.0, 100.0, 1.0);
        m.add_constraint(&[(x, 2.0)], Relation::Le, 7.0);
        let s = m.solve().unwrap();
        approx(s.value(x), 3.0);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2k + r, k integer cores <= 4, rate r <= 3k (per-core capacity),
        // r <= 10. Optimal: k=4, r=10 → 18.
        let mut m = MilpProblem::new();
        let k = m.add_int_var("k", 0.0, 4.0, 2.0);
        let r = m.add_var("r", 0.0, 10.0, 1.0);
        m.add_constraint(&[(r, 1.0), (k, -3.0)], Relation::Le, 0.0);
        let s = m.solve().unwrap();
        approx(s.value(k), 4.0);
        approx(s.value(r), 10.0);
        approx(s.objective, 18.0);
    }

    #[test]
    fn infeasible_milp() {
        // x binary, x >= 0.4, x <= 0.6 — no integer point.
        let mut m = MilpProblem::new();
        let x = m.add_bin_var("x", 1.0);
        m.add_constraint(&[(x, 1.0)], Relation::Ge, 0.4);
        m.add_constraint(&[(x, 1.0)], Relation::Le, 0.6);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn core_allocation_shape() {
        // Mini placement MILP: two subgroups with per-core rates 5 and 2,
        // total cores 6, chain rate = min of subgroup rates modeled via
        // r <= 5·k1, r <= 2·k2; maximize r. Optimal: k1=2, k2=4 → r=8.
        let mut m = MilpProblem::new();
        let k1 = m.add_int_var("k1", 1.0, 6.0, 0.0);
        let k2 = m.add_int_var("k2", 1.0, 6.0, 0.0);
        let r = m.add_var("r", 0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(k1, 1.0), (k2, 1.0)], Relation::Le, 6.0);
        m.add_constraint(&[(r, 1.0), (k1, -5.0)], Relation::Le, 0.0);
        m.add_constraint(&[(r, 1.0), (k2, -2.0)], Relation::Le, 0.0);
        let s = m.solve().unwrap();
        approx(s.objective, 8.0);
        approx(s.value(k1), 2.0);
        approx(s.value(k2), 4.0);
    }

    #[test]
    fn pure_lp_passthrough() {
        // No integer vars: identical to plain simplex.
        let mut m = MilpProblem::new();
        let x = m.add_var("x", 0.0, 4.0, 1.0);
        let s = m.solve().unwrap();
        approx(s.value(x), 4.0);
    }
}
