//! # lemur-lp
//!
//! A small, dependency-free linear-programming toolkit: a dense two-phase
//! simplex solver and a branch-and-bound MILP layer.
//!
//! Lemur's Placer uses linear programs in two places (paper §3.2):
//!
//! * the *marginal throughput LP*: given a placement pattern and core
//!   allocation, choose per-chain rates that maximize aggregate marginal
//!   throughput subject to SLO minimums/maximums, per-subgroup capacity, and
//!   link capacity constraints;
//! * the *MILP formulation* the paper contrasts with ("we cast the placement
//!   problem as an MILP, but for one key component..."), which we also ship
//!   so the brute-force/optimal comparison can be reproduced end to end.
//!
//! The solver is deliberately simple — dense tableau, Bland's rule fallback
//! for anti-cycling — because Placer LPs have tens of variables, not
//! thousands.
//!
//! ```
//! use lemur_lp::{Problem, Relation};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x,y >= 0
//! let mut p = Problem::new();
//! let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
//! let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
//! p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
//! let sol = p.solve().unwrap();
//! assert!((sol.objective - 12.0).abs() < 1e-6);
//! assert!((sol.value(x) - 4.0).abs() < 1e-6);
//! ```

pub mod milp;
pub mod problem;
pub mod simplex;

pub use milp::MilpProblem;
pub use problem::{LpError, Problem, Relation, Solution, Var};
