//! Dense two-phase simplex.
//!
//! The implementation follows the textbook tableau method:
//!
//! 1. shift every variable by its lower bound so all variables are `>= 0`,
//!    turning finite upper bounds into extra `<=` rows;
//! 2. normalize rows to non-negative right-hand sides;
//! 3. phase 1 maximizes `-Σ artificials` to find a basic feasible solution;
//! 4. phase 2 maximizes the real objective.
//!
//! Dantzig pricing is used until an iteration threshold, after which the
//! solver switches to Bland's rule, which guarantees termination.

use crate::problem::{LpError, Problem, Relation, Solution};

const EPS: f64 = 1e-9;
const MAX_ITER: usize = 50_000;

struct Tableau {
    /// `rows × cols` coefficient matrix; the last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Objective row (same width); coefficients stored as `-c_j`, RHS holds
    /// the current objective value.
    obj: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    rows: usize,
    cols: usize,
}

impl Tableau {
    fn rhs(&self, r: usize) -> f64 {
        self.a[r][self.cols]
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        for r in 0..self.rows {
            if r != row {
                let factor = self.a[r][col];
                if factor.abs() > EPS {
                    for c in 0..=self.cols {
                        self.a[r][c] -= factor * self.a[row][c];
                    }
                }
            }
        }
        let factor = self.obj[col];
        if factor.abs() > EPS {
            for c in 0..=self.cols {
                self.obj[c] -= factor * self.a[row][c];
            }
        }
        self.basis[row] = col;
    }

    /// Run simplex iterations until optimal, unbounded, or iteration limit.
    /// `allowed` marks columns eligible to enter the basis.
    fn iterate(&mut self, allowed: &[bool]) -> Result<(), LpError> {
        let bland_after = 20 * (self.rows + self.cols);
        for iter in 0..MAX_ITER {
            let use_bland = iter > bland_after;
            // Entering column: most negative objective coefficient
            // (Dantzig), or the first negative one (Bland).
            let mut entering = None;
            let mut best = -EPS;
            for (c, &ok) in allowed.iter().enumerate().take(self.cols) {
                if !ok {
                    continue;
                }
                let v = self.obj[c];
                if v < best {
                    entering = Some(c);
                    if use_bland {
                        break;
                    }
                    best = v;
                }
            }
            let Some(col) = entering else {
                return Ok(()); // optimal
            };
            // Leaving row: minimum ratio test; ties broken by smaller basic
            // index for anti-cycling.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let coef = self.a[r][col];
                if coef > EPS {
                    let ratio = self.rhs(r) / coef;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leaving.is_some_and(|l| self.basis[r] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leaving = Some(r);
                    }
                }
            }
            let Some(row) = leaving else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
        Err(LpError::IterationLimit)
    }
}

/// Solve `p` with two-phase simplex.
pub fn solve(p: &Problem) -> Result<Solution, LpError> {
    let n = p.vars.len();

    // Shifted objective constant: c·lower.
    let obj_offset: f64 = p.vars.iter().map(|v| v.objective * v.lower).sum();

    // Collect all rows: user constraints with shifted RHS, plus upper-bound
    // rows for finite upper bounds.
    struct Row {
        coeffs: Vec<(usize, f64)>,
        relation: Relation,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for c in &p.constraints {
        let shift: f64 = c.coeffs.iter().map(|&(i, co)| co * p.vars[i].lower).sum();
        rows.push(Row {
            coeffs: c.coeffs.clone(),
            relation: c.relation,
            rhs: c.rhs - shift,
        });
    }
    for (i, v) in p.vars.iter().enumerate() {
        if v.upper.is_finite() {
            rows.push(Row {
                coeffs: vec![(i, 1.0)],
                relation: Relation::Le,
                rhs: v.upper - v.lower,
            });
        }
    }

    // Normalize RHS >= 0.
    for row in rows.iter_mut() {
        if row.rhs < 0.0 {
            for (_, co) in row.coeffs.iter_mut() {
                *co = -*co;
            }
            row.rhs = -row.rhs;
            row.relation = match row.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: [structural n][slack/surplus][artificial], then RHS.
    let num_slack = rows
        .iter()
        .filter(|r| matches!(r.relation, Relation::Le | Relation::Ge))
        .count();
    let num_art = rows
        .iter()
        .filter(|r| matches!(r.relation, Relation::Ge | Relation::Eq))
        .count();
    let cols = n + num_slack + num_art;

    let mut a = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n;
    let mut art_idx = n + num_slack;
    let art_start = n + num_slack;

    for (r, row) in rows.iter().enumerate() {
        for &(i, co) in &row.coeffs {
            a[r][i] += co;
        }
        a[r][cols] = row.rhs;
        match row.relation {
            Relation::Le => {
                a[r][slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                a[r][slack_idx] = -1.0;
                slack_idx += 1;
                a[r][art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
            Relation::Eq => {
                a[r][art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
        }
    }

    let mut t = Tableau {
        a,
        obj: vec![0.0; cols + 1],
        basis,
        rows: m,
        cols,
    };

    // ---- Phase 1: maximize -Σ artificials. Row stores -c ⇒ +1 on
    // artificial columns; price out the artificial basics.
    if num_art > 0 {
        for c in art_start..cols {
            t.obj[c] = 1.0;
        }
        for r in 0..m {
            if t.basis[r] >= art_start {
                for c in 0..=cols {
                    let v = t.a[r][c];
                    t.obj[c] -= v;
                }
            }
        }
        let allowed = vec![true; cols];
        t.iterate(&allowed)?;
        // Optimum of -Σ artificials is stored in the RHS of the obj row.
        if t.obj[cols] < -1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive any residual basic artificials out of the basis.
        for r in 0..m {
            if t.basis[r] >= art_start {
                if let Some(c) = (0..art_start).find(|&c| t.a[r][c].abs() > EPS) {
                    t.pivot(r, c);
                }
                // If no pivot column exists the row is redundant (all-zero);
                // leaving the artificial basic at value 0 is harmless.
            }
        }
    }

    // ---- Phase 2: real objective. Disallow artificial columns.
    let mut allowed = vec![true; cols];
    for slot in allowed.iter_mut().take(cols).skip(art_start) {
        *slot = false;
    }
    for v in t.obj.iter_mut() {
        *v = 0.0;
    }
    for (i, v) in p.vars.iter().enumerate() {
        t.obj[i] = -v.objective;
    }
    // Price out basic variables.
    for r in 0..m {
        let b = t.basis[r];
        if b < cols {
            let factor = t.obj[b];
            if factor.abs() > EPS {
                for c in 0..=cols {
                    t.obj[c] -= factor * t.a[r][c];
                }
            }
        }
    }
    t.iterate(&allowed)?;

    // Extract structural values (shift back by lower bounds).
    let mut values = vec![0.0; n];
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            values[b] = t.rhs(r);
        }
    }
    for (val, def) in values.iter_mut().zip(&p.vars) {
        *val += def.lower;
        // Clean tiny negative noise.
        if (*val - def.lower).abs() < 1e-9 {
            *val = def.lower;
        }
    }
    let objective = t.obj[cols] + obj_offset;
    Ok(Solution { objective, values })
}

#[cfg(test)]
mod tests {
    use crate::{LpError, Problem, Relation};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 → (2, 6), obj 36.
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = p.solve().unwrap();
        approx(s.objective, 36.0);
        approx(s.value(x), 2.0);
        approx(s.value(y), 6.0);
    }

    #[test]
    fn ge_and_eq_constraints() {
        // max x + y s.t. x + y <= 10; x >= 2; y == 3 → x=7, obj 10.
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 10.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        p.add_constraint(&[(y, 1.0)], Relation::Eq, 3.0);
        let s = p.solve().unwrap();
        approx(s.objective, 10.0);
        approx(s.value(x), 7.0);
        approx(s.value(y), 3.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn infeasible_bounds() {
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        let y = p.add_var("y", 0.0, 1.0, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 0.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn lower_bounds_shift() {
        // max -x s.t. x >= 5 (bound) → x = 5, obj -5.
        let mut p = Problem::new();
        let x = p.add_var("x", 5.0, f64::INFINITY, -1.0);
        let s = p.solve().unwrap();
        approx(s.objective, -5.0);
        approx(s.value(x), 5.0);
    }

    #[test]
    fn negative_rhs_normalization() {
        // max x s.t. -x <= -2 (i.e. x >= 2), x <= 6.
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, 6.0, 1.0);
        p.add_constraint(&[(x, -1.0)], Relation::Le, -2.0);
        let s = p.solve().unwrap();
        approx(s.objective, 6.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the origin.
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, f64::INFINITY, 0.75);
        let y = p.add_var("y", 0.0, f64::INFINITY, -150.0);
        let z = p.add_var("z", 0.0, f64::INFINITY, 0.02);
        let w = p.add_var("w", 0.0, f64::INFINITY, -6.0);
        p.add_constraint(
            &[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            &[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(&[(z, 1.0)], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        approx(s.objective, 0.05); // known optimum of Beale's example
    }

    #[test]
    fn equality_only_system() {
        // max x + 2y s.t. x + y == 4, x - y == 0 → x=y=2, obj 6.
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 4.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 0.0);
        let s = p.solve().unwrap();
        approx(s.value(x), 2.0);
        approx(s.value(y), 2.0);
        approx(s.objective, 6.0);
    }

    #[test]
    fn redundant_equalities_ok() {
        let mut p = Problem::new();
        let x = p.add_var("x", 0.0, 10.0, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Eq, 3.0);
        p.add_constraint(&[(x, 2.0)], Relation::Eq, 6.0); // redundant
        let s = p.solve().unwrap();
        approx(s.value(x), 3.0);
    }

    #[test]
    fn marginal_throughput_shape() {
        // A miniature of the Placer LP: two chains, rates r1, r2 with
        // t_min/t_max bounds, shared link capacity; maximize marginal
        // throughput Σ(r_i - t_min_i) ≡ max Σ r_i.
        let mut p = Problem::new();
        let r1 = p.add_var("r1", 2.0, 8.0, 1.0); // t_min=2, t_max=8
        let r2 = p.add_var("r2", 3.0, 10.0, 1.0); // t_min=3, t_max=10
                                                  // Subgroup capacity: r1 <= 6 (from a 1-core allocation).
        p.add_constraint(&[(r1, 1.0)], Relation::Le, 6.0);
        // Chain 1 bounces twice over the 12-unit link; chain 2 once.
        p.add_constraint(&[(r1, 2.0), (r2, 1.0)], Relation::Le, 12.0);
        let s = p.solve().unwrap();
        // r2 takes as much as possible (10), then r1 gets (12-10)/2 = 1 < 2?
        // No: r1 >= 2 forces 2·2=4, leaving 8 for r2. obj = 2 + 8 = 10.
        approx(s.value(r1), 2.0);
        approx(s.value(r2), 8.0);
        approx(s.objective, 10.0);
    }

    #[test]
    fn solution_is_feasible_for_problem() {
        let mut p = Problem::new();
        let x = p.add_var("x", 1.0, 4.0, 2.0);
        let y = p.add_var("y", 0.0, 9.0, 1.0);
        p.add_constraint(&[(x, 3.0), (y, 1.0)], Relation::Le, 12.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 2.0);
        let s = p.solve().unwrap();
        assert!(p.is_feasible(s.values(), 1e-6));
    }
}
