//! Programs and a builder used by the meta-compiler's code generator.

use crate::insn::{AluOp, Insn, JmpCond, Operand, Reg};
use crate::verifier::{verify, VerifierError};
use core::fmt;

/// Why label resolution failed in [`ProgramBuilder::try_build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// A jump references a label that was never bound.
    UnboundLabel(usize),
    /// A bound label sits at or before the jump that targets it.
    BackwardJump { at: usize, target: usize },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "unbound label {l}"),
            BuildError::BackwardJump { at, target } => {
                write!(f, "backward jump from {at} to {target} (loop?)")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A verified-or-not sequence of instructions.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub insns: Vec<Insn>,
    /// Human-readable name for diagnostics and generated-code accounting.
    pub name: String,
}

impl Program {
    /// Wrap raw instructions.
    pub fn new(name: &str, insns: Vec<Insn>) -> Program {
        Program {
            insns: insns.to_vec(),
            name: name.to_string(),
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Run the verifier.
    pub fn verify(&self) -> Result<(), VerifierError> {
        verify(self)
    }

    /// Assembly-like listing (one instruction per line), used when counting
    /// auto-generated lines of code.
    pub fn disassemble(&self) -> String {
        self.insns
            .iter()
            .enumerate()
            .map(|(i, insn)| format!("{i:4}: {insn}\n"))
            .collect()
    }
}

/// A small assembler with labels, so generated code can use forward jumps
/// without manual offset arithmetic. Loops are impossible to express:
/// a label must be *declared after* every jump that targets it.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insns: Vec<Insn>,
    /// (insn index, label id) of jumps awaiting resolution.
    fixups: Vec<(usize, usize)>,
    /// label id → resolved pc.
    labels: Vec<Option<usize>>,
    name: String,
}

/// A forward-jump label handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

impl ProgramBuilder {
    /// Start a program.
    pub fn new(name: &str) -> ProgramBuilder {
        ProgramBuilder {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Reserve a label to be bound later with [`ProgramBuilder::bind`].
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind a label to the current position.
    pub fn bind(&mut self, l: Label) -> &mut Self {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.insns.len());
        self
    }

    /// `dst = imm`
    pub fn load_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.insns.push(Insn::LoadImm { dst, imm });
        self
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.insns.push(Insn::Mov {
            dst,
            src: Operand::Reg(src),
        });
        self
    }

    /// `dst = dst OP src_reg`
    pub fn alu(&mut self, op: AluOp, dst: Reg, src: Reg) -> &mut Self {
        self.insns.push(Insn::Alu {
            op,
            dst,
            src: Operand::Reg(src),
        });
        self
    }

    /// `dst = dst OP imm`
    pub fn alu_imm(&mut self, op: AluOp, dst: Reg, imm: i64) -> &mut Self {
        self.insns.push(Insn::Alu {
            op,
            dst,
            src: Operand::Imm(imm),
        });
        self
    }

    /// `dst = pkt[offset..offset+size]`
    pub fn load_pkt(&mut self, dst: Reg, offset: u16, size: u8) -> &mut Self {
        self.insns.push(Insn::LoadPkt {
            dst,
            base: None,
            offset,
            size,
        });
        self
    }

    /// `dst = pkt[base+offset..+size]`
    pub fn load_pkt_ind(&mut self, dst: Reg, base: Reg, offset: u16, size: u8) -> &mut Self {
        self.insns.push(Insn::LoadPkt {
            dst,
            base: Some(base),
            offset,
            size,
        });
        self
    }

    /// `pkt[offset..+size] = src`
    pub fn store_pkt(&mut self, src: Reg, offset: u16, size: u8) -> &mut Self {
        self.insns.push(Insn::StorePkt {
            src,
            base: None,
            offset,
            size,
        });
        self
    }

    /// `pkt[base+offset..+size] = src`
    pub fn store_pkt_ind(&mut self, src: Reg, base: Reg, offset: u16, size: u8) -> &mut Self {
        self.insns.push(Insn::StorePkt {
            src,
            base: Some(base),
            offset,
            size,
        });
        self
    }

    /// `dst = stack[offset..+size]`
    pub fn load_stack(&mut self, dst: Reg, offset: u16, size: u8) -> &mut Self {
        self.insns.push(Insn::LoadStack { dst, offset, size });
        self
    }

    /// `stack[offset..+size] = src`
    pub fn store_stack(&mut self, src: Reg, offset: u16, size: u8) -> &mut Self {
        self.insns.push(Insn::StoreStack { src, offset, size });
        self
    }

    /// `if dst COND imm goto label` (forward only).
    pub fn jmp_imm(&mut self, cond: JmpCond, dst: Reg, imm: i64, target: Label) -> &mut Self {
        self.fixups.push((self.insns.len(), target.0));
        self.insns.push(Insn::Jmp {
            cond,
            dst,
            src: Operand::Imm(imm),
            off: 0,
        });
        self
    }

    /// `if dst COND src goto label` (forward only).
    pub fn jmp_reg(&mut self, cond: JmpCond, dst: Reg, src: Reg, target: Label) -> &mut Self {
        self.fixups.push((self.insns.len(), target.0));
        self.insns.push(Insn::Jmp {
            cond,
            dst,
            src: Operand::Reg(src),
            off: 0,
        });
        self
    }

    /// `goto label`
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.jmp_imm(JmpCond::Always, Reg::R0, 0, target)
    }

    /// `exit`
    pub fn exit(&mut self) -> &mut Self {
        self.insns.push(Insn::Exit);
        self
    }

    /// Resolve labels and produce the program. Panics on an unbound label or
    /// a backward jump — both are code-generator bugs, not runtime inputs.
    /// Untrusted/generated assembly goes through [`ProgramBuilder::try_build`].
    pub fn build(self) -> Program {
        match self.try_build() {
            Ok(p) => p,
            Err(BuildError::UnboundLabel(_)) => panic!("unbound label"),
            Err(BuildError::BackwardJump { .. }) => panic!("backward jump generated (loop?)"),
        }
    }

    /// Resolve labels and produce the program, surfacing label bugs as
    /// typed errors instead of panics.
    pub fn try_build(mut self) -> Result<Program, BuildError> {
        for (at, label) in &self.fixups {
            let target = self.labels[*label].ok_or(BuildError::UnboundLabel(*label))?;
            if target <= *at {
                return Err(BuildError::BackwardJump { at: *at, target });
            }
            let off = (target - *at - 1) as u16;
            if let Insn::Jmp { off: o, .. } = &mut self.insns[*at] {
                *o = off;
            }
        }
        Ok(Program {
            insns: self.insns,
            name: self.name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Vm, XdpVerdict};

    #[test]
    fn builder_resolves_forward_jumps() {
        let mut b = ProgramBuilder::new("t");
        let done = b.label();
        b.load_imm(Reg::R0, XdpVerdict::Pass as i64)
            .load_pkt(Reg::R2, 12, 2)
            .jmp_imm(JmpCond::Eq, Reg::R2, 0x0800, done)
            .load_imm(Reg::R0, XdpVerdict::Drop as i64)
            .bind(done)
            .exit();
        let p = b.build();
        p.verify().unwrap();
        // IPv4 ethertype at offset 12 → Pass.
        let mut frame = vec![0u8; 64];
        frame[12] = 0x08;
        let out = Vm::run(&p, &mut frame).unwrap();
        assert_eq!(out.verdict, XdpVerdict::Pass);
        // Non-IPv4 → Drop.
        let mut arp = vec![0u8; 64];
        arp[12] = 0x08;
        arp[13] = 0x06;
        let out = Vm::run(&p, &mut arp).unwrap();
        assert_eq!(out.verdict, XdpVerdict::Drop);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.jmp(l).exit();
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "backward jump")]
    fn backward_label_panics() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.bind(l);
        b.load_imm(Reg::R0, 0);
        // Jump to an already-bound (earlier) label — a loop.
        b.jmp(l).exit();
        let _ = b.build();
    }

    #[test]
    fn try_build_returns_typed_errors() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.jmp(l).exit();
        assert!(matches!(b.try_build(), Err(BuildError::UnboundLabel(0))));

        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.bind(l);
        b.load_imm(Reg::R0, 0);
        b.jmp(l).exit();
        assert!(matches!(
            b.try_build(),
            Err(BuildError::BackwardJump { at: 1, target: 0 })
        ));

        let mut b = ProgramBuilder::new("t");
        b.load_imm(Reg::R0, 2).exit();
        assert!(b.try_build().is_ok());
    }

    #[test]
    fn disassembly_lists_all_insns() {
        let mut b = ProgramBuilder::new("d");
        b.load_imm(Reg::R0, 2).exit();
        let p = b.build();
        let d = p.disassemble();
        assert_eq!(d.lines().count(), 2);
        assert!(d.contains("r0 = 2"));
        assert!(d.contains("exit"));
    }
}
