//! Instruction set of the SmartNIC VM.
//!
//! A register machine in the shape of eBPF: eleven 64-bit registers, a
//! byte-addressed stack, direct packet access with explicit widths, and
//! forward-only conditional jumps.

use core::fmt;

/// Register names. `R0` carries the return value (XDP verdict); `R1` holds
/// the packet length at entry; `R10` is the (read-only) stack base in real
/// eBPF — here the stack is addressed by immediate offsets instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
}

impl Reg {
    /// All registers, for the verifier and tests.
    pub const ALL: [Reg; 10] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
    ];

    /// Index into the register file.
    pub fn idx(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.idx())
    }
}

/// ALU operations (64-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Lsh,
    Rsh,
}

impl AluOp {
    /// Apply the operation. Division/modulo by zero yields 0, matching
    /// eBPF's defined semantics.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => a.checked_div(b).unwrap_or(0),
            AluOp::Mod => a.checked_rem(b).unwrap_or(0),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Lsh => a.wrapping_shl((b & 63) as u32),
            AluOp::Rsh => a.wrapping_shr((b & 63) as u32),
        }
    }
}

/// Jump conditions. All jumps are *forward-only*; the verifier rejects
/// back-edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JmpCond {
    Always,
    Eq,
    Ne,
    Gt,
    Ge,
    Lt,
    Le,
}

impl JmpCond {
    /// Evaluate the condition.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            JmpCond::Always => true,
            JmpCond::Eq => a == b,
            JmpCond::Ne => a != b,
            JmpCond::Gt => a > b,
            JmpCond::Ge => a >= b,
            JmpCond::Lt => a < b,
            JmpCond::Le => a <= b,
        }
    }
}

/// Second operand of ALU/jump instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    Reg(Reg),
    Imm(i64),
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `dst = imm`
    LoadImm { dst: Reg, imm: i64 },
    /// `dst = src`
    Mov { dst: Reg, src: Operand },
    /// `dst = dst OP src`
    Alu { op: AluOp, dst: Reg, src: Operand },
    /// `dst = packet[base? + offset .. +size]` big-endian; `size` ∈ {1,2,4,8}.
    LoadPkt {
        dst: Reg,
        base: Option<Reg>,
        offset: u16,
        size: u8,
    },
    /// `packet[base? + offset .. +size] = src` big-endian.
    StorePkt {
        src: Reg,
        base: Option<Reg>,
        offset: u16,
        size: u8,
    },
    /// `dst = stack[offset .. +size]` big-endian.
    LoadStack { dst: Reg, offset: u16, size: u8 },
    /// `stack[offset .. +size] = src` big-endian.
    StoreStack { src: Reg, offset: u16, size: u8 },
    /// Conditional forward jump: `if dst COND src goto pc+off+1`.
    Jmp {
        cond: JmpCond,
        dst: Reg,
        src: Operand,
        off: u16,
    },
    /// Function call — always rejected by the verifier on the SmartNIC
    /// target (kept in the ISA so the rejection path is testable).
    Call { func: u32 },
    /// Return `r0` as the verdict.
    Exit,
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn op(o: &Operand) -> String {
            match o {
                Operand::Reg(r) => r.to_string(),
                Operand::Imm(i) => i.to_string(),
            }
        }
        match self {
            Insn::LoadImm { dst, imm } => write!(f, "{dst} = {imm}"),
            Insn::Mov { dst, src } => write!(f, "{dst} = {}", op(src)),
            Insn::Alu { op: o, dst, src } => write!(f, "{dst} {o:?}= {}", op(src)),
            Insn::LoadPkt {
                dst,
                base,
                offset,
                size,
            } => match base {
                Some(b) => write!(f, "{dst} = pkt[{b}+{offset}:{size}]"),
                None => write!(f, "{dst} = pkt[{offset}:{size}]"),
            },
            Insn::StorePkt {
                src,
                base,
                offset,
                size,
            } => match base {
                Some(b) => write!(f, "pkt[{b}+{offset}:{size}] = {src}"),
                None => write!(f, "pkt[{offset}:{size}] = {src}"),
            },
            Insn::LoadStack { dst, offset, size } => write!(f, "{dst} = stack[{offset}:{size}]"),
            Insn::StoreStack { src, offset, size } => write!(f, "stack[{offset}:{size}] = {src}"),
            Insn::Jmp {
                cond,
                dst,
                src,
                off,
            } => {
                write!(f, "if {dst} {cond:?} {} goto +{off}", op(src))
            }
            Insn::Call { func } => write!(f, "call #{func}"),
            Insn::Exit => write!(f, "exit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0); // wrapping
        assert_eq!(AluOp::Div.apply(10, 3), 3);
        assert_eq!(AluOp::Div.apply(10, 0), 0); // defined
        assert_eq!(AluOp::Mod.apply(10, 0), 0);
        assert_eq!(AluOp::Lsh.apply(1, 65), 2); // shift masked to 6 bits
        assert_eq!(AluOp::Xor.apply(0xff, 0x0f), 0xf0);
    }

    #[test]
    fn jump_conditions() {
        assert!(JmpCond::Always.eval(0, 1));
        assert!(JmpCond::Eq.eval(3, 3));
        assert!(JmpCond::Ne.eval(3, 4));
        assert!(JmpCond::Gt.eval(4, 3));
        assert!(!JmpCond::Lt.eval(4, 3));
        assert!(JmpCond::Ge.eval(3, 3));
        assert!(JmpCond::Le.eval(3, 3));
    }

    #[test]
    fn display_is_readable() {
        let i = Insn::LoadPkt {
            dst: Reg::R2,
            base: None,
            offset: 12,
            size: 2,
        };
        assert_eq!(i.to_string(), "r2 = pkt[12:2]");
        let j = Insn::Jmp {
            cond: JmpCond::Ne,
            dst: Reg::R2,
            src: Operand::Imm(0x0800),
            off: 3,
        };
        assert_eq!(j.to_string(), "if r2 Ne 2048 goto +3");
    }

    #[test]
    fn register_indices_dense() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.idx(), i);
        }
    }
}
