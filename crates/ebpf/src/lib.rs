//! # lemur-ebpf
//!
//! An eBPF-style virtual machine standing in for the Netronome Agilio
//! SmartNIC of the paper's testbed (§A.3).
//!
//! The paper documents the constraints that shaped Lemur's SmartNIC code
//! generation, and this VM's [`verifier`] enforces exactly those:
//!
//! * only 512 bytes of stack;
//! * a bounded instruction count (4096);
//! * no function calls;
//! * no back-edge jumps (`for`/`while` loops must be unrolled).
//!
//! The meta-compiler "solved these challenges by … using loop unrolling to
//! avoid for (back-edge), and inlining all function calls" — generated
//! programs that violate the rules are rejected here just as the real
//! verifier would reject them at load time.
//!
//! [`interp`] executes verified programs over packet buffers with full
//! bounds checking, returning XDP-style verdicts, and counts executed
//! instructions so the dataplane can charge processing cost.

pub mod insn;
pub mod interp;
pub mod program;
pub mod verifier;

pub use insn::{AluOp, Insn, JmpCond, Reg};
pub use interp::{ExecError, ExecResult, Vm, XdpVerdict};
pub use program::{BuildError, Program, ProgramBuilder};
pub use verifier::{verify, VerifierError};

/// Stack size available to a program (bytes).
pub const STACK_SIZE: usize = 512;
/// Maximum number of instructions a program may load.
pub const MAX_INSNS: usize = 4096;
/// Per-run instruction budget (straight-line programs cannot loop, so this
/// only guards against pathological unrolled code).
pub const MAX_STEPS: usize = 1 << 20;
