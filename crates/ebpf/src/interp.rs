//! The interpreter: executes verified programs over packet buffers.

use crate::insn::{Insn, Operand, Reg};
use crate::program::Program;
use crate::{MAX_STEPS, STACK_SIZE};
use core::fmt;

/// XDP-style verdicts carried in `r0` at exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XdpVerdict {
    Aborted = 0,
    Drop = 1,
    Pass = 2,
    Tx = 3,
    Redirect = 4,
}

impl XdpVerdict {
    /// Decode from the `r0` value; unknown codes abort, as XDP does.
    pub fn from_r0(v: u64) -> XdpVerdict {
        match v {
            1 => XdpVerdict::Drop,
            2 => XdpVerdict::Pass,
            3 => XdpVerdict::Tx,
            4 => XdpVerdict::Redirect,
            _ => XdpVerdict::Aborted,
        }
    }
}

/// Runtime execution errors (all map to an aborted packet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A packet access was out of bounds for this packet.
    PacketOutOfBounds {
        pc: usize,
        offset: usize,
        len: usize,
    },
    /// A stack access was out of bounds (unverified programs only — the
    /// verifier rejects these statically).
    StackOutOfBounds { pc: usize, offset: usize },
    /// A memory access wider than 8 bytes (unverified programs only).
    BadAccessSize { pc: usize, size: u8 },
    /// The instruction budget was exhausted.
    StepLimit,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PacketOutOfBounds { pc, offset, len } => {
                write!(
                    f,
                    "packet access at pc {pc}: offset {offset} beyond {len}-byte packet"
                )
            }
            ExecError::StackOutOfBounds { pc, offset } => {
                write!(
                    f,
                    "stack access at pc {pc}: offset {offset} beyond {STACK_SIZE}-byte stack"
                )
            }
            ExecError::BadAccessSize { pc, size } => {
                write!(f, "memory access at pc {pc} has invalid size {size}")
            }
            ExecError::StepLimit => write!(f, "instruction budget exceeded"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Checked `[off, end)` for a `base + offset .. + size` access against
/// `limit`. `u128` arithmetic so a register holding `u64::MAX` cannot wrap
/// the bound check; the returned end saturates to `usize::MAX` on error so
/// the diagnostics stay meaningful.
fn checked_range(base: u64, offset: u16, size: u8, limit: usize) -> Result<(usize, usize), usize> {
    let off = base as u128 + offset as u128;
    let end = off + size as u128;
    if end <= limit as u128 {
        Ok((off as usize, end as usize))
    } else {
        Err(end.min(usize::MAX as u128) as usize)
    }
}

/// Result of a successful run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecResult {
    pub verdict: XdpVerdict,
    /// Instructions executed — the dataplane's cost signal for SmartNIC NFs.
    pub steps: u64,
}

/// The VM. Stateless between packets; all state is per-run.
pub struct Vm;

impl Vm {
    /// Execute `program` over `packet`. The packet length is preloaded into
    /// `r1`. The program must already have passed the verifier; running an
    /// unverified program is memory-safe but may abort.
    pub fn run(program: &Program, packet: &mut [u8]) -> Result<ExecResult, ExecError> {
        let mut regs = [0u64; 10];
        regs[Reg::R1.idx()] = packet.len() as u64;
        let mut stack = [0u8; STACK_SIZE];
        let mut pc = 0usize;
        let mut steps = 0u64;

        loop {
            if steps as usize >= MAX_STEPS {
                return Err(ExecError::StepLimit);
            }
            let Some(insn) = program.insns.get(pc) else {
                // Falling off the end: verifier prevents this; treat as abort.
                return Ok(ExecResult {
                    verdict: XdpVerdict::Aborted,
                    steps,
                });
            };
            steps += 1;
            let operand = |o: &Operand, regs: &[u64; 10]| match o {
                Operand::Reg(r) => regs[r.idx()],
                Operand::Imm(i) => *i as u64,
            };
            match insn {
                Insn::LoadImm { dst, imm } => regs[dst.idx()] = *imm as u64,
                Insn::Mov { dst, src } => regs[dst.idx()] = operand(src, &regs),
                Insn::Alu { op, dst, src } => {
                    regs[dst.idx()] = op.apply(regs[dst.idx()], operand(src, &regs));
                }
                Insn::LoadPkt {
                    dst,
                    base,
                    offset,
                    size,
                } => {
                    if *size > 8 {
                        return Err(ExecError::BadAccessSize { pc, size: *size });
                    }
                    let base_v = base.map(|b| regs[b.idx()]).unwrap_or(0);
                    let (off, end) =
                        checked_range(base_v, *offset, *size, packet.len()).map_err(|offset| {
                            ExecError::PacketOutOfBounds {
                                pc,
                                offset,
                                len: packet.len(),
                            }
                        })?;
                    let mut v = 0u64;
                    for &b in &packet[off..end] {
                        v = (v << 8) | b as u64;
                    }
                    regs[dst.idx()] = v;
                }
                Insn::StorePkt {
                    src,
                    base,
                    offset,
                    size,
                } => {
                    if *size > 8 {
                        return Err(ExecError::BadAccessSize { pc, size: *size });
                    }
                    let base_v = base.map(|b| regs[b.idx()]).unwrap_or(0);
                    let (off, end) =
                        checked_range(base_v, *offset, *size, packet.len()).map_err(|offset| {
                            ExecError::PacketOutOfBounds {
                                pc,
                                offset,
                                len: packet.len(),
                            }
                        })?;
                    let bytes = regs[src.idx()].to_be_bytes();
                    packet[off..end].copy_from_slice(&bytes[8 - *size as usize..]);
                }
                Insn::LoadStack { dst, offset, size } => {
                    if *size > 8 {
                        return Err(ExecError::BadAccessSize { pc, size: *size });
                    }
                    let (off, end) = checked_range(0, *offset, *size, STACK_SIZE)
                        .map_err(|offset| ExecError::StackOutOfBounds { pc, offset })?;
                    let mut v = 0u64;
                    for &b in &stack[off..end] {
                        v = (v << 8) | b as u64;
                    }
                    regs[dst.idx()] = v;
                }
                Insn::StoreStack { src, offset, size } => {
                    if *size > 8 {
                        return Err(ExecError::BadAccessSize { pc, size: *size });
                    }
                    let (off, end) = checked_range(0, *offset, *size, STACK_SIZE)
                        .map_err(|offset| ExecError::StackOutOfBounds { pc, offset })?;
                    let bytes = regs[src.idx()].to_be_bytes();
                    stack[off..end].copy_from_slice(&bytes[8 - *size as usize..]);
                }
                Insn::Jmp {
                    cond,
                    dst,
                    src,
                    off,
                } => {
                    if cond.eval(regs[dst.idx()], operand(src, &regs)) {
                        pc += *off as usize;
                    }
                }
                Insn::Call { .. } => {
                    // Verifier rejects these; defensively abort.
                    return Ok(ExecResult {
                        verdict: XdpVerdict::Aborted,
                        steps,
                    });
                }
                Insn::Exit => {
                    return Ok(ExecResult {
                        verdict: XdpVerdict::from_r0(regs[Reg::R0.idx()]),
                        steps,
                    });
                }
            }
            pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, JmpCond};
    use crate::program::ProgramBuilder;

    #[test]
    fn arithmetic_program() {
        // r0 = ((7 + 3) * 4) ^ 5 = 40 ^ 5 = 45 → unknown verdict → Aborted.
        let mut b = ProgramBuilder::new("math");
        b.load_imm(Reg::R0, 7)
            .alu_imm(AluOp::Add, Reg::R0, 3)
            .alu_imm(AluOp::Mul, Reg::R0, 4)
            .alu_imm(AluOp::Xor, Reg::R0, 5)
            .exit();
        let p = b.build();
        p.verify().unwrap();
        let out = Vm::run(&p, &mut [0u8; 0]).unwrap();
        assert_eq!(out.verdict, XdpVerdict::Aborted);
        assert_eq!(out.steps, 5);
    }

    #[test]
    fn packet_read_modify_write() {
        // Increment byte 0 of the packet, then pass.
        let mut b = ProgramBuilder::new("rmw");
        b.load_pkt(Reg::R2, 0, 1)
            .alu_imm(AluOp::Add, Reg::R2, 1)
            .store_pkt(Reg::R2, 0, 1)
            .load_imm(Reg::R0, XdpVerdict::Pass as i64)
            .exit();
        let p = b.build();
        p.verify().unwrap();
        let mut pkt = [41u8, 0, 0];
        let out = Vm::run(&p, &mut pkt).unwrap();
        assert_eq!(out.verdict, XdpVerdict::Pass);
        assert_eq!(pkt[0], 42);
    }

    #[test]
    fn multibyte_big_endian_access() {
        let mut b = ProgramBuilder::new("be");
        b.load_pkt(Reg::R2, 0, 4).mov(Reg::R0, Reg::R2).exit();
        let p = b.build();
        let mut pkt = [0x12, 0x34, 0x56, 0x78];
        // Copy r2 into r0 and exit: r0 = 0x12345678 → Aborted (not a code),
        // but we can still inspect via steps + a dedicated store.
        let mut b2 = ProgramBuilder::new("be2");
        b2.load_pkt(Reg::R2, 0, 4)
            .store_stack(Reg::R2, 0, 8)
            .load_stack(Reg::R3, 4, 4) // low 4 bytes of the stored value
            .load_imm(Reg::R0, 2)
            .exit();
        let p2 = b2.build();
        p2.verify().unwrap();
        Vm::run(&p, &mut pkt).unwrap();
        let out = Vm::run(&p2, &mut pkt).unwrap();
        assert_eq!(out.verdict, XdpVerdict::Pass);
    }

    #[test]
    fn out_of_bounds_read_errors() {
        let mut b = ProgramBuilder::new("oob");
        b.load_pkt(Reg::R2, 100, 4).load_imm(Reg::R0, 2).exit();
        let p = b.build();
        let err = Vm::run(&p, &mut [0u8; 50]).unwrap_err();
        assert_eq!(
            err,
            ExecError::PacketOutOfBounds {
                pc: 0,
                offset: 104,
                len: 50
            }
        );
    }

    #[test]
    fn unverified_memory_bugs_error_instead_of_panicking() {
        use crate::insn::Insn;
        use crate::program::Program;
        // Stack overrun (verifier would reject; interpreter must not panic).
        let p = Program::new(
            "stack_oob",
            vec![
                Insn::StoreStack {
                    src: Reg::R1,
                    offset: 65_535,
                    size: 8,
                },
                Insn::Exit,
            ],
        );
        assert_eq!(
            Vm::run(&p, &mut [0u8; 16]).unwrap_err(),
            ExecError::StackOutOfBounds {
                pc: 0,
                offset: 65_543
            }
        );
        // Access width > 8 would underflow the to_be_bytes slice.
        let p = Program::new(
            "wide",
            vec![
                Insn::StorePkt {
                    src: Reg::R1,
                    base: None,
                    offset: 0,
                    size: 9,
                },
                Insn::Exit,
            ],
        );
        assert_eq!(
            Vm::run(&p, &mut [0u8; 16]).unwrap_err(),
            ExecError::BadAccessSize { pc: 0, size: 9 }
        );
        // A base register holding u64::MAX must not wrap the bounds check.
        let p = Program::new(
            "wrap",
            vec![
                Insn::LoadImm {
                    dst: Reg::R3,
                    imm: -1,
                },
                Insn::LoadPkt {
                    dst: Reg::R2,
                    base: Some(Reg::R3),
                    offset: 8,
                    size: 4,
                },
                Insn::Exit,
            ],
        );
        assert!(matches!(
            Vm::run(&p, &mut [0u8; 16]).unwrap_err(),
            ExecError::PacketOutOfBounds { pc: 1, .. }
        ));
    }

    #[test]
    fn length_guard_pattern() {
        // The canonical XDP bounds check: if len < 34 drop, else read ip.
        let mut b = ProgramBuilder::new("guard");
        let too_short = b.label();
        b.jmp_imm(JmpCond::Lt, Reg::R1, 34, too_short)
            .load_pkt(Reg::R2, 30, 4) // dst ip
            .load_imm(Reg::R0, XdpVerdict::Pass as i64)
            .exit();
        b.bind(too_short)
            .load_imm(Reg::R0, XdpVerdict::Drop as i64)
            .exit();
        let p = b.build();
        p.verify().unwrap();
        let mut big = vec![0u8; 64];
        assert_eq!(Vm::run(&p, &mut big).unwrap().verdict, XdpVerdict::Pass);
        let mut small = vec![0u8; 20];
        assert_eq!(Vm::run(&p, &mut small).unwrap().verdict, XdpVerdict::Drop);
    }

    #[test]
    fn indirect_packet_access() {
        // r3 = 2; read pkt[r3 + 1] (= pkt[3]).
        let mut b = ProgramBuilder::new("ind");
        b.load_imm(Reg::R3, 2)
            .load_pkt_ind(Reg::R2, Reg::R3, 1, 1)
            .mov(Reg::R0, Reg::R2)
            .exit();
        let p = b.build();
        let mut pkt = [0u8, 0, 0, 2, 0];
        let out = Vm::run(&p, &mut pkt).unwrap();
        assert_eq!(out.verdict, XdpVerdict::Pass); // pkt[3] = 2 = Pass
    }

    #[test]
    fn steps_counted_for_cost_model() {
        let mut b = ProgramBuilder::new("cost");
        for _ in 0..10 {
            b.alu_imm(AluOp::Add, Reg::R4, 1);
        }
        b.load_imm(Reg::R0, 2).exit();
        let p = b.build();
        let out = Vm::run(&p, &mut [0u8; 0]).unwrap();
        assert_eq!(out.steps, 12);
    }

    #[test]
    fn r1_preloaded_with_packet_len() {
        let mut b = ProgramBuilder::new("len");
        b.mov(Reg::R0, Reg::R1).exit();
        let p = b.build();
        let out = Vm::run(&p, &mut [0u8; 2]).unwrap();
        // len 2 == Pass code: cheeky but verifies the preload.
        assert_eq!(out.verdict, XdpVerdict::Pass);
    }
}
