//! The load-time verifier, enforcing the SmartNIC's documented limits.

use crate::insn::Insn;
use crate::program::Program;
use crate::{MAX_INSNS, STACK_SIZE};
use core::fmt;

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifierError {
    /// More than [`MAX_INSNS`] instructions.
    TooManyInstructions { count: usize },
    /// The program is empty.
    Empty,
    /// A jump goes backwards (would form a loop).
    BackEdge { at: usize },
    /// A jump's target is past the end of the program.
    JumpOutOfRange { at: usize, target: usize },
    /// Function calls are not supported on the SmartNIC target.
    CallNotAllowed { at: usize },
    /// A stack access exceeds the 512-byte stack.
    StackOutOfBounds { at: usize, offset: usize },
    /// A memory access has an invalid width (must be 1, 2, 4, or 8).
    BadAccessSize { at: usize, size: u8 },
    /// Execution can fall off the end (last insn is not Exit or an
    /// unconditional jump, which forward-only jumps make impossible —
    /// so: last insn must be Exit).
    NoTerminalExit,
}

impl fmt::Display for VerifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifierError::TooManyInstructions { count } => {
                write!(f, "program has {count} instructions, limit is {MAX_INSNS}")
            }
            VerifierError::Empty => write!(f, "empty program"),
            VerifierError::BackEdge { at } => write!(f, "back-edge jump at {at}"),
            VerifierError::JumpOutOfRange { at, target } => {
                write!(f, "jump at {at} targets {target}, out of range")
            }
            VerifierError::CallNotAllowed { at } => {
                write!(f, "call at {at}: function calls not supported")
            }
            VerifierError::StackOutOfBounds { at, offset } => {
                write!(
                    f,
                    "stack access at {at} reaches offset {offset}, stack is {STACK_SIZE}"
                )
            }
            VerifierError::BadAccessSize { at, size } => {
                write!(f, "access at {at} has invalid size {size}")
            }
            VerifierError::NoTerminalExit => {
                write!(f, "execution can fall off the end of the program")
            }
        }
    }
}

impl std::error::Error for VerifierError {}

/// Verify a program against the SmartNIC constraints (see crate docs).
pub fn verify(p: &Program) -> Result<(), VerifierError> {
    let n = p.insns.len();
    if n == 0 {
        return Err(VerifierError::Empty);
    }
    if n > MAX_INSNS {
        return Err(VerifierError::TooManyInstructions { count: n });
    }
    for (at, insn) in p.insns.iter().enumerate() {
        match insn {
            Insn::Call { .. } => return Err(VerifierError::CallNotAllowed { at }),
            Insn::Jmp { off, .. } => {
                // Offsets are unsigned (`u16`), so back-edges cannot even be
                // encoded; what remains to check is the range...
                let target = at + 1 + *off as usize;
                if target > n {
                    return Err(VerifierError::JumpOutOfRange { at, target });
                }
                // ...and an off-by-zero self-loop is impossible too (target
                // is always at+1 or later); nothing else to do. A signed
                // encoding would be checked here:
                if target <= at {
                    return Err(VerifierError::BackEdge { at });
                }
            }
            Insn::LoadStack { offset, size, .. } | Insn::StoreStack { offset, size, .. } => {
                check_size(at, *size)?;
                let end = *offset as usize + *size as usize;
                if end > STACK_SIZE {
                    return Err(VerifierError::StackOutOfBounds { at, offset: end });
                }
            }
            Insn::LoadPkt { size, .. } | Insn::StorePkt { size, .. } => {
                check_size(at, *size)?;
                // Packet bounds are dynamic; the interpreter checks them.
            }
            _ => {}
        }
    }
    if !matches!(p.insns[n - 1], Insn::Exit) {
        return Err(VerifierError::NoTerminalExit);
    }
    Ok(())
}

fn check_size(at: usize, size: u8) -> Result<(), VerifierError> {
    if matches!(size, 1 | 2 | 4 | 8) {
        Ok(())
    } else {
        Err(VerifierError::BadAccessSize { at, size })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{JmpCond, Operand, Reg};

    fn prog(insns: Vec<Insn>) -> Program {
        Program::new("t", insns)
    }

    #[test]
    fn minimal_program_passes() {
        let p = prog(vec![
            Insn::LoadImm {
                dst: Reg::R0,
                imm: 2,
            },
            Insn::Exit,
        ]);
        assert!(verify(&p).is_ok());
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(verify(&prog(vec![])).unwrap_err(), VerifierError::Empty);
    }

    #[test]
    fn too_long_rejected() {
        let mut insns = vec![
            Insn::LoadImm {
                dst: Reg::R0,
                imm: 0
            };
            MAX_INSNS
        ];
        insns.push(Insn::Exit);
        assert_eq!(
            verify(&prog(insns)).unwrap_err(),
            VerifierError::TooManyInstructions {
                count: MAX_INSNS + 1
            }
        );
    }

    #[test]
    fn exactly_max_insns_ok() {
        let mut insns = vec![
            Insn::LoadImm {
                dst: Reg::R0,
                imm: 0
            };
            MAX_INSNS - 1
        ];
        insns.push(Insn::Exit);
        assert!(verify(&prog(insns)).is_ok());
    }

    #[test]
    fn call_rejected() {
        let p = prog(vec![Insn::Call { func: 1 }, Insn::Exit]);
        assert_eq!(
            verify(&p).unwrap_err(),
            VerifierError::CallNotAllowed { at: 0 }
        );
    }

    #[test]
    fn jump_past_end_rejected() {
        let p = prog(vec![
            Insn::Jmp {
                cond: JmpCond::Always,
                dst: Reg::R0,
                src: Operand::Imm(0),
                off: 5,
            },
            Insn::Exit,
        ]);
        assert_eq!(
            verify(&p).unwrap_err(),
            VerifierError::JumpOutOfRange { at: 0, target: 6 }
        );
    }

    #[test]
    fn jump_to_end_is_ok() {
        // Jump to exactly n (one past the last insn index) is conventional
        // "jump to exit"? No: target == n means past the last instruction;
        // execution would fall off. Target n is allowed only if it equals
        // the index of a real instruction... target==n is out of range once
        // the terminal-exit rule is applied, but the range check permits
        // target == n for a jump landing right after the last insn only if
        // that insn exists. Verify the boundary: jump over one insn to the
        // exit at index 2.
        let p = prog(vec![
            Insn::Jmp {
                cond: JmpCond::Always,
                dst: Reg::R0,
                src: Operand::Imm(0),
                off: 1,
            },
            Insn::LoadImm {
                dst: Reg::R0,
                imm: 1,
            },
            Insn::Exit,
        ]);
        assert!(verify(&p).is_ok());
    }

    #[test]
    fn stack_overflow_rejected() {
        let p = prog(vec![
            Insn::StoreStack {
                src: Reg::R1,
                offset: 508,
                size: 8,
            },
            Insn::Exit,
        ]);
        assert_eq!(
            verify(&p).unwrap_err(),
            VerifierError::StackOutOfBounds { at: 0, offset: 516 }
        );
        // 504 + 8 = 512 exactly: fine.
        let ok = prog(vec![
            Insn::StoreStack {
                src: Reg::R1,
                offset: 504,
                size: 8,
            },
            Insn::Exit,
        ]);
        assert!(verify(&ok).is_ok());
    }

    #[test]
    fn bad_access_size_rejected() {
        let p = prog(vec![
            Insn::LoadPkt {
                dst: Reg::R1,
                base: None,
                offset: 0,
                size: 3,
            },
            Insn::Exit,
        ]);
        assert_eq!(
            verify(&p).unwrap_err(),
            VerifierError::BadAccessSize { at: 0, size: 3 }
        );
    }

    #[test]
    fn missing_exit_rejected() {
        let p = prog(vec![Insn::LoadImm {
            dst: Reg::R0,
            imm: 2,
        }]);
        assert_eq!(verify(&p).unwrap_err(), VerifierError::NoTerminalExit);
    }
}
