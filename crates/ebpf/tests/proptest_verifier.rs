//! Property-based tests for the SmartNIC verifier and interpreter:
//! *reject-or-run*. For arbitrary instruction streams — including invalid
//! access widths, out-of-range offsets, and jumps past the end — the
//! verifier must return a typed verdict without panicking, and every
//! program it accepts must run to completion in the interpreter: a result
//! or a packet-bounds error, never a panic, a stack error, or a blown
//! step budget.

use lemur_ebpf::insn::{AluOp, Insn, JmpCond, Operand, Reg};
use lemur_ebpf::{verify, ExecError, Program, Vm};
use proptest::prelude::*;

fn reg(i: u8) -> Reg {
    Reg::ALL[i as usize % Reg::ALL.len()]
}

fn alu_op(i: u8) -> AluOp {
    match i % 10 {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Mod,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Lsh,
        _ => AluOp::Rsh,
    }
}

fn cond(i: u8) -> JmpCond {
    match i % 7 {
        0 => JmpCond::Always,
        1 => JmpCond::Eq,
        2 => JmpCond::Ne,
        3 => JmpCond::Gt,
        4 => JmpCond::Ge,
        5 => JmpCond::Lt,
        _ => JmpCond::Le,
    }
}

/// One arbitrary instruction. Sizes range over 0..=10 (so invalid widths
/// 0, 3, 5, 6, 7, 9, 10 appear), offsets over the full `u16` space with a
/// bias toward small values, and jumps can overshoot the program end.
fn arb_insn() -> impl Strategy<Value = Insn> {
    (
        (
            0u8..10,    // variant
            0u8..10,    // dst register
            0u8..10,    // src register / op selector
            -3i64..300, // immediate
        ),
        (
            0u16..700,       // offset (spans the 512-byte stack boundary)
            0u8..11,         // access size, valid and invalid
            0u16..20,        // jump distance
            prop::bool::ANY, // imm-vs-reg operand / indirect base
        ),
    )
        .prop_map(|((variant, d, s, imm), (offset, size, jmp, flag))| {
            let dst = reg(d);
            let src = if flag {
                Operand::Imm(imm)
            } else {
                Operand::Reg(reg(s))
            };
            match variant {
                0 => Insn::LoadImm { dst, imm },
                1 => Insn::Mov { dst, src },
                2 => Insn::Alu {
                    op: alu_op(s),
                    dst,
                    src,
                },
                3 => Insn::LoadPkt {
                    dst,
                    base: flag.then_some(reg(s)),
                    offset,
                    size,
                },
                4 => Insn::StorePkt {
                    src: dst,
                    base: flag.then_some(reg(s)),
                    offset,
                    size,
                },
                5 => Insn::LoadStack { dst, offset, size },
                6 => Insn::StoreStack {
                    src: dst,
                    offset,
                    size,
                },
                7 => Insn::Jmp {
                    cond: cond(s),
                    dst,
                    src,
                    off: jmp,
                },
                8 => Insn::Call { func: imm as u32 },
                _ => Insn::Exit,
            }
        })
}

proptest! {
    /// The verifier is total: any instruction stream gets a typed verdict.
    /// Accepted programs run to completion — Ok, or a packet-bounds error
    /// (packet length is dynamic, so the verifier cannot rule those out).
    /// Stack errors, bad-size errors, and the step limit are statically
    /// excluded by verification, so seeing one from an accepted program is
    /// a verifier soundness bug.
    #[test]
    fn verifier_rejects_or_program_runs(
        insns in prop::collection::vec(arb_insn(), 0..40),
        pkt_len in 0usize..96,
    ) {
        let program = Program::new("fuzz", insns);
        let accepted = verify(&program).is_ok(); // must not panic
        if accepted {
            let mut packet = vec![0xabu8; pkt_len];
            match Vm::run(&program, &mut packet) {
                Ok(out) => {
                    // Forward-only jumps: each instruction runs at most once.
                    prop_assert!(out.steps as usize <= program.insns.len());
                }
                Err(ExecError::PacketOutOfBounds { len, .. }) => {
                    prop_assert_eq!(len, pkt_len);
                }
                Err(e) => {
                    return Err(TestCaseError::fail(format!(
                        "verified program hit non-packet error: {e}"
                    )));
                }
            }
        }
    }

    /// Straight-line programs made only of ALU/Mov/LoadImm plus a terminal
    /// Exit are always accepted and always run: the arithmetic core is
    /// total (wrapping add/mul, defined div-by-zero, masked shifts).
    #[test]
    fn arithmetic_core_is_total(
        ops in prop::collection::vec((0u8..10, 0u8..10, any::<i64>()), 0..32),
    ) {
        let mut insns: Vec<Insn> = ops
            .into_iter()
            .map(|(op, d, imm)| Insn::Alu {
                op: alu_op(op),
                dst: reg(d),
                src: Operand::Imm(imm),
            })
            .collect();
        insns.push(Insn::Exit);
        let program = Program::new("alu", insns);
        prop_assert!(verify(&program).is_ok());
        let out = Vm::run(&program, &mut []).expect("total arithmetic");
        prop_assert_eq!(out.steps as usize, program.insns.len());
    }
}
