//! OpenFlow match fields, actions, and rules.

use lemur_packet::flow::FiveTuple;
use lemur_packet::ipv4::Cidr;

/// A flow-rule match. `None` fields are wildcards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OfMatch {
    pub in_port: Option<u16>,
    pub vlan_vid: Option<u16>,
    pub ipv4_src: Option<Cidr>,
    pub ipv4_dst: Option<Cidr>,
    pub l4_src: Option<u16>,
    pub l4_dst: Option<u16>,
    pub ip_proto: Option<u8>,
}

impl OfMatch {
    /// A match-everything rule.
    pub fn any() -> OfMatch {
        OfMatch::default()
    }

    /// Evaluate against a packet's parsed view.
    pub fn matches(&self, in_port: u16, vid: Option<u16>, tuple: Option<&FiveTuple>) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        if let Some(v) = self.vlan_vid {
            if vid != Some(v) {
                return false;
            }
        }
        let needs_tuple = self.ipv4_src.is_some()
            || self.ipv4_dst.is_some()
            || self.l4_src.is_some()
            || self.l4_dst.is_some()
            || self.ip_proto.is_some();
        if needs_tuple {
            let Some(t) = tuple else { return false };
            if let Some(c) = &self.ipv4_src {
                if !c.contains(t.src_ip) {
                    return false;
                }
            }
            if let Some(c) = &self.ipv4_dst {
                if !c.contains(t.dst_ip) {
                    return false;
                }
            }
            if let Some(p) = self.l4_src {
                if p != t.src_port {
                    return false;
                }
            }
            if let Some(p) = self.l4_dst {
                if p != t.dst_port {
                    return false;
                }
            }
            if let Some(p) = self.ip_proto {
                if p != t.protocol {
                    return false;
                }
            }
        }
        true
    }

    /// Number of specified fields (drives default rule priority).
    pub fn specificity(&self) -> u32 {
        [
            self.in_port.is_some(),
            self.vlan_vid.is_some(),
            self.ipv4_src.is_some(),
            self.ipv4_dst.is_some(),
            self.l4_src.is_some(),
            self.l4_dst.is_some(),
            self.ip_proto.is_some(),
        ]
        .iter()
        .filter(|b| **b)
        .count() as u32
    }
}

/// Actions a rule can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfAction {
    /// Push a VLAN tag with this VID.
    PushVlan(u16),
    /// Pop the outer VLAN tag.
    PopVlan,
    /// Rewrite the VID of an existing tag.
    SetVlanVid(u16),
    /// Emit on a port.
    Output(u16),
    /// Drop the packet.
    Drop,
}

/// A flow rule: match + priority + action list.
#[derive(Debug, Clone, PartialEq)]
pub struct OfRule {
    pub m: OfMatch,
    pub priority: u32,
    pub actions: Vec<OfAction>,
}

impl OfRule {
    /// A rule with priority derived from the match's specificity.
    pub fn new(m: OfMatch, actions: Vec<OfAction>) -> OfRule {
        let priority = m.specificity();
        OfRule {
            m,
            priority,
            actions,
        }
    }

    /// Same, with an explicit priority.
    pub fn with_priority(m: OfMatch, priority: u32, actions: Vec<OfAction>) -> OfRule {
        OfRule {
            m,
            priority,
            actions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_packet::ipv4::Address;

    fn tuple() -> FiveTuple {
        FiveTuple {
            src_ip: Address::new(10, 0, 0, 1),
            dst_ip: Address::new(20, 0, 0, 2),
            src_port: 1000,
            dst_port: 80,
            protocol: 6,
        }
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(OfMatch::any().matches(0, None, None));
        assert!(OfMatch::any().matches(5, Some(7), Some(&tuple())));
    }

    #[test]
    fn field_filters() {
        let m = OfMatch {
            vlan_vid: Some(7),
            ipv4_dst: Some("20.0.0.0/8".parse().unwrap()),
            l4_dst: Some(80),
            ..OfMatch::any()
        };
        assert!(m.matches(0, Some(7), Some(&tuple())));
        assert!(!m.matches(0, Some(8), Some(&tuple())));
        assert!(
            !m.matches(0, Some(7), None),
            "tuple-dependent match needs a tuple"
        );
        let other = FiveTuple {
            dst_port: 443,
            ..tuple()
        };
        assert!(!m.matches(0, Some(7), Some(&other)));
    }

    #[test]
    fn specificity_counts_fields() {
        assert_eq!(OfMatch::any().specificity(), 0);
        let m = OfMatch {
            in_port: Some(1),
            vlan_vid: Some(2),
            ..OfMatch::any()
        };
        assert_eq!(m.specificity(), 2);
        assert_eq!(OfRule::new(m, vec![OfAction::Drop]).priority, 2);
    }
}
