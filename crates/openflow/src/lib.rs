//! # lemur-openflow
//!
//! An OpenFlow switch substrate, standing in for the Edgecore AS5712-54X in
//! the paper's §5.3 experiment ("Placement on an OpenFlow switch").
//!
//! Two properties distinguish it from the PISA switch and shape the Placer:
//!
//! * **Fixed table order.** The pipeline is a fixed sequence of typed
//!   tables; an NF sequence can be offloaded only if it is a subsequence of
//!   that order ([`validate_nf_order`]). "Unlike a PISA switch, an OpenFlow
//!   switch has fixed table order, so the Placer must check whether a
//!   configuration violates the switch table order."
//! * **No NSH.** Service-path steering uses the 12-bit VLAN VID
//!   (`lemur_packet::vlan::VidServiceEncoding`) in place of SPI/SI, which
//!   bounds how many chains and NFs can be configured.

pub mod pipeline;
pub mod rules;

pub use pipeline::{OfSwitch, OfTableType, OfVerdict, FIXED_TABLE_ORDER};
pub use rules::{OfAction, OfMatch, OfRule};

use lemur_nf_kind::NfKind;

/// Re-exported kind type used by [`supported_table`]/[`validate_nf_order`].
pub mod lemur_nf_kind {
    /// Minimal mirror of `lemur_nf::NfKind` names needed for order checks.
    ///
    /// The openflow crate deliberately depends only on `lemur-packet`; the
    /// Placer converts from the full `NfKind` into this enum.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum NfKind {
        Detunnel,
        Acl,
        Monitor,
        Tunnel,
        Ipv4Fwd,
    }
}

/// The table an NF kind maps onto, if the switch supports it.
pub fn supported_table(kind: NfKind) -> OfTableType {
    match kind {
        NfKind::Detunnel => OfTableType::VlanPop,
        NfKind::Acl => OfTableType::Acl,
        NfKind::Monitor => OfTableType::Monitor,
        NfKind::Tunnel => OfTableType::VlanPush,
        NfKind::Ipv4Fwd => OfTableType::Forward,
    }
}

/// Check that a chain's OF-offloaded NF sequence respects the fixed table
/// order: each successive NF must map to a strictly later table (a table
/// cannot be revisited and packets flow forward only).
pub fn validate_nf_order(kinds: &[NfKind]) -> bool {
    let mut last = None::<usize>;
    for kind in kinds {
        let t = supported_table(*kind);
        let pos = FIXED_TABLE_ORDER.iter().position(|x| *x == t).unwrap();
        if let Some(prev) = last {
            if pos <= prev {
                return false;
            }
        }
        last = Some(pos);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::lemur_nf_kind::NfKind;
    use super::*;

    #[test]
    fn in_order_sequences_accepted() {
        assert!(validate_nf_order(&[
            NfKind::Detunnel,
            NfKind::Acl,
            NfKind::Ipv4Fwd
        ]));
        assert!(validate_nf_order(&[
            NfKind::Acl,
            NfKind::Monitor,
            NfKind::Tunnel
        ]));
        assert!(validate_nf_order(&[NfKind::Ipv4Fwd]));
        assert!(validate_nf_order(&[]));
    }

    #[test]
    fn out_of_order_rejected() {
        // Forwarding happens last in hardware; ACL after it is impossible.
        assert!(!validate_nf_order(&[NfKind::Ipv4Fwd, NfKind::Acl]));
        // Tunnel (vlan push) precedes forward but follows monitor.
        assert!(!validate_nf_order(&[NfKind::Tunnel, NfKind::Monitor]));
    }

    #[test]
    fn repeated_table_rejected() {
        assert!(!validate_nf_order(&[NfKind::Acl, NfKind::Acl]));
    }
}
