//! The fixed-order OpenFlow pipeline.

use crate::rules::{OfAction, OfRule};
use lemur_packet::builder::{vlan_peek, vlan_pop, vlan_push};
use lemur_packet::flow::FiveTuple;
use lemur_packet::{vlan, PacketBuf};

/// The typed tables, in their immutable hardware order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OfTableType {
    /// VLAN classification / pop (Detunnel lives here).
    VlanPop,
    /// ACL filtering.
    Acl,
    /// Per-flow statistics.
    Monitor,
    /// VLAN push / VID rewrite (Tunnel and service steering live here).
    VlanPush,
    /// L3 forwarding and output.
    Forward,
}

/// Hardware table order — the constraint [`crate::validate_nf_order`]
/// checks placements against.
pub const FIXED_TABLE_ORDER: [OfTableType; 5] = [
    OfTableType::VlanPop,
    OfTableType::Acl,
    OfTableType::Monitor,
    OfTableType::VlanPush,
    OfTableType::Forward,
];

/// Result of pipeline traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfVerdict {
    pub out_port: Option<u16>,
    pub dropped: bool,
}

#[derive(Debug, Default, Clone, Copy)]
struct TableStats {
    matched: u64,
    missed: u64,
}

/// An OpenFlow switch: one rule list per typed table, flowed in fixed
/// order. Table misses fall through to the next table (the controller
/// pre-installs a default-continue behaviour).
pub struct OfSwitch {
    tables: Vec<(OfTableType, Vec<OfRule>)>,
    stats: Vec<TableStats>,
    /// Port line rate in bits per second (the AS5712 is a 10/40G switch).
    pub port_rate_bps: f64,
}

impl Default for OfSwitch {
    fn default() -> Self {
        OfSwitch::new()
    }
}

impl OfSwitch {
    /// A switch with empty tables.
    pub fn new() -> OfSwitch {
        OfSwitch {
            tables: FIXED_TABLE_ORDER.iter().map(|t| (*t, Vec::new())).collect(),
            stats: vec![TableStats::default(); FIXED_TABLE_ORDER.len()],
            port_rate_bps: 40e9,
        }
    }

    /// Install a rule into a typed table, keeping priority order.
    pub fn add_rule(&mut self, table: OfTableType, rule: OfRule) {
        let list = &mut self
            .tables
            .iter_mut()
            .find(|(t, _)| *t == table)
            .expect("table exists")
            .1;
        let pos = list
            .iter()
            .position(|r| r.priority < rule.priority)
            .unwrap_or(list.len());
        list.insert(pos, rule);
    }

    /// Rules installed in a table.
    pub fn num_rules(&self, table: OfTableType) -> usize {
        self.tables
            .iter()
            .find(|(t, _)| *t == table)
            .map(|(_, r)| r.len())
            .unwrap_or(0)
    }

    /// (matched, missed) counters for a table.
    pub fn table_stats(&self, table: OfTableType) -> (u64, u64) {
        let i = FIXED_TABLE_ORDER.iter().position(|t| *t == table).unwrap();
        (self.stats[i].matched, self.stats[i].missed)
    }

    /// Run one packet through the pipeline.
    pub fn process(&mut self, in_port: u16, pkt: &mut PacketBuf) -> OfVerdict {
        let mut out_port = None;
        for i in 0..self.tables.len() {
            let vid = vlan_peek(pkt.as_slice());
            let tuple = FiveTuple::parse(pkt.as_slice()).ok();
            let rule = self.tables[i]
                .1
                .iter()
                .find(|r| r.m.matches(in_port, vid, tuple.as_ref()))
                .cloned();
            match rule {
                None => {
                    self.stats[i].missed += 1;
                }
                Some(rule) => {
                    self.stats[i].matched += 1;
                    for action in &rule.actions {
                        match action {
                            OfAction::Drop => {
                                return OfVerdict {
                                    out_port: None,
                                    dropped: true,
                                }
                            }
                            OfAction::Output(p) => out_port = Some(*p),
                            OfAction::PushVlan(v) => vlan_push(pkt, *v),
                            OfAction::PopVlan => {
                                let _ = vlan_pop(pkt);
                            }
                            OfAction::SetVlanVid(v) => {
                                set_vid(pkt, *v);
                            }
                        }
                    }
                }
            }
        }
        OfVerdict {
            out_port,
            dropped: false,
        }
    }
}

fn set_vid(pkt: &mut PacketBuf, vid: u16) {
    use lemur_packet::ethernet::{self, EtherType};
    let is_tagged = matches!(
        ethernet::Frame::new_checked(pkt.as_slice()).map(|e| e.ethertype()),
        Ok(EtherType::Vlan)
    );
    if is_tagged {
        let data = pkt.as_mut_slice();
        let mut tag = vlan::Tag::new_unchecked(&mut data[ethernet::HEADER_LEN..]);
        tag.set_vid(vid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::OfMatch;
    use lemur_packet::builder::udp_packet;
    use lemur_packet::vlan::VidServiceEncoding;
    use lemur_packet::{ethernet, ipv4};

    fn pkt(dst: ipv4::Address, dport: u16) -> PacketBuf {
        udp_packet(
            ethernet::Address([2, 0, 0, 0, 0, 1]),
            ethernet::Address([2, 0, 0, 0, 0, 2]),
            ipv4::Address::new(10, 0, 0, 1),
            dst,
            999,
            dport,
            b"x",
        )
    }

    #[test]
    fn acl_then_forward() {
        let mut sw = OfSwitch::new();
        // Drop telnet.
        sw.add_rule(
            OfTableType::Acl,
            OfRule::new(
                OfMatch {
                    l4_dst: Some(23),
                    ..OfMatch::any()
                },
                vec![OfAction::Drop],
            ),
        );
        // Forward 20/8 to port 3.
        sw.add_rule(
            OfTableType::Forward,
            OfRule::new(
                OfMatch {
                    ipv4_dst: Some("20.0.0.0/8".parse().unwrap()),
                    ..OfMatch::any()
                },
                vec![OfAction::Output(3)],
            ),
        );
        let mut ok = pkt(ipv4::Address::new(20, 1, 1, 1), 80);
        assert_eq!(
            sw.process(0, &mut ok),
            OfVerdict {
                out_port: Some(3),
                dropped: false
            }
        );
        let mut telnet = pkt(ipv4::Address::new(20, 1, 1, 1), 23);
        assert_eq!(
            sw.process(0, &mut telnet),
            OfVerdict {
                out_port: None,
                dropped: true
            }
        );
        let (matched, missed) = sw.table_stats(OfTableType::Acl);
        assert_eq!((matched, missed), (1, 1));
    }

    #[test]
    fn vlan_vid_service_steering() {
        // The §5.3 pattern: VID encodes SPI/SI; the switch steers by VID
        // and rewrites it for the next hop.
        let enc_in = VidServiceEncoding { spi: 3, si: 2 }.encode().unwrap();
        let enc_out = VidServiceEncoding { spi: 3, si: 1 }.encode().unwrap();
        let mut sw = OfSwitch::new();
        sw.add_rule(
            OfTableType::VlanPush,
            OfRule::new(
                OfMatch {
                    vlan_vid: Some(enc_in),
                    ..OfMatch::any()
                },
                vec![OfAction::SetVlanVid(enc_out)],
            ),
        );
        sw.add_rule(
            OfTableType::Forward,
            OfRule::new(
                OfMatch {
                    vlan_vid: Some(enc_out),
                    ..OfMatch::any()
                },
                vec![OfAction::Output(7)],
            ),
        );
        let mut p = pkt(ipv4::Address::new(20, 1, 1, 1), 80);
        lemur_packet::builder::vlan_push(&mut p, enc_in);
        let v = sw.process(1, &mut p);
        assert_eq!(v.out_port, Some(7));
        assert_eq!(
            lemur_packet::builder::vlan_peek(p.as_slice()),
            Some(enc_out)
        );
    }

    #[test]
    fn detunnel_in_vlan_pop_table() {
        let mut sw = OfSwitch::new();
        sw.add_rule(
            OfTableType::VlanPop,
            OfRule::new(
                OfMatch {
                    vlan_vid: Some(42),
                    ..OfMatch::any()
                },
                vec![OfAction::PopVlan],
            ),
        );
        let mut p = pkt(ipv4::Address::new(1, 1, 1, 1), 80);
        lemur_packet::builder::vlan_push(&mut p, 42);
        sw.process(0, &mut p);
        assert_eq!(lemur_packet::builder::vlan_peek(p.as_slice()), None);
    }

    #[test]
    fn priority_order_within_table() {
        let mut sw = OfSwitch::new();
        sw.add_rule(
            OfTableType::Forward,
            OfRule::with_priority(OfMatch::any(), 1, vec![OfAction::Output(1)]),
        );
        sw.add_rule(
            OfTableType::Forward,
            OfRule::with_priority(
                OfMatch {
                    l4_dst: Some(80),
                    ..OfMatch::any()
                },
                10,
                vec![OfAction::Output(2)],
            ),
        );
        let mut http = pkt(ipv4::Address::new(1, 1, 1, 1), 80);
        assert_eq!(sw.process(0, &mut http).out_port, Some(2));
        let mut dns = pkt(ipv4::Address::new(1, 1, 1, 1), 53);
        assert_eq!(sw.process(0, &mut dns).out_port, Some(1));
    }

    #[test]
    fn empty_pipeline_floods_nowhere() {
        let mut sw = OfSwitch::new();
        let mut p = pkt(ipv4::Address::new(1, 1, 1, 1), 80);
        assert_eq!(
            sw.process(0, &mut p),
            OfVerdict {
                out_port: None,
                dropped: false
            }
        );
    }
}
