//! Brute-force ("Optimal") placement (§3.2).
//!
//! The paper's brute force (a) enumerates placement patterns, (b) searches
//! core allocations per pattern, (c) ranks by maximum marginal throughput
//! via the LP, and (d) walks the ranking calling the PISA compiler until a
//! placement fits the stages. Exhaustive enumeration took ~4 hours for the
//! 4-chain configuration on the authors' machine; like theirs, our search
//! ranks cheaply first and only runs the LP + compiler on the best
//! candidates. A configurable beam bounds the combinatorics (the default
//! is effectively exhaustive for ≤ 2 chains).

use crate::corealloc::{self, CoreStrategy};
use crate::oracle::{CountingOracle, StageOracle, StageVerdict};
use crate::parallel::{parallel_flat_map, parallel_map, Workers};
use crate::placement::{
    Assignment, EvaluatedPlacement, PlacementError, PlacementProblem, SearchTelemetry,
};
use crate::profiles::{Platform, PlatformClass};
use crate::topology::Tor;
use lemur_core::graph::NodeId;
use std::collections::BTreeMap;

/// A platform choice before a concrete server is picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatPlat {
    Pisa,
    Server,
    SmartNic(usize),
    OpenFlow,
}

/// One per-chain pattern: a platform class per node.
pub type Pattern = Vec<(NodeId, PatPlat)>;

/// Search configuration.
#[derive(Debug, Clone, Copy)]
pub struct BruteConfig {
    /// Cap on enumerated patterns per chain (evenly subsampled beyond).
    pub max_patterns_per_chain: usize,
    /// Beam width while combining chains.
    pub beam_width: usize,
    /// How many ranked candidates get the full LP + stage-oracle check.
    pub candidates: usize,
}

impl Default for BruteConfig {
    fn default() -> Self {
        BruteConfig {
            max_patterns_per_chain: 4096,
            beam_width: 64,
            candidates: 40,
        }
    }
}

/// Enumerate platform patterns for every chain.
pub fn per_chain_patterns(problem: &PlacementProblem, cap: usize) -> Vec<Vec<Pattern>> {
    problem
        .chains
        .iter()
        .map(|chain| {
            let nodes: Vec<(NodeId, Vec<PatPlat>)> = chain
                .graph
                .nodes()
                .map(|(id, n)| {
                    let mut opts = Vec::new();
                    for class in problem.profiles.capabilities(n.kind) {
                        match class {
                            PlatformClass::Pisa if problem.topology.has_pisa() => {
                                opts.push(PatPlat::Pisa)
                            }
                            PlatformClass::Server => opts.push(PatPlat::Server),
                            PlatformClass::SmartNic => {
                                for ni in 0..problem.topology.smartnics.len() {
                                    opts.push(PatPlat::SmartNic(ni));
                                }
                            }
                            PlatformClass::OpenFlow
                                if matches!(problem.topology.tor, Tor::OpenFlow { .. }) =>
                            {
                                opts.push(PatPlat::OpenFlow)
                            }
                            _ => {}
                        }
                    }
                    if opts.is_empty() {
                        // No platform available in this topology: fall back
                        // to Server so the capability check reports it.
                        opts.push(PatPlat::Server);
                    }
                    (id, opts)
                })
                .collect();
            let total: usize = nodes.iter().map(|(_, o)| o.len()).product();
            let take = total.min(cap);
            let stride = (total / take.max(1)).max(1);
            let mut patterns = Vec::with_capacity(take);
            let mut index = 0usize;
            while index < total && patterns.len() < take {
                let mut rem = index;
                let mut pat = Vec::with_capacity(nodes.len());
                for (id, opts) in &nodes {
                    pat.push((*id, opts[rem % opts.len()]));
                    rem /= opts.len();
                }
                patterns.push(pat);
                index += stride;
            }
            patterns
        })
        .collect()
}

/// Turn a pattern into a concrete per-node assignment on `server`.
pub fn materialize(pattern: &Pattern, server: usize) -> BTreeMap<NodeId, Platform> {
    pattern
        .iter()
        .map(|(id, p)| {
            let plat = match p {
                PatPlat::Pisa => Platform::Pisa,
                PatPlat::Server => Platform::Server(server),
                PatPlat::SmartNic(n) => Platform::SmartNic(*n),
                PatPlat::OpenFlow => Platform::OpenFlow,
            };
            (*id, plat)
        })
        .collect()
}

/// Cheap (no-LP) score of a full assignment: water-filled marginal
/// estimate, or `None` if infeasible.
fn quick_score(problem: &PlacementProblem, assignment: &Assignment) -> Option<f64> {
    problem.check_capabilities(assignment).ok()?;
    let mut sgs = problem.form_subgroups(assignment);
    corealloc::allocate(problem, &mut sgs, CoreStrategy::WaterFill).ok()?;
    Some(corealloc::quick_estimate(problem, &sgs))
}

/// Run brute-force placement with the environment's worker count
/// (`LEMUR_WORKERS` / available parallelism). Results are identical for
/// every worker count — see [`optimal_with_workers`].
pub fn optimal(
    problem: &PlacementProblem,
    oracle: &dyn StageOracle,
    config: BruteConfig,
) -> Result<EvaluatedPlacement, PlacementError> {
    optimal_with_workers(problem, oracle, config, Workers::from_env())
}

/// Outcome of one candidate's full evaluation (LP + stage oracle), carried
/// through the parallel fan-out so the sequential reduction can replicate
/// the exact best-selection and last-error semantics of the serial loop.
enum CandidateOutcome {
    Fit(Box<EvaluatedPlacement>),
    Rejected(PlacementError),
}

/// Run brute-force placement with an explicit worker count.
///
/// Both parallel phases reduce in item order, so the returned placement,
/// its telemetry, and every error message are bit-identical to the
/// sequential (`workers = 1`) path:
///
/// * beam expansion fans out over the current beam's partials; each worker
///   produces that partial's successors in the sequential nested-loop
///   order and the flat-map concatenates them in partial order (stable
///   sort ⇒ ties keep that order);
/// * candidate evaluation fans out over the ranked prefix; verdicts are
///   folded sequentially in rank order, reproducing the serial loop's
///   "last error wins" and "strictly better by 1e-6" rules.
pub fn optimal_with_workers(
    problem: &PlacementProblem,
    oracle: &dyn StageOracle,
    config: BruteConfig,
    workers: Workers,
) -> Result<EvaluatedPlacement, PlacementError> {
    let oracle = CountingOracle::new(oracle);
    let cache_before = oracle.cache_stats().unwrap_or_default();
    let per_chain = per_chain_patterns(problem, config.max_patterns_per_chain);
    let n_servers = problem.topology.servers.len().max(1);
    let mut pruned: u64 = 0;

    // Beam over (chains so far) × (server choice per chain).
    #[derive(Clone)]
    struct Partial {
        assignment: Assignment,
        score: f64,
    }
    let mut beam: Vec<Partial> = vec![Partial {
        assignment: Vec::new(),
        score: 0.0,
    }];
    for (ci, patterns) in per_chain.iter().enumerate() {
        // Score successors against the partial problem (chains 0..=ci).
        let sub = PlacementProblem::new(
            problem.chains[..=ci].to_vec(),
            problem.topology.clone(),
            problem.profiles.clone(),
        );
        let generated = beam.len() as u64 * patterns.len() as u64 * n_servers as u64;
        let mut next: Vec<Partial> = parallel_flat_map(workers, &beam, |_, partial| {
            let mut successors = Vec::new();
            for pattern in patterns {
                for server in 0..n_servers {
                    let mut assignment = partial.assignment.clone();
                    assignment.push(materialize(pattern, server));
                    if let Some(score) = quick_score(&sub, &assignment) {
                        successors.push(Partial { assignment, score });
                    }
                }
            }
            successors
        });
        if next.is_empty() {
            return Err(PlacementError::Infeasible(format!(
                "no feasible pattern prefix through chain {ci}"
            )));
        }
        pruned += generated - next.len() as u64;
        next.sort_by(|a, b| b.score.total_cmp(&a.score));
        pruned += next.len().saturating_sub(config.beam_width) as u64;
        next.truncate(config.beam_width);
        beam = next;
    }

    // Full evaluation + stage oracle on the ranked candidates.
    pruned += beam.len().saturating_sub(config.candidates) as u64;
    let ranked = &beam[..beam.len().min(config.candidates)];
    let lp_evals = ranked.len() as u64;
    let outcomes = parallel_map(workers, ranked, |_, partial| {
        match problem.evaluate(&partial.assignment, CoreStrategy::WaterFill) {
            Ok(mut out) => match oracle.check(problem, &partial.assignment) {
                StageVerdict::Fits { stages } => {
                    out.stages_used = Some(stages);
                    CandidateOutcome::Fit(Box::new(out))
                }
                StageVerdict::OutOfStages {
                    required,
                    available,
                } => CandidateOutcome::Rejected(PlacementError::OutOfStages {
                    required,
                    available,
                }),
            },
            Err(e) => CandidateOutcome::Rejected(e),
        }
    });

    let mut best: Option<EvaluatedPlacement> = None;
    let mut last_err =
        PlacementError::Infeasible("no candidate survived full evaluation".to_string());
    for outcome in outcomes {
        match outcome {
            CandidateOutcome::Fit(out) => {
                if best
                    .as_ref()
                    .map(|b| out.marginal_bps > b.marginal_bps + 1e-6)
                    .unwrap_or(true)
                {
                    best = Some(*out);
                }
            }
            CandidateOutcome::Rejected(e) => last_err = e,
        }
    }
    let cache_after = oracle.cache_stats().unwrap_or_default();
    let cache = cache_after.since(&cache_before);
    match best {
        Some(mut out) => {
            out.telemetry = Some(SearchTelemetry {
                oracle_calls: oracle.calls(),
                cache_hits: cache.hits,
                cache_misses: cache.misses,
                lp_evals,
                pruned_candidates: pruned,
            });
            Ok(out)
        }
        None => Err(last_err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AlwaysFits;
    use crate::profiles::NfProfiles;
    use crate::topology::Topology;
    use lemur_core::chains::{canonical_chain, CanonicalChain};
    use lemur_core::graph::ChainSpec;
    use lemur_core::Slo;

    fn problem(which: &[CanonicalChain], delta: f64) -> PlacementProblem {
        let chains = which
            .iter()
            .map(|w| ChainSpec {
                name: format!("chain{}", w.index()),
                graph: canonical_chain(*w),
                slo: None,
                aggregate: None,
            })
            .collect::<Vec<_>>();
        let mut p = PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4());
        for i in 0..p.chains.len() {
            let base = p.base_rate_bps(i);
            p.chains[i].slo = Some(Slo::elastic_pipe(delta * base, 100e9));
        }
        p
    }

    #[test]
    fn pattern_enumeration_counts() {
        let p = problem(&[CanonicalChain::Chain3], 0.5);
        let pats = per_chain_patterns(&p, 4096);
        // Chain 3 free nodes: ACL {Pisa, Server}, LB {Pisa, Server};
        // Dedup/Limiter server-only, IPv4Fwd Pisa-only → 4 patterns.
        assert_eq!(pats[0].len(), 4);
    }

    #[test]
    fn pattern_cap_subsamples() {
        let p = problem(&[CanonicalChain::Chain1], 0.5);
        let pats = per_chain_patterns(&p, 16);
        assert_eq!(pats[0].len(), 16);
    }

    #[test]
    fn optimal_finds_feasible_chain3() {
        let p = problem(&[CanonicalChain::Chain3], 1.5);
        let out = optimal(&p, &AlwaysFits, BruteConfig::default()).unwrap();
        let t_min = p.chains[0].slo.unwrap().t_min_bps;
        assert!(out.chain_rates_bps[0] + 1.0 >= t_min);
        // δ=1.5 > single-subgroup capacity: the optimal placement must
        // offload ACL/LB to the switch and replicate Dedup.
        let dedup_sg = out
            .subgroups
            .iter()
            .find(|sg| {
                sg.nodes
                    .iter()
                    .any(|id| p.chains[0].graph.node(*id).kind == lemur_nf::NfKind::Dedup)
            })
            .unwrap();
        assert!(dedup_sg.cores >= 2);
    }

    #[test]
    fn optimal_beats_or_matches_single_patterns() {
        let p = problem(&[CanonicalChain::Chain2, CanonicalChain::Chain3], 1.0);
        let opt = optimal(&p, &AlwaysFits, BruteConfig::default()).unwrap();
        let hw = crate::baselines::hw_preferred(&p, &AlwaysFits);
        if let Ok(hw) = hw {
            assert!(
                opt.marginal_bps + 1.0 >= hw.marginal_bps,
                "optimal {:.2}G < hw {:.2}G",
                opt.marginal_bps / 1e9,
                hw.marginal_bps / 1e9
            );
        }
    }

    #[test]
    fn infeasible_when_demand_absurd() {
        let p = problem(&[CanonicalChain::Chain3], 100.0);
        assert!(optimal(&p, &AlwaysFits, BruteConfig::default()).is_err());
    }
}
