//! Core-allocation strategies (§3.2 "Searching through Core Allocations").

use crate::placement::{PlacementError, PlacementProblem, SubgroupPlan};
use crate::PACKET_BITS;
use lemur_core::Slo;

/// How cores are distributed over subgroups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStrategy {
    /// Lemur/Optimal: meet every chain's `t_min`, then water-fill spare
    /// cores onto whichever subgroup yields the largest marginal gain.
    WaterFill,
    /// The Greedy baseline: meet `t_min` using profiles, then give spare
    /// cores to chains *sequentially by index* until each hits `t_max`.
    SequentialGreedy,
    /// The HW Preferred baseline: one core per subgroup, spare cores
    /// round-robined across chains regardless of SLO.
    EvenSpare,
    /// The §5.3 "No Core Allocation" ablation: one core per subgroup.
    MinimalOnly,
}

/// Chain-rate capacity (bps) implied by the current allocation: min over
/// the chain's subgroups.
fn chain_capacity(problem: &PlacementProblem, subgroups: &[SubgroupPlan], chain: usize) -> f64 {
    subgroups
        .iter()
        .filter(|sg| sg.chain == chain)
        .map(|sg| sg.chain_rate_capacity_bps(problem.topology.servers[sg.server].clock_hz))
        .fold(f64::INFINITY, f64::min)
}

fn slo_of(problem: &PlacementProblem, chain: usize) -> Slo {
    problem.chains[chain].slo.unwrap_or(Slo::bulk())
}

/// Free worker cores per server under the current allocation.
fn free_cores(problem: &PlacementProblem, subgroups: &[SubgroupPlan]) -> Vec<isize> {
    let mut free: Vec<isize> = (0..problem.topology.servers.len())
        .map(|s| problem.topology.worker_cores(s) as isize)
        .collect();
    for sg in subgroups {
        free[sg.server] -= sg.cores as isize;
    }
    free
}

/// Index of the chain's current bottleneck subgroup that can still grow
/// (replicable, with a free core on its server).
fn growable_bottleneck(
    problem: &PlacementProblem,
    subgroups: &[SubgroupPlan],
    free: &[isize],
    chain: usize,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, sg) in subgroups.iter().enumerate() {
        if sg.chain != chain {
            continue;
        }
        let cap = sg.chain_rate_capacity_bps(problem.topology.servers[sg.server].clock_hz);
        if best.map(|(_, c)| cap < c).unwrap_or(true) {
            best = Some((i, cap));
        }
    }
    let (i, _) = best?;
    let sg = &subgroups[i];
    (sg.replicable && free[sg.server] > 0).then_some(i)
}

/// Allocate cores in place. Every subgroup starts at 1 core; failure to
/// fit the minimum allocation or to reach a chain's `t_min` is an error.
pub fn allocate(
    problem: &PlacementProblem,
    subgroups: &mut [SubgroupPlan],
    strategy: CoreStrategy,
) -> Result<(), PlacementError> {
    for sg in subgroups.iter_mut() {
        sg.cores = 1;
    }
    let mut free = free_cores(problem, subgroups);
    if free.iter().any(|f| *f < 0) {
        return Err(PlacementError::Infeasible(
            "more subgroups than worker cores".to_string(),
        ));
    }

    let n_chains = problem.chains.len();
    let tor_rate = match &problem.topology.tor {
        crate::topology::Tor::Pisa(m) => m.port_rate_bps,
        crate::topology::Tor::OpenFlow { rate_bps } => *rate_bps,
    };

    // Phase 1 (all but EvenSpare/MinimalOnly): reach every t_min.
    if matches!(
        strategy,
        CoreStrategy::WaterFill | CoreStrategy::SequentialGreedy
    ) {
        loop {
            let mut progressed = false;
            let mut all_met = true;
            for c in 0..n_chains {
                let need = slo_of(problem, c).t_min_bps;
                if chain_capacity(problem, subgroups, c) + 1e-6 >= need {
                    continue;
                }
                all_met = false;
                if let Some(i) = growable_bottleneck(problem, subgroups, &free, c) {
                    free[subgroups[i].server] -= 1;
                    subgroups[i].cores += 1;
                    progressed = true;
                }
            }
            if all_met {
                break;
            }
            if !progressed {
                // Find the first unmet chain for the error message.
                let c = (0..n_chains)
                    .find(|c| {
                        chain_capacity(problem, subgroups, *c) + 1e-6
                            < slo_of(problem, *c).t_min_bps
                    })
                    .unwrap_or(0);
                return Err(PlacementError::Infeasible(format!(
                    "chain {c}: cannot reach t_min ({:.2}G < {:.2}G)",
                    chain_capacity(problem, subgroups, c) / 1e9,
                    slo_of(problem, c).t_min_bps / 1e9
                )));
            }
        }
    }

    // Phase 2: spend spare cores.
    match strategy {
        CoreStrategy::MinimalOnly => {
            // Still must verify t_min with single cores.
            for c in 0..n_chains {
                if chain_capacity(problem, subgroups, c) + 1e-6 < slo_of(problem, c).t_min_bps {
                    return Err(PlacementError::Infeasible(format!(
                        "chain {c}: t_min unreachable without core scaling"
                    )));
                }
            }
        }
        CoreStrategy::WaterFill => {
            // Greedy water-filling on marginal gain.
            loop {
                let mut best: Option<(usize, f64)> = None;
                for c in 0..n_chains {
                    let slo = slo_of(problem, c);
                    let ceiling = slo.t_max_bps.min(tor_rate);
                    let now = chain_capacity(problem, subgroups, c).min(ceiling);
                    let Some(i) = growable_bottleneck(problem, subgroups, &free, c) else {
                        continue;
                    };
                    // Tentatively add a core.
                    subgroups[i].cores += 1;
                    let after = chain_capacity(problem, subgroups, c).min(ceiling);
                    subgroups[i].cores -= 1;
                    let gain = after - now;
                    if gain > 1e-6 && best.map(|(_, g)| gain > g).unwrap_or(true) {
                        best = Some((i, gain));
                    }
                }
                let Some((i, _)) = best else { break };
                free[subgroups[i].server] -= 1;
                subgroups[i].cores += 1;
            }
        }
        CoreStrategy::SequentialGreedy => {
            // Chains in index order, each filled to t_max before the next.
            for c in 0..n_chains {
                let ceiling = slo_of(problem, c).t_max_bps.min(tor_rate);
                loop {
                    let now = chain_capacity(problem, subgroups, c).min(ceiling);
                    if now + 1e-6 >= ceiling {
                        break;
                    }
                    let Some(i) = growable_bottleneck(problem, subgroups, &free, c) else {
                        break;
                    };
                    subgroups[i].cores += 1;
                    let after = chain_capacity(problem, subgroups, c).min(ceiling);
                    if after - now <= 1e-6 {
                        subgroups[i].cores -= 1;
                        break;
                    }
                    free[subgroups[i].server] -= 1;
                }
            }
        }
        CoreStrategy::EvenSpare => {
            // Round-robin spare cores across chains, each chain growing its
            // bottleneck; stop when nothing can grow.
            loop {
                let mut gave_any = false;
                for c in 0..n_chains {
                    if let Some(i) = growable_bottleneck(problem, subgroups, &free, c) {
                        // Only if it actually improves (avoid burning cores
                        // on a non-bottleneck shape).
                        let now = chain_capacity(problem, subgroups, c);
                        subgroups[i].cores += 1;
                        let after = chain_capacity(problem, subgroups, c);
                        if after - now > 1e-6 && after <= 2.0 * tor_rate {
                            free[subgroups[i].server] -= 1;
                            gave_any = true;
                        } else {
                            subgroups[i].cores -= 1;
                        }
                    }
                }
                if !gave_any {
                    break;
                }
            }
            // EvenSpare ignores SLOs while allocating, but feasibility
            // still requires t_min afterwards.
            for c in 0..n_chains {
                if chain_capacity(problem, subgroups, c) + 1e-6 < slo_of(problem, c).t_min_bps {
                    return Err(PlacementError::Infeasible(format!(
                        "chain {c}: t_min unmet under even-spare allocation"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Analytic chain-rate estimate for a (possibly partial) allocation,
/// ignoring link constraints — used by search heuristics for cheap
/// ranking.
pub fn quick_estimate(problem: &PlacementProblem, subgroups: &[SubgroupPlan]) -> f64 {
    (0..problem.chains.len())
        .map(|c| {
            let slo = slo_of(problem, c);
            chain_capacity(problem, subgroups, c).min(slo.t_max_bps) - slo.t_min_bps
        })
        .sum()
}

/// Per-core packets/s for a subgroup (helper for tests and diagnostics).
pub fn per_core_pps(problem: &PlacementProblem, sg: &SubgroupPlan) -> f64 {
    problem.topology.servers[sg.server].clock_hz / sg.cycles
}

/// Per-core chain-rate bps for a subgroup.
pub fn per_core_bps(problem: &PlacementProblem, sg: &SubgroupPlan) -> f64 {
    per_core_pps(problem, sg) * PACKET_BITS / sg.fraction.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{NfProfiles, Platform};
    use crate::topology::Topology;
    use lemur_core::chains::{canonical_chain, CanonicalChain};
    use lemur_core::graph::ChainSpec;
    use lemur_core::Slo;
    use lemur_nf::NfKind;
    use std::collections::BTreeMap;

    fn problem(t_mins: &[(CanonicalChain, f64)]) -> PlacementProblem {
        let chains = t_mins
            .iter()
            .map(|(w, t)| ChainSpec {
                name: format!("chain{}", w.index()),
                graph: canonical_chain(*w),
                slo: Some(Slo::elastic_pipe(*t, 100e9)),
                aggregate: None,
            })
            .collect();
        PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4())
    }

    fn hw_assignment(p: &PlacementProblem) -> crate::Assignment {
        p.chains
            .iter()
            .map(|c| {
                c.graph
                    .nodes()
                    .map(|(id, n)| {
                        let plat = if crate::profiles::capabilities(n.kind)
                            .contains(&crate::profiles::PlatformClass::Pisa)
                        {
                            Platform::Pisa
                        } else {
                            Platform::Server(0)
                        };
                        (id, plat)
                    })
                    .collect::<BTreeMap<_, _>>()
            })
            .collect()
    }

    #[test]
    fn waterfill_replicates_dedup_for_high_tmin() {
        // Chain 3, HW-preferred: only Dedup/Limiter/UrlFilter-class NFs on
        // the server. Demand 2× the single-core Dedup rate.
        let p = problem(&[(CanonicalChain::Chain3, 1.2e9)]);
        let a = hw_assignment(&p);
        let mut sgs = p.form_subgroups(&a);
        allocate(&p, &mut sgs, CoreStrategy::WaterFill).unwrap();
        let dedup_sg = sgs
            .iter()
            .find(|sg| {
                sg.nodes
                    .iter()
                    .any(|id| p.chains[0].graph.node(*id).kind == NfKind::Dedup)
            })
            .unwrap();
        assert!(
            dedup_sg.cores >= 2,
            "dedup must be replicated: {}",
            dedup_sg.cores
        );
    }

    #[test]
    fn unreplicable_bottleneck_is_infeasible() {
        // SW-preferred chain 3 is one subgroup containing Limiter — 1 core
        // forever; a t_min above that capacity cannot be met.
        let p = problem(&[(CanonicalChain::Chain3, 5e9)]);
        let a: crate::Assignment = p
            .chains
            .iter()
            .map(|c| {
                c.graph
                    .nodes()
                    .map(|(id, n)| {
                        let plat = if n.kind == NfKind::Ipv4Fwd {
                            Platform::Pisa
                        } else {
                            Platform::Server(0)
                        };
                        (id, plat)
                    })
                    .collect::<BTreeMap<_, _>>()
            })
            .collect();
        let mut sgs = p.form_subgroups(&a);
        let err = allocate(&p, &mut sgs, CoreStrategy::WaterFill).unwrap_err();
        assert!(matches!(err, PlacementError::Infeasible(_)));
    }

    #[test]
    fn minimal_only_keeps_single_cores() {
        let p = problem(&[(CanonicalChain::Chain3, 1e8)]);
        let a = hw_assignment(&p);
        let mut sgs = p.form_subgroups(&a);
        allocate(&p, &mut sgs, CoreStrategy::MinimalOnly).unwrap();
        assert!(sgs.iter().all(|sg| sg.cores == 1));
    }

    #[test]
    fn sequential_greedy_favors_earlier_chains() {
        // Two copies of chain 3 under HW-preferred; chain 0 should end up
        // with at least as many Dedup cores as chain 1.
        let p = problem(&[(CanonicalChain::Chain3, 5e8), (CanonicalChain::Chain3, 5e8)]);
        let a = hw_assignment(&p);
        let mut sgs = p.form_subgroups(&a);
        allocate(&p, &mut sgs, CoreStrategy::SequentialGreedy).unwrap();
        let cores_of = |chain: usize| -> usize {
            sgs.iter()
                .filter(|sg| sg.chain == chain)
                .map(|sg| sg.cores)
                .sum()
        };
        assert!(
            cores_of(0) >= cores_of(1),
            "{} vs {}",
            cores_of(0),
            cores_of(1)
        );
    }

    #[test]
    fn core_budget_respected() {
        let p = problem(&[(CanonicalChain::Chain3, 5e8), (CanonicalChain::Chain4, 5e8)]);
        let a = hw_assignment(&p);
        for strategy in [
            CoreStrategy::WaterFill,
            CoreStrategy::SequentialGreedy,
            CoreStrategy::EvenSpare,
            CoreStrategy::MinimalOnly,
        ] {
            let mut sgs = p.form_subgroups(&a);
            if allocate(&p, &mut sgs, strategy).is_ok() {
                let used: usize = sgs.iter().map(|sg| sg.cores).sum();
                assert!(
                    used <= p.topology.worker_cores(0),
                    "{strategy:?} used {used} cores"
                );
            }
        }
    }
}
