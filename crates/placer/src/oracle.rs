//! The stage-feasibility oracle.
//!
//! "Off-the-shelf solvers cannot determine if a set of NF chains respects
//! hardware constraints, since that requires actually invoking the
//! hardware-specific compiler" (§1). The Placer therefore consults a
//! [`StageOracle`]: the production implementation lives in
//! `lemur-metacompiler` (it synthesizes the unified P4 program and runs
//! `lemur-p4sim`'s stage-packing compiler); [`ModelOracle`] is the cheap
//! per-NF approximation used in unit tests and in the "analytic estimate"
//! comparisons.

use crate::cache::CacheStats;
use crate::placement::{Assignment, PlacementProblem};
use crate::profiles::Platform;
use lemur_nf::NfKind;
use std::sync::atomic::{AtomicU64, Ordering};

/// Verdict of a stage-feasibility check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageVerdict {
    /// Fits; reports stages used.
    Fits { stages: usize },
    /// Does not fit; reports the shortfall.
    OutOfStages { required: usize, available: usize },
}

/// A stage-feasibility oracle over switch-resident NFs.
///
/// `Sync` because the parallel search fans candidate checks out across the
/// [`crate::parallel`] pool, sharing one oracle by reference.
pub trait StageOracle: Sync {
    /// Check the PISA program implied by `assignment` for `problem`.
    fn check(&self, problem: &PlacementProblem, assignment: &Assignment) -> StageVerdict;

    /// Memoization counters, if this oracle caches verdicts (see
    /// `lemur-metacompiler`'s cached compiler oracle). `None` for
    /// uncached oracles.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }
}

/// References to oracles are oracles, so searches can wrap a borrowed
/// `&dyn StageOracle` in adapters like [`CountingOracle`].
impl<O: StageOracle + ?Sized> StageOracle for &O {
    fn check(&self, problem: &PlacementProblem, assignment: &Assignment) -> StageVerdict {
        (**self).check(problem, assignment)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        (**self).cache_stats()
    }
}

/// Wraps any oracle and counts invocations, so searches can report how
/// often the (expensive) compiler was consulted — the accounting
/// `placement.rs` promises ("algorithms call that themselves so they can
/// control how often the compiler is invoked").
#[derive(Debug, Default)]
pub struct CountingOracle<O> {
    inner: O,
    calls: AtomicU64,
}

impl<O: StageOracle> CountingOracle<O> {
    /// Wrap `inner`, starting the counter at zero.
    pub fn new(inner: O) -> CountingOracle<O> {
        CountingOracle {
            inner,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of `check` calls observed so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: StageOracle> StageOracle for CountingOracle<O> {
    fn check(&self, problem: &PlacementProblem, assignment: &Assignment) -> StageVerdict {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.check(problem, assignment)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache_stats()
    }
}

/// A simple analytic model: each switch NF kind costs a fixed number of
/// stages; branch-exclusive NFs share. This over-approximates (it cannot
/// see the packing the real compiler does), mirroring the conservative
/// estimators the paper found wasteful (§5.2).
#[derive(Debug, Clone)]
pub struct ModelOracle {
    /// Stages the coordination logic always occupies (classification +
    /// NSH encap/decap; "we have to burn two P4 stages", §5.3 — plus one
    /// steering stage).
    pub overhead_stages: usize,
    pub available: usize,
}

impl Default for ModelOracle {
    fn default() -> Self {
        ModelOracle {
            overhead_stages: 3,
            available: 12,
        }
    }
}

/// Analytic per-NF stage cost of a switch-resident NF.
pub fn model_stage_cost(kind: NfKind) -> usize {
    match kind {
        NfKind::Nat => 2, // lookup + rewrite
        NfKind::Lb => 2,  // hash-select + rewrite
        NfKind::Acl => 1,
        NfKind::Ipv4Fwd => 1,
        NfKind::Tunnel | NfKind::Detunnel => 1,
        NfKind::Match => 1,
        _ => 1,
    }
}

impl StageOracle for ModelOracle {
    fn check(&self, problem: &PlacementProblem, assignment: &Assignment) -> StageVerdict {
        // Per chain: sum the stage costs along the *longest* decomposed
        // path (exclusive branches overlay). Chains share the pipeline, so
        // chain costs add, minus the shared overhead charged once.
        let mut total = self.overhead_stages;
        for (ci, chain) in problem.chains.iter().enumerate() {
            let per_path: usize = chain
                .graph
                .decompose()
                .iter()
                .map(|lc| {
                    lc.nodes
                        .iter()
                        .filter(|id| matches!(assignment[ci].get(id), Some(Platform::Pisa)))
                        .map(|id| model_stage_cost(chain.graph.node(*id).kind))
                        .sum::<usize>()
                })
                .max()
                .unwrap_or(0);
            total += per_path;
        }
        if total <= self.available {
            StageVerdict::Fits { stages: total }
        } else {
            StageVerdict::OutOfStages {
                required: total,
                available: self.available,
            }
        }
    }
}

/// An oracle that accepts everything — used where the ToR is OpenFlow (no
/// stage constraint) or in tests isolating other mechanisms.
#[derive(Debug, Clone, Default)]
pub struct AlwaysFits;

impl StageOracle for AlwaysFits {
    fn check(&self, _problem: &PlacementProblem, _assignment: &Assignment) -> StageVerdict {
        StageVerdict::Fits { stages: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::NfProfiles;
    use crate::topology::Topology;
    use lemur_core::chains::{canonical_chain, extreme_nat_chain, CanonicalChain};
    use lemur_core::graph::ChainSpec;
    use lemur_core::Slo;
    use std::collections::BTreeMap;

    fn all_pisa_possible(problem: &PlacementProblem) -> Assignment {
        problem
            .chains
            .iter()
            .map(|c| {
                c.graph
                    .nodes()
                    .map(|(id, n)| {
                        let plat = if crate::profiles::capabilities(n.kind)
                            .contains(&crate::profiles::PlatformClass::Pisa)
                        {
                            Platform::Pisa
                        } else {
                            Platform::Server(0)
                        };
                        (id, plat)
                    })
                    .collect::<BTreeMap<_, _>>()
            })
            .collect()
    }

    #[test]
    fn small_chain_fits() {
        let p = PlacementProblem::new(
            vec![ChainSpec {
                name: "c3".into(),
                graph: canonical_chain(CanonicalChain::Chain3),
                slo: Some(Slo::bulk()),
                aggregate: None,
            }],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        let a = all_pisa_possible(&p);
        match ModelOracle::default().check(&p, &a) {
            StageVerdict::Fits { stages } => assert!(stages <= 12, "{stages}"),
            other => panic!("expected fit, got {other:?}"),
        }
    }

    #[test]
    fn extreme_nat_chain_overflows_model() {
        // The conservative model cannot pack 11 exclusive NATs; the §5.2
        // experiment shows why the real compiler matters.
        let p = PlacementProblem::new(
            vec![ChainSpec {
                name: "extreme".into(),
                graph: extreme_nat_chain(11),
                slo: Some(Slo::bulk()),
                aggregate: None,
            }],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        let a = all_pisa_possible(&p);
        // The model overlays exclusive branches (max, not sum): one NAT
        // path = match(1)+nat(2)+fwd(1) = 4 + overhead 3 = 7, so it *fits*
        // under the model; the true blow-up comes from per-stage resource
        // limits only the real compiler sees. Assert the model's verdict
        // here; the metacompiler integration test asserts the real one.
        assert!(matches!(
            ModelOracle::default().check(&p, &a),
            StageVerdict::Fits { .. }
        ));
    }

    #[test]
    fn many_chains_exhaust_stages() {
        let chains: Vec<ChainSpec> = (0..6)
            .map(|i| ChainSpec {
                name: format!("c{i}"),
                graph: canonical_chain(CanonicalChain::Chain2),
                slo: Some(Slo::bulk()),
                aggregate: None,
            })
            .collect();
        let p = PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4());
        let a = all_pisa_possible(&p);
        assert!(matches!(
            ModelOracle::default().check(&p, &a),
            StageVerdict::OutOfStages { .. }
        ));
    }

    #[test]
    fn always_fits_is_permissive() {
        let p = PlacementProblem::new(
            vec![ChainSpec {
                name: "x".into(),
                graph: extreme_nat_chain(20),
                slo: Some(Slo::bulk()),
                aggregate: None,
            }],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        let a = all_pisa_possible(&p);
        assert_eq!(AlwaysFits.check(&p, &a), StageVerdict::Fits { stages: 0 });
    }
}
