//! NF profiles: platform capabilities (Table 3) and cycle costs (Table 4).

use lemur_nf::{NfKind, NfParams, ParamValue};

/// Where an NF instance can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// The PISA ToR switch.
    Pisa,
    /// A server (index into the topology's server list).
    Server(usize),
    /// A SmartNIC (index into the topology's NIC list).
    SmartNic(usize),
    /// The OpenFlow switch.
    OpenFlow,
}

impl Platform {
    /// True for any server platform.
    pub fn is_server(&self) -> bool {
        matches!(self, Platform::Server(_))
    }
}

/// Platform *classes* for the capability matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformClass {
    Server,
    Pisa,
    SmartNic,
    OpenFlow,
}

impl Platform {
    /// The class of a concrete platform.
    pub fn class(&self) -> PlatformClass {
        match self {
            Platform::Pisa => PlatformClass::Pisa,
            Platform::Server(_) => PlatformClass::Server,
            Platform::SmartNic(_) => PlatformClass::SmartNic,
            Platform::OpenFlow => PlatformClass::OpenFlow,
        }
    }
}

/// Table 3: which implementations exist per NF.
///
/// "We artificially limit IPv4Fwd as P4-only for the sake of evaluation" —
/// reproduced here by restricting IPv4Fwd to `Pisa` in the default
/// matrix (the C++/eBPF/OF implementations exist in the library, but the
/// Placer treats IPv4Fwd as P4-only to match the paper's experiments).
pub fn capabilities(kind: NfKind) -> &'static [PlatformClass] {
    use PlatformClass::*;
    match kind {
        NfKind::Encrypt => &[Server],
        NfKind::Decrypt => &[Server],
        NfKind::FastEncrypt => &[Server, SmartNic],
        NfKind::Dedup => &[Server],
        NfKind::Tunnel => &[Server, Pisa, SmartNic, OpenFlow],
        NfKind::Detunnel => &[Server, Pisa, SmartNic, OpenFlow],
        // Artificially P4-only (Table 3 footnote).
        NfKind::Ipv4Fwd => &[Pisa],
        NfKind::Limiter => &[Server],
        NfKind::UrlFilter => &[Server],
        NfKind::Monitor => &[Server, OpenFlow],
        NfKind::Nat => &[Server, Pisa],
        NfKind::Lb => &[Server, Pisa, SmartNic],
        NfKind::Match => &[Server, Pisa, SmartNic],
        NfKind::Acl => &[Server, Pisa, SmartNic, OpenFlow],
    }
}

/// The full Table 3 availability (used outside the evaluation-parity
/// setting): IPv4Fwd everywhere.
pub fn capabilities_full(kind: NfKind) -> &'static [PlatformClass] {
    use PlatformClass::*;
    match kind {
        NfKind::Ipv4Fwd => &[Server, Pisa, SmartNic, OpenFlow],
        other => capabilities(other),
    }
}

/// The two NFs Table 3 bolds as non-replicable.
pub fn is_replicable(kind: NfKind) -> bool {
    !matches!(kind, NfKind::Limiter | NfKind::Nat)
}

/// Where cycle costs come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileSource {
    /// Table 4-derived defaults plus calibrated costs for the remaining
    /// NFs (worst-case, as the Placer provisions).
    PaperTable4,
    /// Same shape but every NF charged the mean cost — the §5.3
    /// "No Profiling" ablation input.
    Uniform,
}

/// Cycle-cost profiles for server (and SmartNIC) execution.
#[derive(Debug, Clone)]
pub struct NfProfiles {
    source: ProfileSource,
    /// Multiplier applied to all costs — the §5.2 profiling-error
    /// experiment scales profiles down by 1–10%.
    pub error_factor: f64,
    /// Use the full Table 3 capability matrix instead of the evaluation
    /// variant that artificially limits IPv4Fwd to P4 (the OpenFlow
    /// experiment needs IPv4Fwd's OF implementation, §5.3).
    pub full_capabilities: bool,
}

impl NfProfiles {
    /// Default (paper-faithful) profiles.
    pub fn table4() -> NfProfiles {
        NfProfiles {
            source: ProfileSource::PaperTable4,
            error_factor: 1.0,
            full_capabilities: false,
        }
    }

    /// Table 4 profiles with the *full* capability matrix (no artificial
    /// IPv4Fwd restriction).
    pub fn table4_full_caps() -> NfProfiles {
        NfProfiles {
            full_capabilities: true,
            ..NfProfiles::table4()
        }
    }

    /// The No-Profiling ablation: every NF appears equally expensive.
    pub fn uniform() -> NfProfiles {
        NfProfiles {
            source: ProfileSource::Uniform,
            error_factor: 1.0,
            full_capabilities: false,
        }
    }

    /// The capability matrix in effect for this profile configuration.
    pub fn capabilities(&self, kind: NfKind) -> &'static [PlatformClass] {
        if self.full_capabilities {
            capabilities_full(kind)
        } else {
            capabilities(kind)
        }
    }

    /// Scale all profiled costs (e.g. `0.92` = 8% under-estimate).
    pub fn with_error(mut self, factor: f64) -> NfProfiles {
        self.error_factor = factor;
        self
    }

    /// Worst-case server cycles per packet for an NF instance.
    ///
    /// Parameter-sensitive models follow §3.2: ACL cost is linear in table
    /// size ("we profile cycle counts for different sizes and use a linear
    /// model"), NAT in pool size; Dedup uses a worst-case constant.
    pub fn server_cycles(&self, kind: NfKind, params: &NfParams) -> f64 {
        let base = match self.source {
            ProfileSource::Uniform => {
                // Mean of the Table 4-derived costs over the 14 NFs.
                return 4000.0 * self.error_factor;
            }
            ProfileSource::PaperTable4 => match kind {
                // Table 4 worst cases (same-NUMA Max column).
                NfKind::Encrypt => 8777.0,
                NfKind::Dedup => 30867.0,
                NfKind::Acl => {
                    // Linear model fit through Table 4's 1024-rule point.
                    let rules = acl_rules(params);
                    300.0 + 3.46 * rules as f64
                }
                NfKind::Nat => {
                    // Linear model fit through Table 4's 12000-entry point.
                    let entries = params.int_or("entries", 12_000).max(1) as f64;
                    417.0 + 0.005 * entries
                }
                // Calibrated costs for NFs Table 4 omits.
                NfKind::Decrypt => 8600.0,
                NfKind::FastEncrypt => 2800.0,
                NfKind::Tunnel => 170.0,
                NfKind::Detunnel => 160.0,
                NfKind::Ipv4Fwd => 200.0,
                NfKind::Limiter => 180.0,
                NfKind::UrlFilter => 2500.0,
                NfKind::Monitor => 450.0,
                NfKind::Lb => 550.0,
                NfKind::Match => 220.0,
            },
        };
        base * self.error_factor
    }

    /// SmartNIC cycles per packet, if the NF has an eBPF implementation.
    /// The ChaCha offload is "more than 10× faster than on the server"
    /// (§5.3).
    pub fn smartnic_cycles(&self, kind: NfKind, params: &NfParams) -> Option<f64> {
        if !capabilities(kind).contains(&PlatformClass::SmartNic) {
            return None;
        }
        let server = self.server_cycles(kind, params);
        let factor = match kind {
            NfKind::FastEncrypt => 12.0, // >10× faster
            _ => 1.5,                    // modest offload win for simple NFs
        };
        Some(server / factor)
    }
}

fn acl_rules(params: &NfParams) -> i64 {
    if let Some(list) = params.get("rules").and_then(ParamValue::as_list) {
        if !list.is_empty() {
            return list.len() as i64;
        }
    }
    params.int_or("num_rules", 1024).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_table3() {
        use PlatformClass::*;
        assert_eq!(capabilities(NfKind::Encrypt), &[Server]);
        assert!(capabilities(NfKind::Acl).contains(&Pisa));
        assert!(capabilities(NfKind::Acl).contains(&OpenFlow));
        assert!(capabilities(NfKind::FastEncrypt).contains(&SmartNic));
        assert!(!capabilities(NfKind::FastEncrypt).contains(&Pisa));
        assert_eq!(capabilities(NfKind::Ipv4Fwd), &[Pisa]); // artificial limit
        assert!(capabilities_full(NfKind::Ipv4Fwd).contains(&Server));
        assert_eq!(capabilities(NfKind::Dedup), &[Server]);
        assert!(capabilities(NfKind::Nat).contains(&Pisa));
        assert!(!capabilities(NfKind::Nat).contains(&SmartNic));
    }

    #[test]
    fn replicability_bold_nfs() {
        assert!(!is_replicable(NfKind::Limiter));
        assert!(!is_replicable(NfKind::Nat));
        assert!(is_replicable(NfKind::Dedup));
        assert!(is_replicable(NfKind::Encrypt));
    }

    #[test]
    fn table4_anchor_points() {
        let p = NfProfiles::table4();
        let none = NfParams::new();
        assert_eq!(p.server_cycles(NfKind::Encrypt, &none), 8777.0);
        assert_eq!(p.server_cycles(NfKind::Dedup, &none), 30867.0);
        // ACL at 1024 rules ≈ Table 4's 3841–4008 band.
        let acl = p.server_cycles(NfKind::Acl, &none);
        assert!((3700.0..4100.0).contains(&acl), "{acl}");
        // NAT at 12000 entries ≈ 463–507 band.
        let nat = p.server_cycles(NfKind::Nat, &none);
        assert!((450.0..510.0).contains(&nat), "{nat}");
    }

    #[test]
    fn acl_linear_in_rules() {
        let p = NfProfiles::table4();
        let mut small = NfParams::new();
        small.set("num_rules", ParamValue::Int(64));
        let mut big = NfParams::new();
        big.set("num_rules", ParamValue::Int(4096));
        let cs = p.server_cycles(NfKind::Acl, &small);
        let cb = p.server_cycles(NfKind::Acl, &big);
        assert!(cb > cs * 4.0, "linear growth expected: {cs} vs {cb}");
        // Rules list length takes precedence over num_rules default.
        let mut listed = NfParams::new();
        listed.set(
            "rules",
            ParamValue::List(vec![ParamValue::Dict(Default::default()); 10]),
        );
        assert!(p.server_cycles(NfKind::Acl, &listed) < cs);
    }

    #[test]
    fn uniform_profile_flattens() {
        let p = NfProfiles::uniform();
        let none = NfParams::new();
        assert_eq!(
            p.server_cycles(NfKind::Dedup, &none),
            p.server_cycles(NfKind::Tunnel, &none)
        );
    }

    #[test]
    fn error_factor_scales() {
        let p = NfProfiles::table4().with_error(0.9);
        let none = NfParams::new();
        assert!((p.server_cycles(NfKind::Encrypt, &none) - 8777.0 * 0.9).abs() < 1e-9);
    }

    #[test]
    fn smartnic_chacha_speedup() {
        let p = NfProfiles::table4();
        let none = NfParams::new();
        let server = p.server_cycles(NfKind::FastEncrypt, &none);
        let nic = p.smartnic_cycles(NfKind::FastEncrypt, &none).unwrap();
        assert!(
            server / nic > 10.0,
            "must be >10x faster: {server} vs {nic}"
        );
        assert!(p.smartnic_cycles(NfKind::Dedup, &none).is_none());
    }
}
