//! # lemur-placer
//!
//! Lemur's Placer (§3): given NF chains with SLOs and a rack topology, find
//! a placement of every NF onto {PISA switch, server cores, SmartNIC,
//! OpenFlow switch} that satisfies every chain's `t_min` (and optional
//! `d_max`) while maximizing aggregate *marginal* throughput.
//!
//! Components:
//!
//! * [`profiles`] — the Table 3 capability matrix and the cycle-cost
//!   profiles (Table 4 defaults, linear state-size models, worst-case
//!   costs, and a measured source fed by `lemur-bess`'s profiler).
//! * [`topology`] — the rack: one ToR (PISA or OpenFlow), servers,
//!   SmartNICs, link capacities.
//! * [`placement`] — assignments, run-to-completion subgroup formation,
//!   and the evaluator that turns (assignment, core allocation) into
//!   predicted chain rates via the marginal-throughput LP.
//! * [`corealloc`] — core-allocation strategies (water-filling for Lemur,
//!   sequential for Greedy, even-split for HW Preferred, none for the
//!   ablation).
//! * [`oracle`] — the [`oracle::StageOracle`] abstraction: the Placer
//!   *invokes the P4 compiler* for stage feasibility instead of estimating
//!   (§3.2); `lemur-metacompiler` provides the real implementation, and
//!   [`oracle::ModelOracle`] provides a per-NF-cost approximation for
//!   tests.
//! * [`heuristic`] — Lemur's fast 3-step heuristic (stage-constrained
//!   baseline → subgroup coalescing → LP).
//! * [`brute`] — brute-force/Optimal placement (pattern enumeration ×
//!   core allocations × LP, ranked, first fit through the stage oracle).
//! * [`baselines`] — HW Preferred, SW Preferred, Minimum Bounce, Greedy.
//! * [`ablations`] — No Profiling and No Core Allocation (§5.3, Fig. 2f).
//! * [`hierarchy`] — hierarchical fleet placement: cross-PoP chain
//!   assignment (greedy by priority, least-loaded PoP first, shed by
//!   ascending priority) over per-PoP subproblems solved by [`heuristic`].
//! * [`parallel`] — deterministic work-sharing thread pool (ordered
//!   reduction: results are bit-identical to the sequential path
//!   regardless of worker count).
//! * [`cache`] — sharded memoized stage-oracle cache keyed by a canonical
//!   fingerprint of the synthesized switch program.

pub mod ablations;
pub mod baselines;
pub mod brute;
pub mod cache;
pub mod corealloc;
pub mod heuristic;
pub mod hierarchy;
pub mod oracle;
pub mod parallel;
pub mod placement;
pub mod profiles;
pub mod repair;
pub mod topology;

pub use cache::{CacheStats, StageCache};
pub use hierarchy::{assign_chains, place_fleet, FleetPlacement, PopPlan};
pub use oracle::{CountingOracle, ModelOracle, StageOracle};
pub use parallel::{parallel_flat_map, parallel_map, Workers};
pub use placement::{Assignment, EvaluatedPlacement, PlacementError, PlacementProblem};
pub use profiles::{NfProfiles, Platform, ProfileSource};
pub use repair::{repair, repair_assignment, RepairMode, RepairResult};
pub use topology::{ResourceMask, SmartNicSpec, Topology};

/// Default simulated packet size used to convert packets/s to bits/s.
pub const PACKET_BYTES: f64 = 1500.0;
/// Bits per simulated packet.
pub const PACKET_BITS: f64 = PACKET_BYTES * 8.0;
/// NSH decap+encap overhead charged once per server subgroup visit (§5.3:
/// "our BESS cycle cost overheads for these are modest at about 220
/// cycles").
pub const NSH_OVERHEAD_CYCLES: f64 = 220.0;
/// Per-packet steering cost when a subgroup is replicated across cores
/// (§5.3: "about 180 cycles to load-balance packets").
pub const REPLICATION_OVERHEAD_CYCLES: f64 = 180.0;
