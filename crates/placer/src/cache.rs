//! Sharded memoized stage-oracle cache.
//!
//! "Off-the-shelf solvers cannot determine if a set of NF chains respects
//! hardware constraints, since that requires actually invoking the
//! hardware-specific compiler" (§1) — so the compiler invocation is the
//! search's hot path. Candidates that differ only in *server* choices
//! synthesize the **same** switch program (the PISA side sees only which
//! NFs live on the switch), and δ-sweeps, repeated repair passes, and the
//! heuristic's demotion loop re-probe programs they have compiled before.
//! The cache memoizes verdicts keyed by a canonical fingerprint of the
//! synthesized program (see `lemur_p4sim::ir::P4Program::fingerprint`), so
//! a repeated probe skips stage packing entirely.
//!
//! Correctness contract: the verdict stored for a fingerprint must equal
//! what a fresh compile of the same program returns — guaranteed because
//! the fingerprint covers every compile-relevant feature (table keys,
//! match kinds, sizes, action writes, control structure, hardware model)
//! and compilation is a pure function of those. A property test in
//! `lemur-metacompiler` (`proptest_cache.rs`) checks the equivalence on
//! random chains and placements.
//!
//! Determinism contract: a shard's value is computed at most once, while
//! the shard lock is held. Total hits/misses over a search are therefore
//! `accesses − distinct keys` / `distinct keys` — both schedule-independent
//! — so telemetry is identical across worker counts.

use crate::oracle::StageVerdict;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards. Compile calls under a shard
/// lock serialize only on fingerprint-shard collisions.
const SHARDS: usize = 16;

/// Cache occupancy and effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that ran the compiler and populated the cache.
    pub misses: u64,
    /// Distinct programs currently cached.
    pub entries: u64,
}

impl CacheStats {
    /// Hit fraction in [0, 1]; 0 when the cache was never probed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference since an earlier snapshot (entries reported
    /// from the later snapshot).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            entries: self.entries,
        }
    }
}

/// A sharded fingerprint → [`StageVerdict`] map, safe to share across the
/// search pool's workers.
#[derive(Debug, Default)]
pub struct StageCache {
    shards: [Mutex<HashMap<u128, StageVerdict>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StageCache {
    /// An empty cache.
    pub fn new() -> StageCache {
        StageCache::default()
    }

    /// Look up `key`, computing and inserting with `compute` on a miss.
    /// `compute` runs at most once per key cache-wide: the shard lock is
    /// held across the computation, so concurrent probes of the same
    /// program never both invoke the compiler.
    pub fn get_or_insert_with(
        &self,
        key: u128,
        compute: impl FnOnce() -> StageVerdict,
    ) -> StageVerdict {
        let shard = &self.shards[(key % SHARDS as u128) as usize];
        let mut map = shard.lock().expect("stage-cache shard poisoned");
        if let Some(v) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        let v = compute();
        map.insert(key, v.clone());
        self.misses.fetch_add(1, Ordering::Relaxed);
        v
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("stage-cache shard poisoned").len() as u64)
                .sum(),
        }
    }

    /// Drop every entry and zero the counters (fresh-run isolation for
    /// benchmarks and determinism tests).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("stage-cache shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{parallel_map, Workers};
    use std::sync::atomic::AtomicU64;

    fn fits(stages: usize) -> StageVerdict {
        StageVerdict::Fits { stages }
    }

    #[test]
    fn second_probe_hits() {
        let cache = StageCache::new();
        assert_eq!(cache.get_or_insert_with(42, || fits(5)), fits(5));
        assert_eq!(
            cache.get_or_insert_with(42, || unreachable!("must not recompute")),
            fits(5)
        );
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = StageCache::new();
        for k in 0..100u128 {
            cache.get_or_insert_with(k, || fits(k as usize));
        }
        for k in 0..100u128 {
            assert_eq!(cache.get_or_insert_with(k, || fits(9999)), fits(k as usize));
        }
        assert_eq!(cache.stats().entries, 100);
    }

    #[test]
    fn compute_runs_once_under_contention() {
        let cache = StageCache::new();
        let computes = AtomicU64::new(0);
        let items: Vec<u128> = (0..400).map(|i| i % 10).collect();
        parallel_map(Workers::new(8), &items, |_, &k| {
            cache.get_or_insert_with(k, || {
                computes.fetch_add(1, Ordering::Relaxed);
                fits(k as usize)
            })
        });
        assert_eq!(computes.load(Ordering::Relaxed), 10);
        let s = cache.stats();
        assert_eq!(s.misses, 10);
        assert_eq!(s.hits, 390);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = StageCache::new();
        cache.get_or_insert_with(7, || fits(1));
        cache.get_or_insert_with(7, || fits(1));
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn stats_delta_since_snapshot() {
        let cache = StageCache::new();
        cache.get_or_insert_with(1, || fits(1));
        let snap = cache.stats();
        cache.get_or_insert_with(1, || fits(1));
        cache.get_or_insert_with(2, || fits(2));
        let d = cache.stats().since(&snap);
        assert_eq!((d.hits, d.misses), (1, 1));
    }
}
