//! The §5.3 component ablations (Figure 2f).

use crate::corealloc::CoreStrategy;
use crate::oracle::StageOracle;
use crate::placement::{EvaluatedPlacement, PlacementError, PlacementProblem};
use crate::profiles::NfProfiles;

/// "No Profiling": the placement (and its core allocation) is decided as
/// if every NF had the same cycle cost; the reported rates are then
/// recomputed under the *true* profiles. "Because this variant is unable
/// to distinguish between expensive and cheap NFs, it generally has lower
/// marginal throughput, and becomes infeasible for higher values of δ."
pub fn no_profiling(
    problem: &PlacementProblem,
    oracle: &dyn StageOracle,
) -> Result<EvaluatedPlacement, PlacementError> {
    let blind = PlacementProblem::new(
        problem.chains.clone(),
        problem.topology.clone(),
        NfProfiles::uniform(),
    );
    let decided = crate::heuristic::place(&blind, oracle)?;
    // Re-evaluate the blind decision under real profiles, keeping both the
    // assignment and the (mis-)allocated cores.
    let cores: Vec<usize> = decided.subgroups.iter().map(|sg| sg.cores).collect();
    let mut out = problem.evaluate_with_cores(&decided.assignment, &cores)?;
    out.stages_used = decided.stages_used;
    Ok(out)
}

/// "No Core Allocation": no extra cores beyond one per subgroup.
/// "This variant can only satisfy SLOs at δ = 0.5."
pub fn no_core_allocation(
    problem: &PlacementProblem,
    oracle: &dyn StageOracle,
) -> Result<EvaluatedPlacement, PlacementError> {
    crate::heuristic::place_with_strategy(problem, oracle, CoreStrategy::MinimalOnly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AlwaysFits;
    use crate::topology::Topology;
    use lemur_core::chains::{canonical_chain, CanonicalChain};
    use lemur_core::graph::ChainSpec;
    use lemur_core::Slo;

    fn problem(delta: f64) -> PlacementProblem {
        let chains = [CanonicalChain::Chain2, CanonicalChain::Chain3]
            .iter()
            .map(|w| ChainSpec {
                name: format!("chain{}", w.index()),
                graph: canonical_chain(*w),
                slo: None,
                aggregate: None,
            })
            .collect::<Vec<_>>();
        let mut p = PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4());
        for i in 0..p.chains.len() {
            let base = p.base_rate_bps(i);
            p.chains[i].slo = Some(Slo::elastic_pipe(delta * base, 100e9));
        }
        p
    }

    #[test]
    fn ablations_work_at_low_delta() {
        let p = problem(0.5);
        assert!(no_profiling(&p, &AlwaysFits).is_ok());
        assert!(no_core_allocation(&p, &AlwaysFits).is_ok());
    }

    #[test]
    fn no_core_allocation_fails_when_scaling_needed() {
        // δ=2 needs Dedup replication, which this ablation cannot do.
        let p = problem(2.0);
        assert!(no_core_allocation(&p, &AlwaysFits).is_err());
        assert!(crate::heuristic::place(&p, &AlwaysFits).is_ok());
    }

    #[test]
    fn no_profiling_never_beats_full_lemur() {
        let p = problem(1.0);
        let full = crate::heuristic::place(&p, &AlwaysFits).unwrap();
        if let Ok(blind) = no_profiling(&p, &AlwaysFits) {
            assert!(
                blind.marginal_bps <= full.marginal_bps + 1e6,
                "blind {:.3}G > full {:.3}G",
                blind.marginal_bps / 1e9,
                full.marginal_bps / 1e9
            );
        }
    }
}
