//! Lemur's fast placement heuristic (§3.2, "A Fast, Scalable Heuristic").
//!
//! Three steps:
//!
//! 1. **Check stage constraints.** Greedily place every PISA-capable NF on
//!    the switch; while the stage oracle rejects, move the *lowest cycle
//!    cost* switch NF to the server ("it is always better to remove the
//!    low-cost NF"). The resulting baseline always fits the switch, and
//!    later steps only ever *remove* NFs from it.
//! 2. **Coalesce sub-groups.** Consider pulling switch NFs that sit
//!    between two server subgroups down to the server, merging the
//!    subgroups and freeing cores. Three rules produce three candidate
//!    placements: *strict* (merge only if 2 cores on the merged group beat
//!    1+1 on the parts), *aggressive* (merge whenever `t_min` stays
//!    satisfiable), *conservative* (merge only if the chain's rate does
//!    not decrease).
//! 3. **Maximize marginal throughput.** Allocate cores and solve the LP
//!    for each candidate; keep the best.

use crate::corealloc::CoreStrategy;
use crate::oracle::{CountingOracle, StageOracle, StageVerdict};
use crate::parallel::{parallel_map, Workers};
use crate::placement::{
    Assignment, EvaluatedPlacement, PlacementError, PlacementProblem, SearchTelemetry,
};
use crate::profiles::{Platform, PlatformClass};
use crate::{NSH_OVERHEAD_CYCLES, REPLICATION_OVERHEAD_CYCLES};
use lemur_core::graph::NodeId;

/// Which coalescing rule a candidate applies (strict merges always apply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoalesceRule {
    Aggressive,
    Conservative,
}

/// Place with Lemur's heuristic.
pub fn place(
    problem: &PlacementProblem,
    oracle: &dyn StageOracle,
) -> Result<EvaluatedPlacement, PlacementError> {
    place_with_strategy(problem, oracle, CoreStrategy::WaterFill)
}

/// Heuristic with an explicit core strategy (the No-Core-Allocation
/// ablation passes `MinimalOnly`).
pub fn place_with_strategy(
    problem: &PlacementProblem,
    oracle: &dyn StageOracle,
    strategy: CoreStrategy,
) -> Result<EvaluatedPlacement, PlacementError> {
    place_with_workers(problem, oracle, strategy, Workers::from_env())
}

/// Heuristic with an explicit worker count for the LP fan-outs (the
/// coalescing-candidate evaluation and each hill-climbing round). Both
/// fan-outs reduce in item order, so the result is bit-identical to the
/// sequential path for every worker count.
pub fn place_with_workers(
    problem: &PlacementProblem,
    oracle: &dyn StageOracle,
    strategy: CoreStrategy,
    workers: Workers,
) -> Result<EvaluatedPlacement, PlacementError> {
    let oracle = CountingOracle::new(oracle);
    let cache_before = oracle.cache_stats().unwrap_or_default();
    let mut lp_evals: u64 = 0;
    // ---- Step 1: stage-constrained baseline. While the program overflows
    // the pipeline, move switch NFs down to the server, cheapest first —
    // but only demotions that actually reduce the required stages (a tiny
    // classifier table shares a stage with others, so pulling it down
    // frees nothing). If no single demotion helps, take the cheapest
    // anyway so the loop always makes progress.
    let mut assignment = crate::baselines::hw_preferred_assignment(problem);
    let mut stages = loop {
        match oracle.check(problem, &assignment) {
            StageVerdict::Fits { stages } => break stages,
            StageVerdict::OutOfStages {
                required,
                available,
            } => {
                let candidates = demotion_candidates(problem, &assignment);
                if candidates.is_empty() {
                    return Err(PlacementError::OutOfStages {
                        required,
                        available,
                    });
                }
                let mut applied = false;
                for &(ci, id, server) in &candidates {
                    let mut trial = assignment.clone();
                    trial[ci].insert(id, Platform::Server(server));
                    let better = match oracle.check(problem, &trial) {
                        StageVerdict::Fits { .. } => true,
                        StageVerdict::OutOfStages { required: r, .. } => r < required,
                    };
                    if better {
                        assignment = trial;
                        applied = true;
                        break;
                    }
                }
                if !applied {
                    // No single demotion reduces stage pressure (e.g. an
                    // odd NAT count where the packer re-balances): demote
                    // the cheapest NF among those with the *largest* stage
                    // footprint, so progress heads toward fitting.
                    let (ci, id, server) = *candidates
                        .iter()
                        .max_by_key(|(ci, id, _)| {
                            crate::oracle::model_stage_cost(
                                problem.chains[*ci].graph.node(*id).kind,
                            )
                        })
                        .unwrap();
                    assignment[ci].insert(id, Platform::Server(server));
                }
            }
        }
    };

    // ---- Step 2: coalescing candidates, plus SmartNIC offload variants
    // when NICs are present (§5.3: "Lemur is able to achieve higher
    // aggregate throughput … by offloading ChaCha to the SmartNIC").
    // Coalescing decisions interact across chains through the shared core
    // budget, so besides the uniform aggressive/conservative placements we
    // generate per-chain mixes: each chain's coalescing applied alone.
    let baseline = assignment.clone();
    let aggressive = coalesce(problem, &baseline, CoalesceRule::Aggressive);
    let conservative = coalesce(problem, &baseline, CoalesceRule::Conservative);
    let nic_offloads = nic_offload_candidates(problem, &baseline);
    let mut mixes: Vec<Assignment> = Vec::new();
    for ci in 0..problem.chains.len() {
        let mut only_this = baseline.clone();
        only_this[ci] = aggressive[ci].clone();
        mixes.push(only_this);
        let mut all_but_this = aggressive.clone();
        all_but_this[ci] = baseline[ci].clone();
        mixes.push(all_but_this);
    }

    // ---- Step 3: evaluate and pick the max-marginal feasible candidate.
    // If every candidate violates a latency SLO, trade bounces for rate:
    // fully coalesce the violating chains onto the server (fewest bounces)
    // and retry — the §5.3 latency experiment's behaviour ("Lemur is
    // forced to reduce the number of bounces and can only achieve" a lower
    // rate under a tight d_max).
    let mut candidates = vec![baseline.clone(), aggressive, conservative];
    candidates.extend(mixes);
    candidates.extend(nic_offloads);
    let latencies = problem.latencies_ns(&baseline);
    let violating: Vec<usize> = problem
        .chains
        .iter()
        .enumerate()
        .filter(|(ci, c)| {
            c.slo
                .and_then(|s| s.d_max_ns)
                .map(|d| latencies[*ci] > d)
                .unwrap_or(false)
        })
        .map(|(ci, _)| ci)
        .collect();
    if !violating.is_empty() {
        let sw = crate::baselines::sw_preferred_assignment(problem);
        let mut low_bounce = baseline.clone();
        for ci in violating {
            low_bounce[ci] = sw[ci].clone();
        }
        candidates.push(low_bounce);
    }

    let mut best: Option<EvaluatedPlacement> = None;
    let mut last_err = PlacementError::Infeasible("no heuristic candidate feasible".into());
    lp_evals += candidates.len() as u64;
    let evaluated = parallel_map(workers, &candidates, |_, cand| {
        problem.evaluate(cand, strategy)
    });
    for result in evaluated {
        match result {
            Ok(out) => {
                if best
                    .as_ref()
                    .map(|b| out.marginal_bps > b.marginal_bps + 1e-6)
                    .unwrap_or(true)
                {
                    best = Some(out);
                }
            }
            Err(e) => last_err = e,
        }
    }

    // ---- Step 2b: single-offload hill climbing. "We can offload each
    // PISA switch NF (or combinations thereof) to the server to see if
    // these result in higher marginal throughputs" (§3.2) — starting from
    // the best candidate (or the baseline when nothing was feasible yet),
    // repeatedly apply the single demotion the LP scores highest. Only
    // ever removes NFs from the switch, so the stage guarantee holds.
    let mut current = best
        .as_ref()
        .map(|b| b.assignment.clone())
        .unwrap_or_else(|| baseline.clone());
    for _round in 0..24 {
        let mut improved = false;
        let current_score = best
            .as_ref()
            .map(|b| b.marginal_bps)
            .unwrap_or(f64::NEG_INFINITY);
        let mut round_best: Option<(Assignment, EvaluatedPlacement)> = None;
        let demotions = demotion_candidates(problem, &current);
        lp_evals += demotions.len() as u64;
        let trials = parallel_map(workers, &demotions, |_, &(ci, id, server)| {
            let mut trial = current.clone();
            trial[ci].insert(id, Platform::Server(server));
            let result = problem.evaluate(&trial, strategy);
            (trial, result)
        });
        for (trial, result) in trials {
            if let Ok(out) = result {
                let better_than_round = round_best
                    .as_ref()
                    .map(|(_, b)| out.marginal_bps > b.marginal_bps + 1e-6)
                    .unwrap_or(true);
                if out.marginal_bps > current_score + 1e-6 && better_than_round {
                    round_best = Some((trial, out));
                }
            }
        }
        if let Some((trial, out)) = round_best {
            current = trial;
            best = Some(out);
            improved = true;
        }
        if !improved {
            break;
        }
    }

    match best {
        Some(mut out) => {
            // Re-query the oracle for the final stage count (candidates
            // only removed switch NFs, so the placement still fits).
            if let StageVerdict::Fits { stages: s } = oracle.check(problem, &out.assignment) {
                stages = s;
            }
            out.stages_used = Some(stages);
            let cache = oracle
                .cache_stats()
                .unwrap_or_default()
                .since(&cache_before);
            out.telemetry = Some(SearchTelemetry {
                oracle_calls: oracle.calls(),
                cache_hits: cache.hits,
                cache_misses: cache.misses,
                lp_evals,
                // The heuristic fully evaluates every candidate it
                // generates; nothing is dropped pre-evaluation.
                pruned_candidates: 0,
            });
            Ok(out)
        }
        None => Err(last_err),
    }
}

/// SmartNIC offload variants: for each NIC, move every server-resident NF
/// with an eBPF implementation and a substantial cycle cost onto it. Cheap
/// NFs are not worth the extra link traversal.
fn nic_offload_candidates(problem: &PlacementProblem, baseline: &Assignment) -> Vec<Assignment> {
    const WORTH_OFFLOADING_CYCLES: f64 = 1_000.0;
    let mut out = Vec::new();
    for (ni, _nic) in problem.topology.smartnics.iter().enumerate() {
        let mut cand = baseline.clone();
        let mut moved = false;
        for (ci, chain) in problem.chains.iter().enumerate() {
            for (id, node) in chain.graph.nodes() {
                if !matches!(cand[ci].get(&id), Some(Platform::Server(_))) {
                    continue;
                }
                if !problem
                    .profiles
                    .capabilities(node.kind)
                    .contains(&PlatformClass::SmartNic)
                {
                    continue;
                }
                if problem.profiles.server_cycles(node.kind, &node.params) < WORTH_OFFLOADING_CYCLES
                {
                    continue;
                }
                cand[ci].insert(id, Platform::SmartNic(ni));
                moved = true;
            }
        }
        if moved {
            out.push(cand);
        }
    }
    out
}

/// Switch NFs that could move down to a server, ordered by ascending cycle
/// cost ("it is always better to remove the low-cost NF", §3.2).
fn demotion_candidates(
    problem: &PlacementProblem,
    assignment: &Assignment,
) -> Vec<(usize, NodeId, usize)> {
    let mut out: Vec<(usize, NodeId, f64, usize)> = Vec::new();
    for (ci, chain) in problem.chains.iter().enumerate() {
        // Reuse the chain's existing server, if any, else server 0.
        let server = assignment[ci]
            .values()
            .find_map(|p| match p {
                Platform::Server(s) => Some(*s),
                _ => None,
            })
            .unwrap_or(0);
        for (id, node) in chain.graph.nodes() {
            if assignment[ci].get(&id) != Some(&Platform::Pisa) {
                continue;
            }
            if !problem
                .profiles
                .capabilities(node.kind)
                .contains(&PlatformClass::Server)
            {
                continue; // e.g. the artificially P4-only IPv4Fwd
            }
            let cycles = problem.profiles.server_cycles(node.kind, &node.params);
            out.push((ci, id, cycles, server));
        }
    }
    out.sort_by(|a, b| a.2.total_cmp(&b.2));
    out.into_iter().map(|(ci, id, _, s)| (ci, id, s)).collect()
}

/// Coalescing pass: for each switch NF flanked by server NFs in some
/// linear path (the `{A->B} -> C_p4 -> {D->E}` shape), decide whether to
/// pull it down. *Strict* merges always apply; the rule parameter governs
/// the remaining opportunities.
fn coalesce(problem: &PlacementProblem, baseline: &Assignment, rule: CoalesceRule) -> Assignment {
    let mut assignment = baseline.clone();
    for (ci, chain) in problem.chains.iter().enumerate() {
        let g = &chain.graph;
        let cyc = |id: NodeId| {
            let n = g.node(id);
            problem.profiles.server_cycles(n.kind, &n.params)
        };
        for lc in g.decompose() {
            // Maximal runs of switch NFs flanked by same-server NFs:
            // "offload each PISA switch NF (or combinations thereof)".
            let mut w = 1usize;
            while w + 1 < lc.nodes.len() {
                if assignment[ci].get(&lc.nodes[w]) != Some(&Platform::Pisa) {
                    w += 1;
                    continue;
                }
                // Extend the run of switch NFs.
                let start = w;
                let mut end = w;
                while end + 1 < lc.nodes.len()
                    && assignment[ci].get(&lc.nodes[end]) == Some(&Platform::Pisa)
                {
                    end += 1;
                }
                // end now points at the first non-Pisa (or last) node.
                let run: Vec<NodeId> = lc.nodes[start..end].to_vec();
                w = end + 1;
                if run.is_empty() {
                    continue;
                }
                // Every NF in the run must have a server implementation.
                if !run.iter().all(|id| {
                    problem
                        .profiles
                        .capabilities(g.node(*id).kind)
                        .contains(&PlatformClass::Server)
                }) {
                    continue;
                }
                let (Some(Platform::Server(sa)), Some(Platform::Server(sb))) = (
                    assignment[ci].get(&lc.nodes[start - 1]),
                    assignment[ci].get(&lc.nodes[end]),
                ) else {
                    continue;
                };
                if sa != sb {
                    continue;
                }
                let server = *sa;
                // Cycle costs of the flanking subgroups and the merged run.
                let ca = cyc(lc.nodes[start - 1]) + NSH_OVERHEAD_CYCLES;
                let cb = cyc(lc.nodes[end]) + NSH_OVERHEAD_CYCLES;
                let run_cycles: f64 = run.iter().map(|id| cyc(*id)).sum();
                let cm = cyc(lc.nodes[start - 1])
                    + run_cycles
                    + cyc(lc.nodes[end])
                    + NSH_OVERHEAD_CYCLES;
                // Strict rule: 2 cores on the merged group vs 1+1 separate.
                let merged_2core = 2.0 / (cm + REPLICATION_OVERHEAD_CYCLES);
                let separate_1each = (1.0 / ca).min(1.0 / cb);
                let strict_wins = merged_2core > separate_1each;
                let apply = match rule {
                    CoalesceRule::Aggressive => {
                        // Merge whenever t_min stays satisfiable.
                        strict_wins || {
                            let mut trial = assignment.clone();
                            for id in &run {
                                trial[ci].insert(*id, Platform::Server(server));
                            }
                            t_min_satisfiable(problem, &trial)
                        }
                    }
                    CoalesceRule::Conservative => {
                        // Merge only if the chain's rate does not decrease
                        // (merged group may take 2 cores).
                        strict_wins || merged_2core >= separate_1each * (1.0 - 1e-9)
                    }
                };
                if apply {
                    for id in &run {
                        assignment[ci].insert(*id, Platform::Server(server));
                    }
                }
            }
        }
    }
    assignment
}

/// Quick feasibility probe: can water-filling reach every `t_min`?
fn t_min_satisfiable(problem: &PlacementProblem, assignment: &Assignment) -> bool {
    if problem.check_capabilities(assignment).is_err() {
        return false;
    }
    let mut sgs = problem.form_subgroups(assignment);
    crate::corealloc::allocate(problem, &mut sgs, CoreStrategy::WaterFill).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{optimal, BruteConfig};
    use crate::oracle::{AlwaysFits, ModelOracle};
    use crate::profiles::NfProfiles;
    use crate::topology::Topology;
    use lemur_core::chains::{canonical_chain, CanonicalChain};
    use lemur_core::graph::ChainSpec;
    use lemur_core::Slo;

    fn problem(which: &[CanonicalChain], delta: f64) -> PlacementProblem {
        let chains = which
            .iter()
            .map(|w| ChainSpec {
                name: format!("chain{}", w.index()),
                graph: canonical_chain(*w),
                slo: None,
                aggregate: None,
            })
            .collect::<Vec<_>>();
        let mut p = PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4());
        for i in 0..p.chains.len() {
            let base = p.base_rate_bps(i);
            p.chains[i].slo = Some(Slo::elastic_pipe(delta * base, 100e9));
        }
        p
    }

    #[test]
    fn heuristic_feasible_across_deltas_chain3() {
        for delta in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0] {
            let p = problem(&[CanonicalChain::Chain3], delta);
            let out = place(&p, &AlwaysFits).unwrap_or_else(|e| panic!("δ={delta}: {e}"));
            let t_min = p.chains[0].slo.unwrap().t_min_bps;
            assert!(
                out.chain_rates_bps[0] + 1.0 >= t_min,
                "δ={delta}: {} < {}",
                out.chain_rates_bps[0],
                t_min
            );
        }
    }

    #[test]
    fn heuristic_matches_optimal_on_small_cases() {
        for which in [&[CanonicalChain::Chain3][..], &[CanonicalChain::Chain2]] {
            for delta in [0.5, 1.0, 1.5] {
                let p = problem(which, delta);
                let h = place(&p, &AlwaysFits).unwrap();
                let o = optimal(&p, &AlwaysFits, BruteConfig::default()).unwrap();
                let gap = (o.marginal_bps - h.marginal_bps) / o.marginal_bps.max(1.0);
                assert!(
                    gap < 0.05,
                    "δ={delta} {which:?}: heuristic {:.3}G vs optimal {:.3}G",
                    h.marginal_bps / 1e9,
                    o.marginal_bps / 1e9
                );
            }
        }
    }

    #[test]
    fn heuristic_respects_stage_oracle() {
        // A tight oracle forces demotions; the heuristic must still find a
        // feasible placement with few switch NFs.
        let p = problem(&[CanonicalChain::Chain2], 0.5);
        let tight = ModelOracle {
            overhead_stages: 3,
            available: 6,
        };
        let out = place(&p, &tight).unwrap();
        assert!(out.stages_used.unwrap() <= 6);
    }

    #[test]
    fn heuristic_never_places_unimplementable_nf_on_switch() {
        let p = problem(&[CanonicalChain::Chain5], 0.5);
        let out = place(&p, &AlwaysFits).unwrap();
        for (ci, chain) in p.chains.iter().enumerate() {
            for (id, n) in chain.graph.nodes() {
                if out.assignment[ci][&id] == Platform::Pisa {
                    assert!(
                        crate::profiles::capabilities(n.kind).contains(&PlatformClass::Pisa),
                        "{} illegally on switch",
                        n.name
                    );
                }
            }
        }
    }

    #[test]
    fn four_chain_configuration_places() {
        let p = problem(
            &[
                CanonicalChain::Chain1,
                CanonicalChain::Chain2,
                CanonicalChain::Chain3,
                CanonicalChain::Chain4,
            ],
            0.5,
        );
        let out = place(&p, &AlwaysFits).unwrap();
        assert_eq!(out.chain_rates_bps.len(), 4);
        for (i, r) in out.chain_rates_bps.iter().enumerate() {
            assert!(*r + 1.0 >= p.chains[i].slo.unwrap().t_min_bps, "chain {i}");
        }
    }

    #[test]
    fn heuristic_beats_sw_preferred_at_high_delta() {
        let p = problem(&[CanonicalChain::Chain3], 2.0);
        assert!(crate::baselines::sw_preferred(&p, &AlwaysFits).is_err());
        assert!(place(&p, &AlwaysFits).is_ok());
    }
}
