//! Placement repair after resource failures.
//!
//! When the dataplane's SLO guard flags a violation caused by a downed
//! link, failed cores, or a dead server, the operator re-plans against the
//! *degraded* rack: the physical topology with a [`ResourceMask`] applied.
//! The repair is incremental — chains whose subgroups never touched a
//! failed resource keep their assignment verbatim ("pinned"), only the
//! affected chains are re-homed — and falls back to a full heuristic
//! re-placement before it starts shedding.
//!
//! Shedding is graceful: when the degraded rack cannot satisfy every
//! chain's `t_min`, whole chains are dropped in *ascending*
//! [`Slo::priority`] order (ties toward the smaller `t_min`, then the
//! lower index), so the highest-priority survivors keep their full
//! guarantee rather than every chain degrading a little.

use std::collections::BTreeSet;

use lemur_core::Slo;

use crate::corealloc::CoreStrategy;
use crate::oracle::StageOracle;
use crate::placement::{Assignment, EvaluatedPlacement, PlacementError, PlacementProblem};
use crate::profiles::Platform;
use crate::topology::ResourceMask;

/// How a surviving placement was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairMode {
    /// Unaffected chains kept their old assignment; only affected chains
    /// were re-homed.
    Incremental,
    /// The pinned attempt was infeasible; every kept chain was re-placed
    /// from scratch on the degraded topology.
    FullReplace,
}

/// Outcome of a repair pass.
#[derive(Debug)]
pub struct RepairResult {
    /// The repaired placement, evaluated against the degraded topology.
    /// Chain indices are positions in `kept`.
    pub placement: EvaluatedPlacement,
    /// The degraded problem the placement solves (its chain `i` is the
    /// original chain `kept[i]`).
    pub problem: PlacementProblem,
    /// Original chain indices still served, ascending.
    pub kept: Vec<usize>,
    /// Original chain indices shed, in shedding order.
    pub shed: Vec<usize>,
    /// Original chain indices that had NFs on a failed resource.
    pub affected: Vec<usize>,
    /// Whether the surviving placement is incremental or a full re-place.
    pub mode: RepairMode,
}

impl RepairResult {
    /// Predicted rate for an *original* chain index (0 if shed).
    pub fn rate_bps(&self, original_chain: usize) -> f64 {
        self.kept
            .iter()
            .position(|&c| c == original_chain)
            .map(|i| self.placement.chain_rates_bps[i])
            .unwrap_or(0.0)
    }

    /// Candidate cost: how many NF nodes changed platform relative to the
    /// pre-failure assignment (`before`, indexed by original chains).
    /// Shed chains count every node — tearing a chain down is maximal
    /// churn for it. A supervisor can use this to prefer the cheaper of
    /// two feasible candidates (and a rollback's cost is how far the
    /// current state has drifted from last-known-good).
    pub fn moved_nodes(&self, before: &Assignment) -> usize {
        let mut moved = 0;
        for (i, &orig) in self.kept.iter().enumerate() {
            let old_nodes = &before[orig];
            let new_nodes = &self.placement.assignment[i];
            for (node, platform) in new_nodes {
                if old_nodes.get(node) != Some(platform) {
                    moved += 1;
                }
            }
        }
        for &orig in &self.shed {
            moved += before[orig].len();
        }
        moved
    }
}

fn slo_of(problem: &PlacementProblem, chain: usize) -> Slo {
    problem.chains[chain].slo.unwrap_or(Slo::bulk())
}

/// Chains with at least one NF on a masked-down server (or on a SmartNIC
/// whose host server is down).
fn affected_chains(
    problem: &PlacementProblem,
    assignment: &Assignment,
    mask: &ResourceMask,
) -> Vec<usize> {
    let down = &mask.servers_down;
    assignment
        .iter()
        .enumerate()
        .filter(|(_, nodes)| {
            nodes.values().any(|p| match p {
                Platform::Server(s) => down.contains(s),
                Platform::SmartNic(n) => down.contains(&problem.topology.smartnics[*n].server),
                _ => false,
            })
        })
        .map(|(c, _)| c)
        .collect()
}

/// Re-home one chain's dead-platform NFs onto `replacement`.
fn rehome(
    problem: &PlacementProblem,
    nodes: &mut std::collections::BTreeMap<lemur_core::NodeId, Platform>,
    down: &BTreeSet<usize>,
    replacement: usize,
) {
    for p in nodes.values_mut() {
        let dead = match p {
            Platform::Server(s) => down.contains(s),
            Platform::SmartNic(n) => down.contains(&problem.topology.smartnics[*n].server),
            _ => false,
        };
        if dead {
            *p = Platform::Server(replacement);
        }
    }
}

/// Build the degraded sub-problem over `kept` chains.
fn sub_problem(
    problem: &PlacementProblem,
    mask: &ResourceMask,
    kept: &[usize],
) -> PlacementProblem {
    PlacementProblem {
        chains: kept.iter().map(|&c| problem.chains[c].clone()).collect(),
        topology: problem.topology.degraded(mask.clone()),
        profiles: problem.profiles.clone(),
    }
}

/// The pinned-incremental candidate assignment for `kept` chains: old
/// assignments verbatim, except dead-platform NFs of affected chains move
/// to the healthy server with the most estimated headroom.
fn pinned_assignment(
    problem: &PlacementProblem,
    old: &Assignment,
    mask: &ResourceMask,
    kept: &[usize],
    sub: &PlacementProblem,
) -> Assignment {
    let down = &mask.servers_down;
    // Estimated headroom: degraded worker cores minus the node count each
    // surviving server already hosts (same proxy choose_server_per_chain
    // uses on the healthy rack).
    let n_servers = sub.topology.servers.len();
    let mut free: Vec<isize> = (0..n_servers)
        .map(|s| sub.topology.worker_cores(s) as isize)
        .collect();
    for &c in kept {
        for p in old[c].values() {
            if let Platform::Server(s) = p {
                if !down.contains(s) {
                    free[*s] -= 1;
                }
            }
        }
    }
    kept.iter()
        .map(|&c| {
            let mut nodes = old[c].clone();
            let displaced = nodes
                .values()
                .filter(|p| match p {
                    Platform::Server(s) => down.contains(s),
                    Platform::SmartNic(n) => down.contains(&problem.topology.smartnics[*n].server),
                    _ => false,
                })
                .count();
            if displaced > 0 {
                let repl = (0..n_servers)
                    .filter(|s| !down.contains(s))
                    .max_by_key(|s| free[*s])
                    .unwrap_or(0);
                free[repl] -= displaced as isize;
                rehome(problem, &mut nodes, down, repl);
            }
            nodes
        })
        .collect()
}

/// Chain to shed next from `kept`: ascending `(priority, t_min, index)`.
fn shed_victim(problem: &PlacementProblem, kept: &[usize]) -> Option<usize> {
    kept.iter().copied().min_by(|&a, &b| {
        let (sa, sb) = (slo_of(problem, a), slo_of(problem, b));
        sa.priority
            .cmp(&sb.priority)
            .then(sa.t_min_bps.total_cmp(&sb.t_min_bps))
            .then(a.cmp(&b))
    })
}

/// Repair `old` after the failures in `mask`.
///
/// Tries, in order: (1) the pinned-incremental assignment, (2) a full
/// heuristic re-placement of all kept chains on the degraded topology,
/// (3) shedding the lowest-priority chain and retrying — until a
/// placement satisfying every surviving `t_min` exists or no chains
/// remain.
pub fn repair(
    problem: &PlacementProblem,
    old: &EvaluatedPlacement,
    mask: ResourceMask,
    oracle: &dyn StageOracle,
) -> Result<RepairResult, PlacementError> {
    repair_assignment(problem, &old.assignment, mask, oracle)
}

/// [`repair`] from a bare [`Assignment`] — all the repair pass needs from
/// the previous state. A supervisor tracking last-known-good placements
/// only has to retain assignments (cheap, original-chain indexed), not
/// full evaluations whose chain numbering shifts with every shed.
pub fn repair_assignment(
    problem: &PlacementProblem,
    old: &Assignment,
    mask: ResourceMask,
    oracle: &dyn StageOracle,
) -> Result<RepairResult, PlacementError> {
    let affected = affected_chains(problem, old, &mask);
    let mut kept: Vec<usize> = (0..problem.chains.len()).collect();
    let mut shed: Vec<usize> = Vec::new();

    loop {
        if kept.is_empty() {
            return Err(PlacementError::Infeasible(
                "degraded topology cannot host any chain".into(),
            ));
        }
        let sub = sub_problem(problem, &mask, &kept);

        // (1) Pinned incremental: keep unaffected subgroups where they are.
        let pinned = pinned_assignment(problem, old, &mask, &kept, &sub);
        if let Ok(ev) = sub.evaluate(&pinned, CoreStrategy::WaterFill) {
            return Ok(RepairResult {
                placement: ev,
                problem: sub,
                kept,
                shed,
                affected,
                mode: RepairMode::Incremental,
            });
        }

        // (2) Full re-place of the kept set on the degraded rack.
        match crate::heuristic::place(&sub, oracle) {
            Ok(ev) => {
                return Ok(RepairResult {
                    placement: ev,
                    problem: sub,
                    kept,
                    shed,
                    affected,
                    mode: RepairMode::FullReplace,
                });
            }
            Err(e) => {
                // (3) Shed the lowest-priority chain and retry. If there
                // is no victim, surface the placement error.
                let Some(victim) = shed_victim(problem, &kept) else {
                    return Err(e);
                };
                kept.retain(|&c| c != victim);
                shed.push(victim);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::place;
    use crate::oracle::AlwaysFits;
    use crate::profiles::NfProfiles;
    use crate::topology::Topology;
    use lemur_core::chains::{canonical_chain, CanonicalChain};
    use lemur_core::graph::ChainSpec;

    fn problem(which: &[CanonicalChain], delta: f64, topology: Topology) -> PlacementProblem {
        let chains = which
            .iter()
            .map(|w| ChainSpec {
                name: format!("chain{}", w.index()),
                graph: canonical_chain(*w),
                slo: None,
                aggregate: None,
            })
            .collect::<Vec<_>>();
        let mut p = PlacementProblem::new(chains, topology, NfProfiles::table4());
        for i in 0..p.chains.len() {
            let base = p.base_rate_bps(i);
            p.chains[i].slo = Some(Slo::elastic_pipe(delta * base, 100e9));
        }
        p
    }

    #[test]
    fn repair_rehomes_off_dead_server() {
        let p = problem(
            &[CanonicalChain::Chain3, CanonicalChain::Chain2],
            0.5,
            Topology::with_servers(3),
        );
        let old = place(&p, &AlwaysFits).unwrap();
        let dead = old.subgroups[0].server;
        let mask = ResourceMask::none().with_server_down(dead);
        let r = repair(&p, &old, mask, &AlwaysFits).unwrap();
        assert!(r.shed.is_empty(), "capacity is ample, nothing to shed");
        assert_eq!(r.kept, vec![0, 1]);
        assert!(!r.affected.is_empty());
        for sg in &r.placement.subgroups {
            assert_ne!(sg.server, dead, "subgroup still on the dead server");
        }
        // Survivors keep their guarantee.
        for (i, &c) in r.kept.iter().enumerate() {
            let t_min = p.chains[c].slo.unwrap().t_min_bps;
            assert!(
                r.placement.chain_rates_bps[i] + 1.0 >= t_min,
                "chain {c}: {} < {}",
                r.placement.chain_rates_bps[i],
                t_min
            );
        }
    }

    #[test]
    fn unaffected_chains_stay_pinned() {
        let p = problem(
            &[CanonicalChain::Chain3, CanonicalChain::Chain2],
            0.25,
            Topology::with_servers(3),
        );
        let old = place(&p, &AlwaysFits).unwrap();
        let s0 = old
            .subgroups
            .iter()
            .find(|sg| sg.chain == 0)
            .map(|sg| sg.server);
        let s1 = old
            .subgroups
            .iter()
            .find(|sg| sg.chain == 1)
            .map(|sg| sg.server);
        let (Some(s0), Some(s1)) = (s0, s1) else {
            return; // all-switch placement: nothing to pin
        };
        if s0 == s1 {
            return; // both chains share the server; no unaffected chain
        }
        let mask = ResourceMask::none().with_server_down(s1);
        let r = repair(&p, &old, mask, &AlwaysFits).unwrap();
        assert_eq!(r.mode, RepairMode::Incremental);
        assert_eq!(r.affected, vec![1]);
        // Chain 0 kept its server.
        let i0 = r.kept.iter().position(|&c| c == 0).unwrap();
        for sg in r.placement.subgroups.iter().filter(|sg| sg.chain == i0) {
            assert_eq!(sg.server, s0, "pinned chain moved");
        }
        // Candidate cost: something moved (chain 1 re-homed), but the
        // pinned chain contributes nothing.
        let moved = r.moved_nodes(&old.assignment);
        assert!(moved > 0, "re-homing must register as churn");
        assert!(
            moved <= old.assignment[1].len(),
            "pinned chain 0 must not count toward churn ({moved})"
        );
    }

    #[test]
    fn shed_chains_count_fully_in_cost() {
        let mut p = problem(
            &[CanonicalChain::Chain3, CanonicalChain::Chain3],
            1.0,
            Topology::with_servers(1),
        );
        p.chains[0].slo = Some(p.chains[0].slo.unwrap().with_priority(5));
        p.chains[1].slo = Some(p.chains[1].slo.unwrap().with_priority(1));
        let old = place(&p, &AlwaysFits).unwrap();
        let mask = ResourceMask::none().with_cores_down(0, 5);
        let r = repair(&p, &old, mask, &AlwaysFits).unwrap();
        assert_eq!(r.shed, vec![1]);
        assert!(
            r.moved_nodes(&old.assignment) >= old.assignment[1].len(),
            "a shed chain counts all of its nodes as churn"
        );
    }

    #[test]
    fn shedding_follows_ascending_priority() {
        // Two heavy chains on a single small server; kill most cores so
        // only one chain fits. The low-priority one must be shed.
        let mut p = problem(
            &[CanonicalChain::Chain3, CanonicalChain::Chain3],
            1.0,
            Topology::with_servers(1),
        );
        p.chains[0].slo = Some(p.chains[0].slo.unwrap().with_priority(5));
        p.chains[1].slo = Some(p.chains[1].slo.unwrap().with_priority(1));
        let old = place(&p, &AlwaysFits).unwrap();
        let mask = ResourceMask::none().with_cores_down(0, 5);
        let r = repair(&p, &old, mask, &AlwaysFits).unwrap();
        assert_eq!(r.shed, vec![1], "low-priority chain shed first");
        assert_eq!(r.kept, vec![0]);
        let t_min = p.chains[0].slo.unwrap().t_min_bps;
        assert!(r.placement.chain_rates_bps[0] + 1.0 >= t_min);
        assert_eq!(r.rate_bps(1), 0.0);
        assert!(r.rate_bps(0) > 0.0);
    }

    #[test]
    fn all_servers_down_is_infeasible() {
        let p = problem(&[CanonicalChain::Chain5], 0.5, Topology::with_servers(2));
        let old = place(&p, &AlwaysFits).unwrap();
        // Chain 5 needs server NFs; with every server down nothing fits.
        let mask = ResourceMask::none().with_server_down(0).with_server_down(1);
        assert!(repair(&p, &old, mask, &AlwaysFits).is_err());
    }
}
