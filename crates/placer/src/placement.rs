//! Placement representation and evaluation.
//!
//! An [`Assignment`] maps every NF node of every chain onto a platform.
//! [`PlacementProblem::evaluate`] turns an assignment into predicted chain
//! rates by forming run-to-completion subgroups, allocating cores, solving
//! the marginal-throughput LP under link constraints, and checking latency
//! SLOs — exactly the §3.2 pipeline.

use crate::corealloc::{self, CoreStrategy};
use crate::profiles::{is_replicable, NfProfiles, Platform};
use crate::topology::{Topology, Tor};
use crate::{NSH_OVERHEAD_CYCLES, PACKET_BITS, REPLICATION_OVERHEAD_CYCLES};
use lemur_core::graph::{ChainSpec, NodeId};
use lemur_lp::{Problem, Relation};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Per-bounce latency between the ToR and a server/NIC, in nanoseconds.
/// Dominated by DPDK RX/TX batching and switch/NIC queueing under load
/// (the paper names "DPDK and switch queueing, and encap/decap overheads"
/// as its latency sources); 8 µs per traversal is a loaded-system figure.
pub const BOUNCE_LATENCY_NS: f64 = 8_000.0;

/// Platform assignment for every node of every chain.
///
/// A `BTreeMap` (not `HashMap`) on purpose: candidate generation, ranking,
/// and subsampling iterate assignments, and the parallel search asserts
/// bit-identical results across worker counts — ordered iteration (and
/// ordered `Debug` output) makes ties rank identically everywhere.
pub type Assignment = Vec<BTreeMap<NodeId, Platform>>;

/// Why a placement is infeasible.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// A chain's NF graph failed validation (see
    /// [`PlacementProblem::try_new`]).
    InvalidChain { chain: usize, reason: String },
    /// An NF was assigned to a platform it has no implementation for.
    NoCapability {
        chain: usize,
        node: String,
        platform: Platform,
    },
    /// Not enough cores / rate to satisfy every `t_min`.
    Infeasible(String),
    /// A latency SLO cannot be met.
    LatencyViolation {
        chain: usize,
        latency_ns: f64,
        d_max_ns: f64,
    },
    /// The stage oracle rejected the switch program.
    OutOfStages { required: usize, available: usize },
    /// An OpenFlow table-order violation.
    TableOrder { chain: usize },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::InvalidChain { chain, reason } => {
                write!(f, "chain {chain}: invalid NF graph: {reason}")
            }
            PlacementError::NoCapability {
                chain,
                node,
                platform,
            } => {
                write!(f, "chain {chain}: {node} cannot run on {platform:?}")
            }
            PlacementError::Infeasible(msg) => write!(f, "infeasible: {msg}"),
            PlacementError::LatencyViolation {
                chain,
                latency_ns,
                d_max_ns,
            } => write!(
                f,
                "chain {chain}: latency {:.1}us exceeds d_max {:.1}us",
                latency_ns / 1e3,
                d_max_ns / 1e3
            ),
            PlacementError::OutOfStages {
                required,
                available,
            } => {
                write!(f, "switch needs {required} stages, has {available}")
            }
            PlacementError::TableOrder { chain } => {
                write!(f, "chain {chain}: violates OpenFlow table order")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// One run-to-completion subgroup in a placement plan.
#[derive(Debug, Clone)]
pub struct SubgroupPlan {
    pub chain: usize,
    pub server: usize,
    /// Member nodes in chain order.
    pub nodes: Vec<NodeId>,
    /// Worst-case cycles/packet, including NSH decap/encap overhead.
    pub cycles: f64,
    /// Fraction of the chain's traffic passing through this subgroup.
    pub fraction: f64,
    /// False for subgroups holding stateful or branch/merge NFs (§3.2).
    pub replicable: bool,
    /// Allocated cores (≥ 1).
    pub cores: usize,
}

impl SubgroupPlan {
    /// Subgroup capacity in chain-rate bits/second for its allocation on a
    /// server with the given clock: `cores · clock/cycles · packet_bits /
    /// fraction` (the chain rate at which this subgroup saturates).
    pub fn chain_rate_capacity_bps(&self, clock_hz: f64) -> f64 {
        let mut cycles = self.cycles;
        if self.cores > 1 {
            cycles += REPLICATION_OVERHEAD_CYCLES;
        }
        let pps = self.cores as f64 * clock_hz / cycles;
        pps * PACKET_BITS / self.fraction.max(1e-12)
    }
}

/// An NF placed on a SmartNIC.
#[derive(Debug, Clone)]
pub struct NicNfPlan {
    pub chain: usize,
    pub node: NodeId,
    pub nic: usize,
    pub cycles: f64,
    pub fraction: f64,
}

/// Deterministic counters from a placement search. Every field is a pure
/// function of the search inputs — *never* of wall time or scheduling — so
/// telemetry compares bit-identically across worker counts (wall-clock
/// timings live in the bench harness, not here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchTelemetry {
    /// Stage-oracle invocations (compiler calls when the oracle is the
    /// real metacompiler) made by the search.
    pub oracle_calls: u64,
    /// Memoized-oracle cache hits during the search (0 for uncached
    /// oracles).
    pub cache_hits: u64,
    /// Memoized-oracle cache misses — actual compiles — during the search.
    pub cache_misses: u64,
    /// Full LP evaluations ([`PlacementProblem::evaluate`]) performed.
    pub lp_evals: u64,
    /// Candidates generated but dropped before full evaluation (beam
    /// truncation, candidate-list caps, infeasible quick scores).
    pub pruned_candidates: u64,
}

/// A fully evaluated placement.
#[derive(Debug, Clone)]
pub struct EvaluatedPlacement {
    pub assignment: Assignment,
    pub subgroups: Vec<SubgroupPlan>,
    pub nic_nfs: Vec<NicNfPlan>,
    /// Predicted (LP-optimal) rate per chain, bits/second.
    pub chain_rates_bps: Vec<f64>,
    /// Σ chain rates.
    pub aggregate_bps: f64,
    /// Σ (rate − t_min) — the objective.
    pub marginal_bps: f64,
    /// Bounce count per chain (weighted-average server/NIC visits × 2).
    pub bounces: Vec<f64>,
    /// Worst-path latency per chain (ns).
    pub latency_ns: Vec<f64>,
    /// Stage usage if the stage oracle ran.
    pub stages_used: Option<usize>,
    /// Search accounting, if a search (not a bare `evaluate`) produced
    /// this placement.
    pub telemetry: Option<SearchTelemetry>,
}

/// The placement problem: chains + topology + profiles.
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    pub chains: Vec<ChainSpec>,
    pub topology: Topology,
    pub profiles: NfProfiles,
}

impl PlacementProblem {
    /// Create a problem. Panics if a chain graph fails validation; use
    /// [`PlacementProblem::try_new`] to get the error instead.
    pub fn new(chains: Vec<ChainSpec>, topology: Topology, profiles: NfProfiles) -> Self {
        Self::try_new(chains, topology, profiles)
            .unwrap_or_else(|e| panic!("chain graph must validate: {e}"))
    }

    /// Create a problem, surfacing chain-graph validation failures as a
    /// typed [`PlacementError::InvalidChain`].
    pub fn try_new(
        chains: Vec<ChainSpec>,
        topology: Topology,
        profiles: NfProfiles,
    ) -> Result<Self, PlacementError> {
        for (i, c) in chains.iter().enumerate() {
            c.graph
                .validate()
                .map_err(|e| PlacementError::InvalidChain {
                    chain: i,
                    reason: e.to_string(),
                })?;
        }
        Ok(PlacementProblem {
            chains,
            topology,
            profiles,
        })
    }

    /// Traffic fraction through each node of a chain.
    pub fn node_fractions(&self, chain: usize) -> HashMap<NodeId, f64> {
        let mut f: HashMap<NodeId, f64> = HashMap::new();
        for lc in self.chains[chain].graph.decompose() {
            for n in &lc.nodes {
                *f.entry(*n).or_insert(0.0) += lc.weight;
            }
        }
        f
    }

    /// The chain's *base rate* (§5.1): the rate with one core on the
    /// slowest software NF. Used to derive the δ-scaled `t_min` sweeps.
    pub fn base_rate_bps(&self, chain: usize) -> f64 {
        let clock = self.topology.servers[0].clock_hz;
        let fractions = self.node_fractions(chain);
        self.chains[chain]
            .graph
            .nodes()
            .filter(|(_, n)| {
                self.profiles
                    .capabilities(n.kind)
                    .contains(&crate::profiles::PlatformClass::Server)
            })
            .map(|(id, n)| {
                let cycles = self.profiles.server_cycles(n.kind, &n.params) + NSH_OVERHEAD_CYCLES;
                let pps = clock / cycles;
                pps * PACKET_BITS / fractions.get(&id).copied().unwrap_or(1.0).max(1e-12)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Check assignment capabilities (every node on a platform with an
    /// implementation that exists in this topology).
    pub fn check_capabilities(&self, assignment: &Assignment) -> Result<(), PlacementError> {
        for (ci, chain) in self.chains.iter().enumerate() {
            for (id, node) in chain.graph.nodes() {
                let Some(platform) = assignment[ci].get(&id) else {
                    return Err(PlacementError::Infeasible(format!(
                        "chain {ci}: node {} unassigned",
                        node.name
                    )));
                };
                let ok = self
                    .profiles
                    .capabilities(node.kind)
                    .contains(&platform.class())
                    && match platform {
                        Platform::Pisa => self.topology.has_pisa(),
                        Platform::OpenFlow => matches!(self.topology.tor, Tor::OpenFlow { .. }),
                        Platform::Server(s) => *s < self.topology.servers.len(),
                        Platform::SmartNic(n) => *n < self.topology.smartnics.len(),
                    };
                if !ok {
                    return Err(PlacementError::NoCapability {
                        chain: ci,
                        node: node.name.clone(),
                        platform: *platform,
                    });
                }
            }
        }
        Ok(())
    }

    /// Form run-to-completion subgroups for an assignment: consecutive
    /// same-server nodes joined across purely linear edges (§3.2).
    pub fn form_subgroups(&self, assignment: &Assignment) -> Vec<SubgroupPlan> {
        let mut out = Vec::new();
        for (ci, chain) in self.chains.iter().enumerate() {
            let fractions = self.node_fractions(ci);
            let g = &chain.graph;
            let order = g.topo_order().expect("validated");
            // Union-find over nodes.
            let n = g.num_nodes();
            let mut parent: Vec<usize> = (0..n).collect();
            fn find(p: &mut Vec<usize>, x: usize) -> usize {
                if p[x] != x {
                    let r = find(p, p[x]);
                    p[x] = r;
                }
                p[x]
            }
            for e in g.edges() {
                let pf = assignment[ci].get(&e.from);
                let pt = assignment[ci].get(&e.to);
                if let (Some(Platform::Server(a)), Some(Platform::Server(b))) = (pf, pt) {
                    if a == b && g.out_edges(e.from).len() == 1 && g.in_degree(e.to) == 1 {
                        let ra = find(&mut parent, e.from.0);
                        let rb = find(&mut parent, e.to.0);
                        parent[ra] = rb;
                    }
                }
            }
            // Collect groups in topo order.
            let mut groups: HashMap<usize, Vec<NodeId>> = HashMap::new();
            for id in &order {
                if let Some(Platform::Server(_)) = assignment[ci].get(id) {
                    let root = find(&mut parent, id.0);
                    groups.entry(root).or_default().push(*id);
                }
            }
            let mut roots: Vec<usize> = groups.keys().copied().collect();
            roots.sort_by_key(|r| groups[r][0].0);
            for root in roots {
                let nodes = groups.remove(&root).unwrap();
                let Platform::Server(server) = assignment[ci][&nodes[0]] else {
                    unreachable!()
                };
                let cycles: f64 = nodes
                    .iter()
                    .map(|id| {
                        let node = g.node(*id);
                        self.profiles.server_cycles(node.kind, &node.params)
                    })
                    .sum::<f64>()
                    + NSH_OVERHEAD_CYCLES;
                let replicable = nodes.iter().all(|id| {
                    let node = g.node(*id);
                    is_replicable(node.kind) && !g.is_branch(*id) && !g.is_merge(*id)
                });
                let fraction = fractions.get(&nodes[0]).copied().unwrap_or(1.0);
                out.push(SubgroupPlan {
                    chain: ci,
                    server,
                    nodes,
                    cycles,
                    fraction,
                    replicable,
                    cores: 1,
                });
            }
        }
        out
    }

    /// Per-chain, per-server weighted visit counts (maximal server
    /// segments per decomposed path × path weight). One visit = one
    /// NIC-link crossing per direction.
    pub fn server_visits(&self, assignment: &Assignment) -> Vec<HashMap<usize, f64>> {
        let mut out = Vec::with_capacity(self.chains.len());
        for (ci, chain) in self.chains.iter().enumerate() {
            let mut visits: HashMap<usize, f64> = HashMap::new();
            for lc in chain.graph.decompose() {
                let mut prev: Option<usize> = None;
                for id in &lc.nodes {
                    let here = match assignment[ci].get(id) {
                        Some(Platform::Server(s)) => Some(*s),
                        _ => None,
                    };
                    if let Some(s) = here {
                        if prev != Some(s) {
                            *visits.entry(s).or_insert(0.0) += lc.weight;
                        }
                    }
                    prev = here;
                }
            }
            out.push(visits);
        }
        out
    }

    /// Weighted bounce count per chain: total platform transitions along
    /// decomposed paths (ToR↔server, ToR↔NIC).
    pub fn bounce_counts(&self, assignment: &Assignment) -> Vec<f64> {
        self.chains
            .iter()
            .enumerate()
            .map(|(ci, chain)| {
                let mut bounces = 0.0;
                for lc in chain.graph.decompose() {
                    // Traffic starts and ends at the ToR.
                    let mut prev = LocKind::Tor;
                    let mut count = 0usize;
                    for id in &lc.nodes {
                        let here = loc_of(assignment[ci].get(id));
                        if here != prev {
                            count += 1;
                        }
                        prev = here;
                    }
                    if prev != LocKind::Tor {
                        count += 1; // return to ToR for egress
                    }
                    bounces += lc.weight * count as f64;
                }
                bounces
            })
            .collect()
    }

    /// Worst-path latency per chain for an assignment (ns).
    pub fn latencies_ns(&self, assignment: &Assignment) -> Vec<f64> {
        let switch_latency = match &self.topology.tor {
            Tor::Pisa(m) => m.pipeline_latency_ns(m.num_stages),
            Tor::OpenFlow { .. } => 1_000.0,
        };
        self.chains
            .iter()
            .enumerate()
            .map(|(ci, chain)| {
                let clock = self.topology.servers[0].clock_hz;
                chain
                    .graph
                    .decompose()
                    .iter()
                    .map(|lc| {
                        let mut ns = switch_latency;
                        let mut prev = LocKind::Tor;
                        for id in &lc.nodes {
                            let node = chain.graph.node(*id);
                            let here = loc_of(assignment[ci].get(id));
                            if here != prev {
                                ns += BOUNCE_LATENCY_NS;
                            }
                            match here {
                                LocKind::Server(_) => {
                                    ns += self.profiles.server_cycles(node.kind, &node.params)
                                        / clock
                                        * 1e9;
                                }
                                LocKind::Nic(_) => {
                                    let cycles = self
                                        .profiles
                                        .smartnic_cycles(node.kind, &node.params)
                                        .unwrap_or(1000.0);
                                    let nic_clock = self
                                        .topology
                                        .smartnics
                                        .first()
                                        .map(|n| n.clock_hz)
                                        .unwrap_or(clock);
                                    ns += cycles / nic_clock * 1e9;
                                }
                                LocKind::Tor => {}
                            }
                            prev = here;
                        }
                        if prev != LocKind::Tor {
                            ns += BOUNCE_LATENCY_NS;
                        }
                        ns
                    })
                    .fold(0.0, f64::max)
            })
            .collect()
    }

    /// Evaluate an assignment: subgroup formation, core allocation with
    /// `strategy`, the rate LP, and the latency check. Does NOT run the
    /// stage oracle — algorithms call that themselves so they can control
    /// how often the (expensive) compiler is invoked; they account for
    /// those calls via [`crate::oracle::CountingOracle`] and report them
    /// in [`SearchTelemetry::oracle_calls`].
    pub fn evaluate(
        &self,
        assignment: &Assignment,
        strategy: CoreStrategy,
    ) -> Result<EvaluatedPlacement, PlacementError> {
        self.evaluate_inner(assignment, Alloc::Strategy(strategy))
    }

    /// Re-evaluate an assignment with a *fixed* per-subgroup core vector
    /// (aligned with [`PlacementProblem::form_subgroups`] order). Used by
    /// the No-Profiling ablation: placement and cores were decided under
    /// wrong profiles; rates are recomputed under the true ones.
    pub fn evaluate_with_cores(
        &self,
        assignment: &Assignment,
        cores: &[usize],
    ) -> Result<EvaluatedPlacement, PlacementError> {
        self.evaluate_inner(assignment, Alloc::Fixed(cores))
    }

    fn evaluate_inner(
        &self,
        assignment: &Assignment,
        alloc: Alloc<'_>,
    ) -> Result<EvaluatedPlacement, PlacementError> {
        self.check_capabilities(assignment)?;

        // OpenFlow table-order validation (§5.3).
        if matches!(self.topology.tor, Tor::OpenFlow { .. }) {
            for (ci, chain) in self.chains.iter().enumerate() {
                for lc in chain.graph.decompose() {
                    let seq: Vec<_> = lc
                        .nodes
                        .iter()
                        .filter(|id| matches!(assignment[ci].get(id), Some(Platform::OpenFlow)))
                        .filter_map(|id| of_kind(chain.graph.node(*id).kind))
                        .collect();
                    if !lemur_openflow::validate_nf_order(&seq) {
                        return Err(PlacementError::TableOrder { chain: ci });
                    }
                }
            }
        }

        let mut subgroups = self.form_subgroups(assignment);

        // SmartNIC NFs.
        let mut nic_nfs = Vec::new();
        for (ci, chain) in self.chains.iter().enumerate() {
            let fractions = self.node_fractions(ci);
            for (id, node) in chain.graph.nodes() {
                if let Some(Platform::SmartNic(nic)) = assignment[ci].get(&id) {
                    let cycles = self
                        .profiles
                        .smartnic_cycles(node.kind, &node.params)
                        .ok_or_else(|| PlacementError::NoCapability {
                            chain: ci,
                            node: node.name.clone(),
                            platform: Platform::SmartNic(*nic),
                        })?;
                    nic_nfs.push(NicNfPlan {
                        chain: ci,
                        node: id,
                        nic: *nic,
                        cycles,
                        fraction: fractions.get(&id).copied().unwrap_or(1.0),
                    });
                }
            }
        }

        // Core allocation.
        match alloc {
            Alloc::Strategy(strategy) => corealloc::allocate(self, &mut subgroups, strategy)?,
            Alloc::Fixed(cores) => {
                if cores.len() != subgroups.len() {
                    return Err(PlacementError::Infeasible(
                        "fixed core vector length mismatch".to_string(),
                    ));
                }
                for (sg, k) in subgroups.iter_mut().zip(cores) {
                    sg.cores = (*k).max(1);
                }
            }
        }

        // Latency check (before the LP: latency is rate-independent here).
        let latency_ns = self.latencies_ns(assignment);
        for (ci, chain) in self.chains.iter().enumerate() {
            if let Some(slo) = &chain.slo {
                if let Some(d_max) = slo.d_max_ns {
                    if latency_ns[ci] > d_max {
                        return Err(PlacementError::LatencyViolation {
                            chain: ci,
                            latency_ns: latency_ns[ci],
                            d_max_ns: d_max,
                        });
                    }
                }
            }
        }

        // The marginal-throughput LP.
        let visits = self.server_visits(assignment);
        let tor_rate = match &self.topology.tor {
            Tor::Pisa(m) => m.port_rate_bps,
            Tor::OpenFlow { rate_bps } => *rate_bps,
        };
        let mut lp = Problem::new();
        let mut vars = Vec::new();
        for (ci, chain) in self.chains.iter().enumerate() {
            let slo = chain.slo.unwrap_or(lemur_core::Slo::bulk());
            let hi = slo.t_max_bps.min(tor_rate);
            if slo.t_min_bps > hi {
                return Err(PlacementError::Infeasible(format!(
                    "chain {ci}: t_min above port rate"
                )));
            }
            vars.push(lp.add_var(&format!("r{ci}"), slo.t_min_bps, hi, 1.0));
        }
        let clock0 = |s: usize| self.topology.servers[s].clock_hz;
        for sg in &subgroups {
            let cap = sg.chain_rate_capacity_bps(clock0(sg.server));
            lp.add_constraint(&[(vars[sg.chain], 1.0)], Relation::Le, cap);
        }
        // NIC-link constraints (per server, per direction).
        for s in 0..self.topology.servers.len() {
            let terms: Vec<_> = (0..self.chains.len())
                .filter_map(|ci| visits[ci].get(&s).map(|v| (vars[ci], *v)))
                .filter(|(_, v)| *v > 0.0)
                .collect();
            if !terms.is_empty() {
                lp.add_constraint(&terms, Relation::Le, self.topology.server_link_bps(s));
            }
        }
        // SmartNIC compute and port constraints.
        for (ni, nic) in self.topology.smartnics.iter().enumerate() {
            let compute_terms: Vec<_> = nic_nfs
                .iter()
                .filter(|n| n.nic == ni)
                .map(|n| (vars[n.chain], n.fraction * n.cycles / PACKET_BITS))
                .collect();
            if !compute_terms.is_empty() {
                lp.add_constraint(&compute_terms, Relation::Le, nic.clock_hz);
                let port_terms: Vec<_> = nic_nfs
                    .iter()
                    .filter(|n| n.nic == ni)
                    .map(|n| (vars[n.chain], n.fraction))
                    .collect();
                lp.add_constraint(&port_terms, Relation::Le, nic.rate_bps);
            }
        }
        let sol = lp
            .solve()
            .map_err(|e| PlacementError::Infeasible(format!("rate LP: {e}")))?;

        let chain_rates_bps: Vec<f64> = vars.iter().map(|v| sol.value(*v)).collect();
        let aggregate_bps: f64 = chain_rates_bps.iter().sum();
        let marginal_bps: f64 = chain_rates_bps
            .iter()
            .zip(&self.chains)
            .map(|(r, c)| r - c.slo.map(|s| s.t_min_bps).unwrap_or(0.0))
            .sum();
        Ok(EvaluatedPlacement {
            assignment: assignment.clone(),
            subgroups,
            nic_nfs,
            chain_rates_bps,
            aggregate_bps,
            marginal_bps,
            bounces: self.bounce_counts(assignment),
            latency_ns,
            stages_used: None,
            telemetry: None,
        })
    }
}

/// How cores are chosen during evaluation.
enum Alloc<'a> {
    Strategy(CoreStrategy),
    Fixed(&'a [usize]),
}

/// Coarse location for bounce counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LocKind {
    Tor,
    Server(usize),
    Nic(usize),
}

fn loc_of(p: Option<&Platform>) -> LocKind {
    match p {
        Some(Platform::Server(s)) => LocKind::Server(*s),
        Some(Platform::SmartNic(n)) => LocKind::Nic(*n),
        _ => LocKind::Tor,
    }
}

fn of_kind(kind: lemur_nf::NfKind) -> Option<lemur_openflow::lemur_nf_kind::NfKind> {
    use lemur_openflow::lemur_nf_kind::NfKind as Of;
    Some(match kind {
        lemur_nf::NfKind::Detunnel => Of::Detunnel,
        lemur_nf::NfKind::Acl => Of::Acl,
        lemur_nf::NfKind::Monitor => Of::Monitor,
        lemur_nf::NfKind::Tunnel => Of::Tunnel,
        lemur_nf::NfKind::Ipv4Fwd => Of::Ipv4Fwd,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corealloc::CoreStrategy;
    use lemur_core::chains::{canonical_chain, CanonicalChain};
    use lemur_core::Slo;
    use lemur_nf::NfKind;

    fn spec(which: CanonicalChain, t_min: f64) -> ChainSpec {
        ChainSpec {
            name: format!("chain{}", which.index()),
            graph: canonical_chain(which),
            slo: Some(Slo::elastic_pipe(t_min, 100e9)),
            aggregate: None,
        }
    }

    /// All-server assignment except P4-only NFs (SW Preferred shape).
    fn sw_assignment(p: &PlacementProblem) -> Assignment {
        p.chains
            .iter()
            .map(|c| {
                c.graph
                    .nodes()
                    .map(|(id, n)| {
                        let plat = if n.kind == NfKind::Ipv4Fwd {
                            Platform::Pisa
                        } else {
                            Platform::Server(0)
                        };
                        (id, plat)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn chain3_sw_evaluation() {
        let p = PlacementProblem::new(
            vec![spec(CanonicalChain::Chain3, 1e8)],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        let a = sw_assignment(&p);
        let out = p.evaluate(&a, CoreStrategy::WaterFill).unwrap();
        // Chain 3 minus IPv4Fwd is one linear run on the server: one
        // subgroup (it contains Limiter → not replicable).
        assert_eq!(out.subgroups.len(), 1);
        assert!(!out.subgroups[0].replicable);
        assert_eq!(out.subgroups[0].cores, 1);
        // Rate = clock/cycles × packet bits (fraction 1).
        let cycles = out.subgroups[0].cycles;
        let expect = 1.7e9 / cycles * PACKET_BITS;
        assert!((out.chain_rates_bps[0] - expect).abs() / expect < 1e-6);
        assert!(out.marginal_bps > 0.0);
    }

    #[test]
    fn base_rate_is_dedup_bound_for_chain3() {
        let p = PlacementProblem::new(
            vec![spec(CanonicalChain::Chain3, 0.0)],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        let base = p.base_rate_bps(0);
        let expect = 1.7e9 / (30867.0 + NSH_OVERHEAD_CYCLES) * PACKET_BITS;
        assert!((base - expect).abs() / expect < 1e-9, "{base} vs {expect}");
    }

    #[test]
    fn infeasible_when_t_min_too_high() {
        // Demand 10x what one unreplicable subgroup can do.
        let p = PlacementProblem::new(
            vec![spec(CanonicalChain::Chain3, 10e9)],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        let a = sw_assignment(&p);
        let err = p.evaluate(&a, CoreStrategy::WaterFill).unwrap_err();
        assert!(matches!(err, PlacementError::Infeasible(_)), "{err}");
    }

    #[test]
    fn capability_violation_detected() {
        let p = PlacementProblem::new(
            vec![spec(CanonicalChain::Chain5, 1e8)],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        // Put the UrlFilter (server-only) on the switch.
        let mut a = sw_assignment(&p);
        let url = p.chains[0]
            .graph
            .nodes()
            .find(|(_, n)| n.kind == NfKind::UrlFilter)
            .unwrap()
            .0;
        a[0].insert(url, Platform::Pisa);
        assert!(matches!(
            p.evaluate(&a, CoreStrategy::WaterFill).unwrap_err(),
            PlacementError::NoCapability { .. }
        ));
    }

    #[test]
    fn subgroup_split_by_pisa_nf() {
        // Chain 3 with ACL moved to the switch: Dedup | ACL(P4) |
        // Limiter->LB — two server subgroups.
        let p = PlacementProblem::new(
            vec![spec(CanonicalChain::Chain3, 1e8)],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        let mut a = sw_assignment(&p);
        let acl = p.chains[0]
            .graph
            .nodes()
            .find(|(_, n)| n.kind == NfKind::Acl)
            .unwrap()
            .0;
        a[0].insert(acl, Platform::Pisa);
        let out = p.evaluate(&a, CoreStrategy::WaterFill).unwrap();
        assert_eq!(out.subgroups.len(), 2);
        // Dedup-only subgroup is replicable; Limiter one is not.
        let dedup_sg = out.subgroups.iter().find(|sg| sg.nodes.len() == 1).unwrap();
        assert!(dedup_sg.replicable);
        // More bounces than the single-subgroup placement.
        assert!(out.bounces[0] >= 4.0);
    }

    #[test]
    fn latency_slo_enforced() {
        let mut chain = spec(CanonicalChain::Chain3, 1e8);
        // Dedup alone is ~18µs of compute; 5µs is unmeetable.
        chain.slo = Some(Slo::elastic_pipe(1e8, 100e9).with_latency_ns(5_000.0));
        let p = PlacementProblem::new(vec![chain], Topology::testbed(), NfProfiles::table4());
        let a = sw_assignment(&p);
        assert!(matches!(
            p.evaluate(&a, CoreStrategy::WaterFill).unwrap_err(),
            PlacementError::LatencyViolation { .. }
        ));
    }

    #[test]
    fn bounce_counting() {
        let p = PlacementProblem::new(
            vec![spec(CanonicalChain::Chain3, 1e8)],
            Topology::testbed(),
            NfProfiles::table4(),
        );
        // All server (except fwd): ToR→server→ToR = 2 bounces.
        let a = sw_assignment(&p);
        let b = p.bounce_counts(&a);
        assert!((b[0] - 2.0).abs() < 1e-9, "{b:?}");
        // ACL on switch splits the server run: 4 bounces.
        let mut a2 = a.clone();
        let acl = p.chains[0]
            .graph
            .nodes()
            .find(|(_, n)| n.kind == NfKind::Acl)
            .unwrap()
            .0;
        a2[0].insert(acl, Platform::Pisa);
        let b2 = p.bounce_counts(&a2);
        assert!((b2[0] - 4.0).abs() < 1e-9, "{b2:?}");
    }

    #[test]
    fn link_capacity_limits_rate() {
        // A cheap chain (5) bounced once should cap at the 40G NIC link.
        let mut chain = spec(CanonicalChain::Chain5, 1e8);
        chain.slo = Some(Slo::elastic_pipe(1e8, 200e9));
        let p = PlacementProblem::new(vec![chain], Topology::testbed(), NfProfiles::table4());
        let a = sw_assignment(&p);
        let out = p.evaluate(&a, CoreStrategy::WaterFill).unwrap();
        assert!(out.chain_rates_bps[0] <= 40e9 + 1.0);
    }
}
