//! Hierarchical fleet placement: cross-PoP chain assignment on top of the
//! existing single-rack placer.
//!
//! A fleet is a set of PoPs, each a rack the single-site placer already
//! understands. Placement decomposes in two levels:
//!
//! 1. **Cross-PoP assignment** — every chain is routed to one PoP, chosen
//!    greedily in descending [`Slo::priority`] order (ties toward the
//!    larger `t_min`, then the lower chain index) with PoPs tried
//!    least-loaded first. Each tentative assignment is validated by
//!    actually solving the PoP's accumulated subproblem with the
//!    single-rack heuristic — the subproblem *is* the oracle, so the
//!    fleet level never admits a chain a rack cannot serve.
//! 2. **Per-PoP subproblems** — the surviving chain set of each PoP is an
//!    ordinary [`PlacementProblem`] solved by
//!    [`crate::heuristic::place_with_workers`], so worker-count
//!    determinism and stage-oracle memoization carry over unchanged.
//!
//! When aggregate fleet capacity is insufficient, the chains that find no
//! seat are **shed in ascending priority order** — the same graceful-
//! degradation contract as single-rack [`crate::repair`].

use lemur_core::graph::ChainSpec;
use lemur_core::Slo;

use crate::corealloc::CoreStrategy;
use crate::heuristic::place_with_workers;
use crate::oracle::StageOracle;
use crate::parallel::Workers;
use crate::placement::{EvaluatedPlacement, PlacementProblem};
use crate::profiles::NfProfiles;
use crate::topology::Topology;

/// Fractional slack when validating a subproblem's predicted rates
/// against each chain's `t_min` (matches the supervisor's dry-run
/// tolerance).
const VALIDATION_TOL: f64 = 0.05;

/// One PoP's share of a fleet placement.
#[derive(Debug, Clone)]
pub struct PopPlan {
    /// PoP index in the fleet topology.
    pub pop: usize,
    /// Global chain indices served here, ascending.
    pub chains: Vec<usize>,
    /// The PoP-local subproblem (its chain `i` is global `chains[i]`).
    /// `None` when the PoP serves nothing.
    pub problem: Option<PlacementProblem>,
    /// The solved subproblem, aligned with `problem`.
    pub placement: Option<EvaluatedPlacement>,
}

/// A fleet-wide placement: every chain either has exactly one home PoP or
/// is listed in `shed`.
#[derive(Debug, Clone)]
pub struct FleetPlacement {
    /// One entry per PoP, index-aligned with the input topologies.
    pub pops: Vec<PopPlan>,
    /// Global chain indices shed for lack of aggregate capacity, in
    /// shedding order (ascending priority, ties toward smaller `t_min`).
    pub shed: Vec<usize>,
}

impl FleetPlacement {
    /// The home PoP of a global chain, if admitted.
    pub fn home_of(&self, chain: usize) -> Option<usize> {
        self.pops
            .iter()
            .find(|p| p.chains.contains(&chain))
            .map(|p| p.pop)
    }
}

fn slo_of(chain: &ChainSpec) -> Slo {
    chain.slo.unwrap_or(Slo::bulk())
}

/// Candidate order: descending priority, ties toward the larger `t_min`
/// (harder to seat late), then ascending index. Deterministic.
fn candidate_order(chains: &[ChainSpec], candidates: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = candidates.to_vec();
    order.sort_by(|&a, &b| {
        let (sa, sb) = (slo_of(&chains[a]), slo_of(&chains[b]));
        sb.priority
            .cmp(&sa.priority)
            .then(
                sb.t_min_bps
                    .partial_cmp(&sa.t_min_bps)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.cmp(&b))
    });
    order
}

/// Solve one PoP's subproblem for a chain set; `Ok(None)` means the rack
/// cannot serve this set (infeasible or an SLO under water).
fn solve_pop(
    chains: &[ChainSpec],
    set: &[usize],
    topology: &Topology,
    profiles: &NfProfiles,
    oracle: &dyn StageOracle,
    workers: Workers,
) -> Option<(PlacementProblem, EvaluatedPlacement)> {
    // A capacity-zero topology (e.g. a PoP fenced out of a failover
    // search) can hold nothing; the placer itself assumes ≥1 core.
    if topology.total_worker_cores() == 0 {
        return None;
    }
    let sub = PlacementProblem::new(
        set.iter().map(|&c| chains[c].clone()).collect(),
        topology.clone(),
        profiles.clone(),
    );
    let placement = place_with_workers(&sub, oracle, CoreStrategy::WaterFill, workers).ok()?;
    let feasible = set.iter().enumerate().all(|(i, &c)| {
        let t_min = slo_of(&chains[c]).t_min_bps;
        placement.chain_rates_bps[i] >= t_min * (1.0 - VALIDATION_TOL)
    });
    feasible.then_some((sub, placement))
}

/// Assign `candidates` to PoPs on top of chains already `locked` in
/// place, re-solving each touched PoP's subproblem. This is the shared
/// engine behind initial fleet placement and cross-PoP failover: at boot
/// every chain is a candidate and nothing is locked; on failover the
/// surviving PoPs' chains are locked and the drained PoP's chains are the
/// candidates.
///
/// Chains that fit nowhere are shed (never an error): an empty fleet
/// placement is still an answer, just a fully-degraded one.
pub fn assign_chains(
    chains: &[ChainSpec],
    pop_topologies: &[Topology],
    locked: &[Vec<usize>],
    candidates: &[usize],
    profiles: &NfProfiles,
    oracle: &dyn StageOracle,
    workers: Workers,
) -> FleetPlacement {
    assert_eq!(locked.len(), pop_topologies.len(), "one locked set per PoP");
    let n_pops = pop_topologies.len();
    let mut sets: Vec<Vec<usize>> = locked.to_vec();
    for set in &mut sets {
        set.sort_unstable();
    }
    // Cache of each PoP's current solved subproblem, refreshed whenever a
    // chain lands there.
    let mut solved: Vec<Option<(PlacementProblem, EvaluatedPlacement)>> = (0..n_pops)
        .map(|p| {
            if sets[p].is_empty() {
                None
            } else {
                solve_pop(
                    chains,
                    &sets[p],
                    &pop_topologies[p],
                    profiles,
                    oracle,
                    workers,
                )
            }
        })
        .collect();

    let mut shed: Vec<usize> = Vec::new();
    for c in candidate_order(chains, candidates) {
        // Least-loaded PoPs first: committed t_min per worker core, ties
        // toward the lower index. Recomputed per candidate so the greedy
        // level balances as it goes.
        let mut by_load: Vec<usize> = (0..n_pops)
            .filter(|&p| pop_topologies[p].total_worker_cores() > 0)
            .collect();
        let load = |p: usize| -> f64 {
            let committed: f64 = sets[p].iter().map(|&i| slo_of(&chains[i]).t_min_bps).sum();
            committed / pop_topologies[p].total_worker_cores() as f64
        };
        by_load.sort_by(|&a, &b| {
            load(a)
                .partial_cmp(&load(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        let mut seated = false;
        for p in by_load {
            let mut tentative = sets[p].clone();
            let at = tentative.binary_search(&c).unwrap_or_else(|i| i);
            tentative.insert(at, c);
            if let Some(ok) = solve_pop(
                chains,
                &tentative,
                &pop_topologies[p],
                profiles,
                oracle,
                workers,
            ) {
                sets[p] = tentative;
                solved[p] = Some(ok);
                seated = true;
                break;
            }
        }
        if !seated {
            shed.push(c);
        }
    }

    // Shedding order for the report: ascending priority, smaller t_min
    // first, then index — the reverse of the seating order.
    shed.reverse();

    let pops = (0..n_pops)
        .map(|p| {
            let (problem, placement) = match solved[p].take() {
                Some((pr, pl)) => (Some(pr), Some(pl)),
                None => (None, None),
            };
            PopPlan {
                pop: p,
                chains: sets[p].clone(),
                problem,
                placement,
            }
        })
        .collect();
    FleetPlacement { pops, shed }
}

/// Place a whole chain catalog onto a fleet of PoPs from scratch — the
/// hierarchical entry point. See [`assign_chains`] for the semantics.
pub fn place_fleet(
    chains: &[ChainSpec],
    pop_topologies: &[Topology],
    profiles: &NfProfiles,
    oracle: &dyn StageOracle,
    workers: Workers,
) -> FleetPlacement {
    let all: Vec<usize> = (0..chains.len()).collect();
    let locked = vec![Vec::new(); pop_topologies.len()];
    assign_chains(
        chains,
        pop_topologies,
        &locked,
        &all,
        profiles,
        oracle,
        workers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AlwaysFits;
    use lemur_core::chains::{canonical_chain, CanonicalChain};

    fn catalog(n: usize, t_min_each: f64) -> Vec<ChainSpec> {
        (0..n)
            .map(|i| {
                let which = [
                    CanonicalChain::Chain3,
                    CanonicalChain::Chain2,
                    CanonicalChain::Chain1,
                ][i % 3];
                ChainSpec {
                    name: format!("c{i}"),
                    graph: canonical_chain(which),
                    slo: Some(Slo::elastic_pipe(t_min_each, 100e9).with_priority((n - i) as u8)),
                    aggregate: None,
                }
            })
            .collect()
    }

    #[test]
    fn every_chain_has_exactly_one_home_or_is_shed() {
        let chains = catalog(4, 1e9);
        let pops = vec![Topology::with_servers(2), Topology::with_servers(2)];
        let fp = place_fleet(
            &chains,
            &pops,
            &NfProfiles::table4(),
            &AlwaysFits,
            Workers::new(1),
        );
        let mut seen = vec![0usize; chains.len()];
        for p in &fp.pops {
            for &c in &p.chains {
                seen[c] += 1;
            }
        }
        for &c in &fp.shed {
            seen[c] += 1;
        }
        assert!(seen.iter().all(|&n| n == 1), "ownership must partition");
        // Both PoPs should be earning their keep on a 4-chain catalog.
        assert!(fp.pops.iter().filter(|p| !p.chains.is_empty()).count() >= 2);
    }

    #[test]
    fn shedding_is_by_ascending_priority() {
        // One tiny PoP, demands far beyond its capacity: low-priority
        // chains must be the ones shed.
        let chains = catalog(4, 40e9);
        let pops = vec![Topology::with_servers(1)];
        let fp = place_fleet(
            &chains,
            &pops,
            &NfProfiles::table4(),
            &AlwaysFits,
            Workers::new(1),
        );
        assert!(!fp.shed.is_empty(), "overload must shed");
        let priorities: Vec<u8> = fp
            .shed
            .iter()
            .map(|&c| chains[c].slo.map_or(0, |s| s.priority))
            .collect();
        let mut sorted = priorities.clone();
        sorted.sort_unstable();
        assert_eq!(priorities, sorted, "shed order must be ascending priority");
        // The highest-priority chain always survives if anything does.
        let survivors: Vec<usize> = fp.pops.iter().flat_map(|p| p.chains.clone()).collect();
        if !survivors.is_empty() {
            assert!(survivors.contains(&0), "chain 0 has the top priority");
        }
    }

    #[test]
    fn failover_reassignment_respects_locked_chains() {
        let chains = catalog(4, 1e9);
        let pops = vec![Topology::with_servers(2), Topology::with_servers(2)];
        let fp = place_fleet(
            &chains,
            &pops,
            &NfProfiles::table4(),
            &AlwaysFits,
            Workers::new(1),
        );
        // PoP 0 dies: its chains become candidates, PoP 1 keeps its own.
        let dead: Vec<usize> = fp.pops[0].chains.clone();
        let locked = vec![Vec::new(), fp.pops[1].chains.clone()];
        let after = assign_chains(
            &chains,
            &[Topology::with_servers(0), pops[1].clone()],
            &locked,
            &dead,
            &NfProfiles::table4(),
            &AlwaysFits,
            Workers::new(1),
        );
        for &c in &fp.pops[1].chains {
            assert!(
                after.pops[1].chains.contains(&c),
                "locked chain {c} must stay at its PoP"
            );
        }
        assert!(after.pops[0].chains.is_empty(), "dead PoP seats nothing");
        for &c in &dead {
            let homed = after.pops[1].chains.contains(&c);
            let shed = after.shed.contains(&c);
            assert!(homed ^ shed, "chain {c} must fail over or shed, not both");
        }
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let chains = catalog(5, 1e9);
        let pops = vec![Topology::with_servers(2), Topology::with_servers(3)];
        let a = place_fleet(
            &chains,
            &pops,
            &NfProfiles::table4(),
            &AlwaysFits,
            Workers::new(1),
        );
        let b = place_fleet(
            &chains,
            &pops,
            &NfProfiles::table4(),
            &AlwaysFits,
            Workers::new(4),
        );
        for (pa, pb) in a.pops.iter().zip(&b.pops) {
            assert_eq!(pa.chains, pb.chains);
            assert_eq!(
                pa.placement.as_ref().map(|p| &p.assignment),
                pb.placement.as_ref().map(|p| &p.assignment)
            );
        }
        assert_eq!(a.shed, b.shed);
    }
}
