//! Baseline placement strategies (§5.1 "Comparison").
//!
//! * **HW Preferred** — as many NFs as possible on the PISA switch; spare
//!   cores split evenly among chains (models accelerator-first systems
//!   like SilkRoad).
//! * **SW Preferred** — every NF with a software implementation on the
//!   server (models kernel-bypass software NFV, e.g. NetBricks).
//! * **Minimum Bounce** — minimize switch↔server traversals (models E2's
//!   Kernighan-Lin placement).
//! * **Greedy** — HW-preferred placement, profile-aware sequential core
//!   allocation per chain index.

use crate::corealloc::CoreStrategy;
use crate::oracle::{StageOracle, StageVerdict};
use crate::placement::{Assignment, EvaluatedPlacement, PlacementError, PlacementProblem};
use crate::profiles::{Platform, PlatformClass};
use std::collections::BTreeMap;

/// Pick a concrete server for each chain's server-class NFs: first-fit on
/// the server with the most remaining (estimated) core headroom. Mirrors
/// the paper's per-chain NIC/socket association.
pub fn choose_server_per_chain(problem: &PlacementProblem, server_nodes: &[usize]) -> Vec<usize> {
    let n_servers = problem.topology.servers.len();
    let mut free: Vec<isize> = (0..n_servers)
        .map(|s| problem.topology.worker_cores(s) as isize)
        .collect();
    let mut choice = vec![0usize; problem.chains.len()];
    // Heaviest chains first grab the emptiest server.
    let mut order: Vec<usize> = (0..problem.chains.len()).collect();
    order.sort_by_key(|c| std::cmp::Reverse(server_nodes[*c]));
    for c in order {
        let s = (0..n_servers).max_by_key(|s| free[*s]).unwrap_or(0);
        choice[c] = s;
        free[s] -= server_nodes[c] as isize;
    }
    choice
}

/// The HW-preferred assignment: every NF with a PISA implementation goes
/// to the switch; everything else to a server.
pub fn hw_preferred_assignment(problem: &PlacementProblem) -> Assignment {
    let server_nodes: Vec<usize> = problem
        .chains
        .iter()
        .map(|c| {
            c.graph
                .nodes()
                .filter(|(_, n)| {
                    !(problem.topology.has_pisa()
                        && problem
                            .profiles
                            .capabilities(n.kind)
                            .contains(&PlatformClass::Pisa))
                })
                .count()
        })
        .collect();
    let servers = choose_server_per_chain(problem, &server_nodes);
    problem
        .chains
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            c.graph
                .nodes()
                .map(|(id, n)| {
                    let plat = if problem.topology.has_pisa()
                        && problem
                            .profiles
                            .capabilities(n.kind)
                            .contains(&PlatformClass::Pisa)
                    {
                        Platform::Pisa
                    } else {
                        Platform::Server(servers[ci])
                    };
                    (id, plat)
                })
                .collect::<BTreeMap<_, _>>()
        })
        .collect()
}

/// The SW-preferred assignment: every NF with a software implementation on
/// the server; NFs without one (the artificially P4-only IPv4Fwd) stay on
/// the switch.
pub fn sw_preferred_assignment(problem: &PlacementProblem) -> Assignment {
    let server_nodes: Vec<usize> = problem
        .chains
        .iter()
        .map(|c| {
            c.graph
                .nodes()
                .filter(|(_, n)| {
                    problem
                        .profiles
                        .capabilities(n.kind)
                        .contains(&PlatformClass::Server)
                })
                .count()
        })
        .collect();
    let servers = choose_server_per_chain(problem, &server_nodes);
    problem
        .chains
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            c.graph
                .nodes()
                .map(|(id, n)| {
                    let plat = if problem
                        .profiles
                        .capabilities(n.kind)
                        .contains(&PlatformClass::Server)
                    {
                        Platform::Server(servers[ci])
                    } else {
                        Platform::Pisa
                    };
                    (id, plat)
                })
                .collect::<BTreeMap<_, _>>()
        })
        .collect()
}

fn check_stages(
    problem: &PlacementProblem,
    assignment: &Assignment,
    oracle: &dyn StageOracle,
) -> Result<usize, PlacementError> {
    match oracle.check(problem, assignment) {
        StageVerdict::Fits { stages } => Ok(stages),
        StageVerdict::OutOfStages {
            required,
            available,
        } => Err(PlacementError::OutOfStages {
            required,
            available,
        }),
    }
}

/// HW Preferred: max switch offload, even spare-core split.
pub fn hw_preferred(
    problem: &PlacementProblem,
    oracle: &dyn StageOracle,
) -> Result<EvaluatedPlacement, PlacementError> {
    let assignment = hw_preferred_assignment(problem);
    let stages = check_stages(problem, &assignment, oracle)?;
    let mut out = problem.evaluate(&assignment, CoreStrategy::EvenSpare)?;
    out.stages_used = Some(stages);
    Ok(out)
}

/// SW Preferred: maximal software placement.
pub fn sw_preferred(
    problem: &PlacementProblem,
    oracle: &dyn StageOracle,
) -> Result<EvaluatedPlacement, PlacementError> {
    let assignment = sw_preferred_assignment(problem);
    let stages = check_stages(problem, &assignment, oracle)?;
    let mut out = problem.evaluate(&assignment, CoreStrategy::WaterFill)?;
    out.stages_used = Some(stages);
    Ok(out)
}

/// Greedy: HW-preferred placement with profile-aware sequential cores.
pub fn greedy(
    problem: &PlacementProblem,
    oracle: &dyn StageOracle,
) -> Result<EvaluatedPlacement, PlacementError> {
    let assignment = hw_preferred_assignment(problem);
    let stages = check_stages(problem, &assignment, oracle)?;
    let mut out = problem.evaluate(&assignment, CoreStrategy::SequentialGreedy)?;
    out.stages_used = Some(stages);
    Ok(out)
}

/// Minimum Bounce: per chain, pick the platform pattern with the fewest
/// switch↔server traversals (ties broken toward higher estimated rate),
/// then allocate cores.
pub fn min_bounce(
    problem: &PlacementProblem,
    oracle: &dyn StageOracle,
) -> Result<EvaluatedPlacement, PlacementError> {
    // Per chain, enumerate patterns and keep the min-bounce one. Patterns
    // come from the same generator as brute force.
    let per_chain = crate::brute::per_chain_patterns(problem, 4096);
    let server_nodes: Vec<usize> = problem.chains.iter().map(|c| c.graph.num_nodes()).collect();
    let servers = choose_server_per_chain(problem, &server_nodes);
    let mut assignment: Assignment = Vec::new();
    for (ci, patterns) in per_chain.iter().enumerate() {
        let mut best: Option<(f64, f64, BTreeMap<_, _>)> = None;
        for pat in patterns {
            let mapped = crate::brute::materialize(pat, servers[ci]);
            let single: Assignment = vec![mapped.clone()];
            let sub = PlacementProblem::new(
                vec![problem.chains[ci].clone()],
                problem.topology.clone(),
                problem.profiles.clone(),
            );
            let bounces = sub.bounce_counts(&single)[0];
            // Cheap rate estimate with one core per subgroup.
            let sgs = sub.form_subgroups(&single);
            let est = crate::corealloc::quick_estimate(&sub, &sgs);
            let better = match &best {
                None => true,
                Some((b, e, _)) => bounces < *b - 1e-9 || (bounces < b + 1e-9 && est > *e),
            };
            if better {
                best = Some((bounces, est, mapped));
            }
        }
        assignment.push(best.map(|(_, _, m)| m).unwrap_or_default());
    }
    let stages = check_stages(problem, &assignment, oracle)?;
    let mut out = problem.evaluate(&assignment, CoreStrategy::WaterFill)?;
    out.stages_used = Some(stages);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AlwaysFits;
    use crate::profiles::NfProfiles;
    use crate::topology::Topology;
    use lemur_core::chains::{canonical_chain, CanonicalChain};
    use lemur_core::graph::ChainSpec;
    use lemur_core::Slo;
    use lemur_nf::NfKind;

    fn problem(t_min_factor: f64) -> PlacementProblem {
        let chains = [CanonicalChain::Chain2, CanonicalChain::Chain3]
            .iter()
            .map(|w| ChainSpec {
                name: format!("chain{}", w.index()),
                graph: canonical_chain(*w),
                slo: None,
                aggregate: None,
            })
            .collect::<Vec<_>>();
        let mut p = PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4());
        for i in 0..p.chains.len() {
            let base = p.base_rate_bps(i);
            p.chains[i].slo = Some(Slo::elastic_pipe(t_min_factor * base, 100e9));
        }
        p
    }

    #[test]
    fn hw_preferred_maximizes_switch() {
        let p = problem(0.5);
        let a = hw_preferred_assignment(&p);
        // Chain 2's NATs/LB/Match/Fwd on the switch; Encrypt on server.
        let g = &p.chains[0].graph;
        for (id, n) in g.nodes() {
            match n.kind {
                NfKind::Encrypt => assert!(a[0][&id].is_server()),
                NfKind::Nat | NfKind::Lb | NfKind::Match | NfKind::Ipv4Fwd => {
                    assert_eq!(a[0][&id], Platform::Pisa)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn sw_preferred_maximizes_server() {
        let p = problem(0.5);
        let a = sw_preferred_assignment(&p);
        let g = &p.chains[0].graph;
        for (id, n) in g.nodes() {
            if n.kind == NfKind::Ipv4Fwd {
                assert_eq!(a[0][&id], Platform::Pisa); // P4-only
            } else {
                assert!(a[0][&id].is_server(), "{} should be software", n.name);
            }
        }
    }

    #[test]
    fn all_baselines_feasible_at_low_delta() {
        let p = problem(0.5);
        for (name, f) in [
            ("hw", hw_preferred as fn(_, _) -> _),
            ("sw", sw_preferred),
            ("greedy", greedy),
            ("minbounce", min_bounce),
        ] {
            let r = f(&p, &AlwaysFits);
            assert!(r.is_ok(), "{name} failed: {:?}", r.err());
            let out = r.unwrap();
            for (i, rate) in out.chain_rates_bps.iter().enumerate() {
                let t_min = p.chains[i].slo.unwrap().t_min_bps;
                assert!(rate + 1.0 >= t_min, "{name}: chain {i} below t_min");
            }
        }
    }

    #[test]
    fn sw_preferred_fails_at_high_delta() {
        // SW Preferred packs whole chains into one unreplicable subgroup,
        // so it can't scale to δ = 2.
        let p = problem(2.0);
        assert!(sw_preferred(&p, &AlwaysFits).is_err());
    }

    #[test]
    fn min_bounce_has_fewest_bounces() {
        let p = problem(0.5);
        let mb = min_bounce(&p, &AlwaysFits).unwrap();
        let hw = hw_preferred(&p, &AlwaysFits).unwrap();
        let total = |o: &EvaluatedPlacement| o.bounces.iter().sum::<f64>();
        assert!(
            total(&mb) <= total(&hw) + 1e-9,
            "minbounce {} vs hw {}",
            total(&mb),
            total(&hw)
        );
    }

    #[test]
    fn greedy_meets_slos_when_hw_does() {
        let p = problem(1.0);
        let g = greedy(&p, &AlwaysFits);
        assert!(g.is_ok(), "{:?}", g.err());
    }
}
