//! Deterministic work-sharing thread pool for the placer search.
//!
//! The paper's Placer is compiler-in-the-loop (§3.2): every candidate may
//! invoke the PISA stage-packing compiler, and exhaustive search took ~4
//! hours on the authors' machine. Candidate evaluations are independent,
//! so the search fans out — but the supervisor's last-known-good/rollback
//! logic (and the chaos-soak reproducibility invariant) requires that a
//! re-run of the placer over identical inputs yields a *bit-identical*
//! placement. The pool therefore guarantees **ordered reduction**: workers
//! pull items off a shared atomic counter (dynamic load balancing, no
//! per-worker scheduling bias) and every result is keyed by its item
//! index, so the caller observes exactly the sequential iteration order
//! regardless of worker count or OS scheduling.
//!
//! `std::thread::scope` keeps the pool dependency-free (the vendored
//! registry has no rayon) and lets closures borrow the problem, oracle,
//! and candidate list without `Arc` plumbing.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-count configuration for a parallel search phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workers(usize);

impl Workers {
    /// Exactly `n` workers (clamped to ≥ 1). `Workers::new(1)` is the
    /// sequential path: no threads are spawned at all.
    pub fn new(n: usize) -> Workers {
        Workers(n.max(1))
    }

    /// Worker count from the environment: `LEMUR_WORKERS` if set and
    /// positive, else the machine's available parallelism.
    pub fn from_env() -> Workers {
        let n = std::env::var("LEMUR_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|n| *n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Workers::new(n)
    }

    /// The configured worker count (≥ 1).
    pub fn get(&self) -> usize {
        self.0
    }

    /// True when this configuration runs inline without spawning.
    pub fn is_sequential(&self) -> bool {
        self.0 == 1
    }
}

impl Default for Workers {
    fn default() -> Workers {
        Workers::from_env()
    }
}

/// Map `f` over `items` with up to `workers` threads, returning results in
/// item order. `f(i, &items[i])` must be a pure function of its arguments
/// (plus internally synchronized shared state such as the stage-oracle
/// cache) for the output to be independent of the schedule; the pool
/// guarantees only that the *reduction order* matches the sequential path.
///
/// A worker panic propagates to the caller after the scope joins.
pub fn parallel_map<T, R, F>(workers: Workers, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n_threads = workers.get().min(items.len());
    if n_threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("placer worker panicked"))
            .collect()
    });

    // Ordered reduction: scatter results back to their item index.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for batch in collected.drain(..) {
        for (i, r) in batch {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item produced a result"))
        .collect()
}

/// Like [`parallel_map`], but flattens per-item result vectors in item
/// order — the shape of a beam expansion, where each partial produces many
/// successor candidates and the concatenation must match the sequential
/// nested-loop order exactly.
pub fn parallel_flat_map<T, R, F>(workers: Workers, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Vec<R> + Sync,
{
    parallel_map(workers, items, f)
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_item_order_for_any_worker_count() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for w in [1, 2, 3, 8, 64] {
            let got = parallel_map(Workers::new(w), &items, |_, x| x * 3 + 1);
            assert_eq!(got, expect, "workers={w}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d"];
        let got = parallel_map(Workers::new(3), &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn flat_map_preserves_nested_loop_order() {
        let items: Vec<usize> = (0..20).collect();
        let sequential: Vec<(usize, usize)> = items
            .iter()
            .flat_map(|&i| (0..3).map(move |j| (i, j)))
            .collect();
        for w in [1, 2, 8] {
            let got = parallel_flat_map(Workers::new(w), &items, |_, &i| {
                (0..3).map(|j| (i, j)).collect()
            });
            assert_eq!(got, sequential, "workers={w}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(Workers::new(8), &items, |_, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            *x
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_and_single_item_take_the_inline_path() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(Workers::new(8), &empty, |_, x| *x).is_empty());
        assert_eq!(parallel_map(Workers::new(8), &[7u32], |_, x| *x), vec![7]);
    }

    #[test]
    fn workers_clamp_and_env_fallback() {
        assert_eq!(Workers::new(0).get(), 1);
        assert!(Workers::new(0).is_sequential());
        assert!(Workers::from_env().get() >= 1);
    }
}
