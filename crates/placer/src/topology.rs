//! The rack topology the Placer plans against (§3.1).
//!
//! "A single PISA switch connected to several servers each of which may
//! have one or more attached smart NICs." The OpenFlow variant (§5.3)
//! replaces the PISA ToR.

use lemur_bess::ServerSpec;
use lemur_p4sim::PisaModel;

/// A SmartNIC attached to a server.
#[derive(Debug, Clone, PartialEq)]
pub struct SmartNicSpec {
    /// Port rate in bits/second (Netronome Agilio CX 1x40G).
    pub rate_bps: f64,
    /// Aggregate packet-processing capacity in cycles/second.
    pub clock_hz: f64,
    /// Server this NIC is attached to.
    pub server: usize,
}

impl SmartNicSpec {
    /// The testbed's Agilio CX 40G NIC.
    pub fn agilio_cx_40g(server: usize) -> SmartNicSpec {
        SmartNicSpec { rate_bps: 40e9, clock_hz: 1.7e9, server }
    }
}

/// Which ToR coordinates the rack.
#[derive(Debug, Clone, PartialEq)]
pub enum Tor {
    Pisa(PisaModel),
    OpenFlow {
        /// Port rate of the OF switch.
        rate_bps: f64,
    },
}

/// The rack.
#[derive(Debug, Clone)]
pub struct Topology {
    pub tor: Tor,
    pub servers: Vec<ServerSpec>,
    pub smartnics: Vec<SmartNicSpec>,
    /// Number of cores per server reserved for the NSH demultiplexer
    /// ("the demultiplexer runs on a single core", §4.2).
    pub demux_cores: usize,
}

impl Topology {
    /// The paper's main testbed: Tofino ToR + one dual-socket 16-core
    /// server (no SmartNIC).
    pub fn testbed() -> Topology {
        Topology {
            tor: Tor::Pisa(PisaModel::default()),
            servers: vec![ServerSpec::lemur_testbed()],
            smartnics: Vec::new(),
            demux_cores: 1,
        }
    }

    /// §5.3 multi-server variants: `n` single-socket 8-core servers.
    pub fn with_servers(n: usize) -> Topology {
        Topology {
            tor: Tor::Pisa(PisaModel::default()),
            servers: (0..n).map(|_| ServerSpec::eight_core()).collect(),
            smartnics: Vec::new(),
            demux_cores: 1,
        }
    }

    /// §5.3 SmartNIC experiment: testbed plus an Agilio on server 0.
    pub fn with_smartnic() -> Topology {
        let mut t = Topology::testbed();
        t.smartnics.push(SmartNicSpec::agilio_cx_40g(0));
        t
    }

    /// §5.3 OpenFlow experiment: OF ToR instead of PISA.
    pub fn with_openflow_tor() -> Topology {
        Topology {
            tor: Tor::OpenFlow { rate_bps: 40e9 },
            servers: vec![ServerSpec::lemur_testbed()],
            smartnics: Vec::new(),
            demux_cores: 1,
        }
    }

    /// True if the ToR is a PISA switch.
    pub fn has_pisa(&self) -> bool {
        matches!(self.tor, Tor::Pisa(_))
    }

    /// The PISA model, if present.
    pub fn pisa(&self) -> Option<&PisaModel> {
        match &self.tor {
            Tor::Pisa(m) => Some(m),
            _ => None,
        }
    }

    /// Worker cores available on a server (total minus demux reservation).
    pub fn worker_cores(&self, server: usize) -> usize {
        self.servers[server].num_cores().saturating_sub(self.demux_cores)
    }

    /// Total worker cores across servers.
    pub fn total_worker_cores(&self) -> usize {
        (0..self.servers.len()).map(|s| self.worker_cores(s)).sum()
    }

    /// NIC link rate (bits/s, per direction) of a server.
    pub fn server_link_bps(&self, server: usize) -> f64 {
        self.servers[server]
            .nics
            .first()
            .map(|n| n.rate_bps)
            .unwrap_or(40e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_shape() {
        let t = Topology::testbed();
        assert!(t.has_pisa());
        assert_eq!(t.servers.len(), 1);
        assert_eq!(t.worker_cores(0), 15); // 16 minus demux core
        assert_eq!(t.server_link_bps(0), 40e9);
    }

    #[test]
    fn multi_server() {
        let t = Topology::with_servers(2);
        assert_eq!(t.servers.len(), 2);
        assert_eq!(t.worker_cores(0), 7);
        assert_eq!(t.total_worker_cores(), 14);
    }

    #[test]
    fn smartnic_attached() {
        let t = Topology::with_smartnic();
        assert_eq!(t.smartnics.len(), 1);
        assert_eq!(t.smartnics[0].server, 0);
        assert_eq!(t.smartnics[0].rate_bps, 40e9);
    }

    #[test]
    fn openflow_tor() {
        let t = Topology::with_openflow_tor();
        assert!(!t.has_pisa());
        assert!(t.pisa().is_none());
    }
}
