//! The rack topology the Placer plans against (§3.1).
//!
//! "A single PISA switch connected to several servers each of which may
//! have one or more attached smart NICs." The OpenFlow variant (§5.3)
//! replaces the PISA ToR.

use std::collections::{BTreeMap, BTreeSet};

use lemur_bess::ServerSpec;
use lemur_p4sim::PisaModel;

/// Resources subtracted from the physical rack — the Placer's view of a
/// *degraded* topology during failure repair. A default mask hides
/// nothing, so healthy-rack planning is unchanged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceMask {
    /// Servers whose ToR↔server link (or the server itself) is down:
    /// zero usable worker cores and zero link capacity.
    pub servers_down: BTreeSet<usize>,
    /// Per-server count of failed worker cores.
    pub cores_down: BTreeMap<usize, usize>,
}

impl ResourceMask {
    /// A mask that hides nothing.
    pub fn none() -> ResourceMask {
        ResourceMask::default()
    }

    pub fn is_empty(&self) -> bool {
        self.servers_down.is_empty() && self.cores_down.is_empty()
    }

    /// Mark a server (or its uplink) as down.
    pub fn with_server_down(mut self, server: usize) -> ResourceMask {
        self.servers_down.insert(server);
        self
    }

    /// Mark `n` additional worker cores on `server` as failed.
    pub fn with_cores_down(mut self, server: usize, n: usize) -> ResourceMask {
        *self.cores_down.entry(server).or_insert(0) += n;
        self
    }
}

/// A SmartNIC attached to a server.
#[derive(Debug, Clone, PartialEq)]
pub struct SmartNicSpec {
    /// Port rate in bits/second (Netronome Agilio CX 1x40G).
    pub rate_bps: f64,
    /// Aggregate packet-processing capacity in cycles/second.
    pub clock_hz: f64,
    /// Server this NIC is attached to.
    pub server: usize,
}

impl SmartNicSpec {
    /// The testbed's Agilio CX 40G NIC.
    pub fn agilio_cx_40g(server: usize) -> SmartNicSpec {
        SmartNicSpec {
            rate_bps: 40e9,
            clock_hz: 1.7e9,
            server,
        }
    }
}

/// Which ToR coordinates the rack.
#[derive(Debug, Clone, PartialEq)]
pub enum Tor {
    Pisa(PisaModel),
    OpenFlow {
        /// Port rate of the OF switch.
        rate_bps: f64,
    },
}

/// The rack.
#[derive(Debug, Clone)]
pub struct Topology {
    pub tor: Tor,
    pub servers: Vec<ServerSpec>,
    pub smartnics: Vec<SmartNicSpec>,
    /// Number of cores per server reserved for the NSH demultiplexer
    /// ("the demultiplexer runs on a single core", §4.2).
    pub demux_cores: usize,
    /// Failed resources hidden from the Placer (empty on a healthy rack).
    pub mask: ResourceMask,
}

impl Topology {
    /// The paper's main testbed: Tofino ToR + one dual-socket 16-core
    /// server (no SmartNIC).
    pub fn testbed() -> Topology {
        Topology {
            tor: Tor::Pisa(PisaModel::default()),
            servers: vec![ServerSpec::lemur_testbed()],
            smartnics: Vec::new(),
            demux_cores: 1,
            mask: ResourceMask::none(),
        }
    }

    /// §5.3 multi-server variants: `n` single-socket 8-core servers.
    pub fn with_servers(n: usize) -> Topology {
        Topology {
            tor: Tor::Pisa(PisaModel::default()),
            servers: (0..n).map(|_| ServerSpec::eight_core()).collect(),
            smartnics: Vec::new(),
            demux_cores: 1,
            mask: ResourceMask::none(),
        }
    }

    /// §5.3 SmartNIC experiment: testbed plus an Agilio on server 0.
    pub fn with_smartnic() -> Topology {
        let mut t = Topology::testbed();
        t.smartnics.push(SmartNicSpec::agilio_cx_40g(0));
        t
    }

    /// §5.3 OpenFlow experiment: OF ToR instead of PISA.
    pub fn with_openflow_tor() -> Topology {
        Topology {
            tor: Tor::OpenFlow { rate_bps: 40e9 },
            servers: vec![ServerSpec::lemur_testbed()],
            smartnics: Vec::new(),
            demux_cores: 1,
            mask: ResourceMask::none(),
        }
    }

    /// True if the ToR is a PISA switch.
    pub fn has_pisa(&self) -> bool {
        matches!(self.tor, Tor::Pisa(_))
    }

    /// The PISA model, if present.
    pub fn pisa(&self) -> Option<&PisaModel> {
        match &self.tor {
            Tor::Pisa(m) => Some(m),
            _ => None,
        }
    }

    /// Worker cores available on a server (total minus demux reservation,
    /// minus any masked failures; 0 when the server is masked down).
    pub fn worker_cores(&self, server: usize) -> usize {
        if self.mask.servers_down.contains(&server) {
            return 0;
        }
        let failed = self.mask.cores_down.get(&server).copied().unwrap_or(0);
        self.servers[server]
            .num_cores()
            .saturating_sub(self.demux_cores)
            .saturating_sub(failed)
    }

    /// Total worker cores across servers.
    pub fn total_worker_cores(&self) -> usize {
        (0..self.servers.len()).map(|s| self.worker_cores(s)).sum()
    }

    /// NIC link rate (bits/s, per direction) of a server. Zero when the
    /// mask has the server's uplink down.
    pub fn server_link_bps(&self, server: usize) -> f64 {
        if self.mask.servers_down.contains(&server) {
            return 0.0;
        }
        self.servers[server]
            .nics
            .first()
            .map(|n| n.rate_bps)
            .unwrap_or(40e9)
    }

    /// This topology with `mask` applied — the degraded rack a repair
    /// placement plans against. The physical inventory is unchanged; only
    /// the capacity accessors above see less.
    pub fn degraded(&self, mask: ResourceMask) -> Topology {
        let mut t = self.clone();
        t.mask = mask;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_shape() {
        let t = Topology::testbed();
        assert!(t.has_pisa());
        assert_eq!(t.servers.len(), 1);
        assert_eq!(t.worker_cores(0), 15); // 16 minus demux core
        assert_eq!(t.server_link_bps(0), 40e9);
    }

    #[test]
    fn multi_server() {
        let t = Topology::with_servers(2);
        assert_eq!(t.servers.len(), 2);
        assert_eq!(t.worker_cores(0), 7);
        assert_eq!(t.total_worker_cores(), 14);
    }

    #[test]
    fn smartnic_attached() {
        let t = Topology::with_smartnic();
        assert_eq!(t.smartnics.len(), 1);
        assert_eq!(t.smartnics[0].server, 0);
        assert_eq!(t.smartnics[0].rate_bps, 40e9);
    }

    #[test]
    fn mask_hides_resources() {
        let t = Topology::with_servers(3);
        let d = t.degraded(
            ResourceMask::none()
                .with_server_down(1)
                .with_cores_down(2, 3),
        );
        // Physical inventory unchanged, capacity reduced.
        assert_eq!(d.servers.len(), 3);
        assert_eq!(d.worker_cores(0), 7);
        assert_eq!(d.worker_cores(1), 0);
        assert_eq!(d.worker_cores(2), 4);
        assert_eq!(d.server_link_bps(1), 0.0);
        assert!(d.server_link_bps(0) > 0.0);
        assert_eq!(d.total_worker_cores(), 11);
        // Masking more cores than exist saturates at zero.
        let d2 = t.degraded(ResourceMask::none().with_cores_down(0, 100));
        assert_eq!(d2.worker_cores(0), 0);
        assert!(ResourceMask::none().is_empty());
        assert!(!d.mask.is_empty());
    }

    #[test]
    fn openflow_tor() {
        let t = Topology::with_openflow_tor();
        assert!(!t.has_pisa());
        assert!(t.pisa().is_none());
    }
}
