//! Property tests for the repair pass's shedding contract.
//!
//! Whatever the failure pattern, shedding must be *predictable*: victims
//! leave in strictly ascending `(Slo::priority, t_min, index)` order, no
//! shed chain outranks a kept one, `RepairResult::rate_bps` is exactly 0
//! for every shed chain, and every kept chain's predicted rate still
//! clears its `t_min`.

use lemur_core::chains::{canonical_chain, CanonicalChain};
use lemur_core::graph::ChainSpec;
use lemur_core::Slo;
use lemur_placer::heuristic::place;
use lemur_placer::oracle::AlwaysFits;
use lemur_placer::placement::PlacementProblem;
use lemur_placer::profiles::NfProfiles;
use lemur_placer::repair_assignment;
use lemur_placer::topology::{ResourceMask, Topology};
use proptest::prelude::*;

/// Build a problem with the given per-chain `(priority, delta)` knobs on
/// a deliberately small rack, so aggressive masks force shedding.
fn build_problem(params: &[(u8, f64)]) -> PlacementProblem {
    let kinds = [CanonicalChain::Chain3, CanonicalChain::Chain5];
    let chains: Vec<ChainSpec> = params
        .iter()
        .enumerate()
        .map(|(i, _)| ChainSpec {
            name: format!("chain{i}"),
            graph: canonical_chain(kinds[i % kinds.len()]),
            slo: None,
            aggregate: None,
        })
        .collect();
    let mut p = PlacementProblem::new(chains, Topology::with_servers(1), NfProfiles::table4());
    for (i, &(priority, delta)) in params.iter().enumerate() {
        let base = p.base_rate_bps(i);
        p.chains[i].slo = Some(Slo::elastic_pipe(delta * base, 100e9).with_priority(priority));
    }
    p
}

/// The shedding sort key for an original chain index.
fn shed_key(p: &PlacementProblem, chain: usize) -> (u8, f64, usize) {
    let slo = p.chains[chain].slo.expect("every chain gets an SLO");
    (slo.priority, slo.t_min_bps, chain)
}

fn key_lt(a: &(u8, f64, usize), b: &(u8, f64, usize)) -> bool {
    (a.0, a.2).cmp(&(b.0, b.2)) == std::cmp::Ordering::Less
        || (a.0 == b.0 && a.1 < b.1)
        || (a.0 == b.0 && a.1 == b.1 && a.2 < b.2)
}

proptest! {
    #[test]
    fn shed_order_and_rate_contract(
        params in prop::collection::vec((0u8..4, 0.3f64..1.0), 2..5),
        cores_down in 2usize..7,
    ) {
        let p = build_problem(&params);
        let Ok(old) = place(&p, &AlwaysFits) else {
            return Ok(()); // rack can't host the healthy workload: not our property
        };
        let mask = ResourceMask::none().with_cores_down(0, cores_down);
        let Ok(r) = repair_assignment(&p, &old.assignment, mask, &AlwaysFits) else {
            return Ok(()); // nothing survivable: shedding everything is an error, not a result
        };

        // Shedding order is strictly ascending by (priority, t_min, index).
        for w in r.shed.windows(2) {
            let (a, b) = (shed_key(&p, w[0]), shed_key(&p, w[1]));
            prop_assert!(
                key_lt(&a, &b),
                "shed out of order: chain {} {:?} before chain {} {:?}",
                w[0], a, w[1], b
            );
        }
        // No shed chain outranks a kept one.
        for &s in &r.shed {
            for &k in &r.kept {
                let (sk, kk) = (shed_key(&p, s), shed_key(&p, k));
                prop_assert!(
                    key_lt(&sk, &kk),
                    "shed chain {s} {sk:?} outranks kept chain {k} {kk:?}"
                );
            }
        }
        // Rate contract: 0 for shed, >= t_min for kept.
        for &s in &r.shed {
            prop_assert_eq!(r.rate_bps(s), 0.0, "shed chain {} has a rate", s);
        }
        for &k in &r.kept {
            let t_min = p.chains[k].slo.unwrap().t_min_bps;
            prop_assert!(
                r.rate_bps(k) + 1.0 >= t_min,
                "kept chain {} below t_min: {} < {}",
                k, r.rate_bps(k), t_min
            );
        }
        // Bookkeeping: kept ∪ shed is exactly the original chain set.
        let mut all: Vec<usize> = r.kept.iter().chain(r.shed.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..p.chains.len()).collect::<Vec<_>>());
    }
}
