//! # lemur-control
//!
//! The online supervisor: a control plane that runs *inside* the
//! dataplane's discrete-event simulation (via
//! [`lemur_dataplane::ControlHook`]) and drives transactional hitless
//! reconfiguration when faults push chains out of their SLOs.
//!
//! The state machine:
//!
//! ```text
//!             clean window                     K violated windows
//!   Converged <────────────> Monitoring ───────────────────────────┐
//!       ▲                        ▲                                 ▼
//!       │ probation clean        │ rollback committed,        Replanning
//!       │                        │ or backoff expired clean   (repair +
//!       │                        │                             validate)
//!   Probation <── EpochCommit ── Draining <── StageCommit ────────┤
//!       │                                                         │
//!       │ violated window → stage rollback (→ Draining)           │ infeasible /
//!       ▼                                                         ▼ no-op candidate
//!   (rollback)                                   Backoff ── exp. backoff with
//!                                                   │        seeded jitter
//!                                                   ▼ attempts > max
//!                                            GracefulDegraded
//! ```
//!
//! * **Detection** is hysteretic: only `hysteresis_k` *consecutive*
//!   violated guard windows trigger a replan, so a single noisy window
//!   does not thrash the dataplane.
//! * **Replanning** calls [`lemur_placer::repair_assignment`] against the
//!   fault-masked topology; surviving chains keep their original service-
//!   path identifiers via [`lemur_metacompiler::compile_repair`], so a
//!   live swap only rewrites the tables that must change.
//! * **Validation** is a dry run: the candidate is rejected unless every
//!   surviving chain's predicted rate clears its `t_min` (within
//!   `validation_tol`).
//! * **Commit** is two-phase: the engine emits `DrainStart`, runs the old
//!   epoch for `drain_ns`, then atomically swaps — in-flight packets lost
//!   to the swap are the *update-time loss*.
//! * **Probation**: a fresh epoch must survive `probation_windows` clean
//!   windows before it is promoted to last-known-good; a violation during
//!   probation stages a *rollback* to the previous last-known-good.
//! * **Backoff** is exponential with deterministic seeded jitter;
//!   exhausting `max_attempts` parks the supervisor in
//!   [`SupervisorState::GracefulDegraded`] (serve what still works, stop
//!   churning).
//! * **Flap damping**: a link that comes back up is not trusted until it
//!   stays up for `hold_down_ns`, so a flapping link cannot drag chains
//!   back and forth.

pub mod chaos;
pub mod surge;
pub mod wal;

use std::collections::{BTreeMap, BTreeSet};

use lemur_core::Slo;
use lemur_dataplane::{
    ControlAction, ControlHook, FaultKind, MigrationError, StagedConfig, TimelineEvent,
    WindowSample,
};
use lemur_metacompiler::{compile_repair, Deployment};
use lemur_placer::corealloc::CoreStrategy;
use lemur_placer::oracle::StageOracle;
use lemur_placer::placement::{Assignment, EvaluatedPlacement, PlacementProblem};
use lemur_placer::repair_assignment;
use lemur_placer::topology::ResourceMask;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use surge::{SurgeClass, SurgeDetector};
use wal::{DecisionLog, WalRecord};

/// Tunables for the online supervisor. Times are virtual nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Consecutive violated guard windows before a replan is attempted.
    pub hysteresis_k: u32,
    /// Drain time between `DrainStart` and the atomic epoch swap.
    pub drain_ns: u64,
    /// How long a recovered link must stay up before it is trusted again.
    pub hold_down_ns: u64,
    /// First backoff interval; doubles per failed attempt (capped shift).
    pub backoff_base_ns: u64,
    /// Failed replan attempts tolerated before giving up
    /// ([`SupervisorState::GracefulDegraded`]).
    pub max_attempts: u32,
    /// Clean windows a fresh epoch must survive before promotion to
    /// last-known-good. The window containing the commit itself is grace.
    pub probation_windows: u32,
    /// Fractional slack when validating a candidate's predicted rates
    /// against `t_min` (0.05 = accept 95% of the guarantee).
    pub validation_tol: f64,
    /// Consecutive overload-classified violated windows before the
    /// degradation ladder climbs one rung (only with a surge detector).
    pub ladder_patience: u32,
    /// Consecutive calm windows before the ladder steps back down one
    /// rung. Larger than `ladder_patience` by default so recovery is
    /// more cautious than escalation.
    pub unwind_patience: u32,
    /// Seed for backoff jitter. Same seed → bit-identical decisions.
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            hysteresis_k: 2,
            drain_ns: 200_000,       // 200 µs
            hold_down_ns: 4_000_000, // 4 ms ≈ 4 guard windows
            backoff_base_ns: 2_000_000,
            max_attempts: 6,
            probation_windows: 2,
            validation_tol: 0.05,
            ladder_patience: 3,
            unwind_patience: 4,
            seed: 0,
        }
    }
}

/// Where the supervisor's state machine currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorState {
    /// Watching the guard; violations accumulate toward the hysteresis
    /// threshold.
    Monitoring,
    /// Monitoring after a clean window — the healthy terminal state.
    Converged,
    /// A replan failed (or produced nothing actionable); retry at
    /// `until_ns`.
    Backoff { until_ns: u64 },
    /// A staged configuration is draining; waiting for the epoch swap.
    Draining,
    /// A fresh epoch is on trial. `grace` skips the window that contains
    /// the commit itself (its stats straddle both epochs).
    Probation { windows_left: u32, grace: bool },
    /// Replanning gave up; serve the current (possibly shed) placement
    /// without further churn. Terminal.
    GracefulDegraded,
}

/// One entry of the supervisor's decision log, in virtual-time order.
#[derive(Debug, Clone, PartialEq)]
pub enum SupervisorEvent {
    /// Hysteresis threshold crossed; replanning started.
    Detected { at_ns: u64, streak: u32 },
    /// A repair candidate passed validation and was staged.
    Staged {
        at_ns: u64,
        shed: Vec<usize>,
        moved_nodes: usize,
        rollback: bool,
    },
    /// The engine committed the staged epoch.
    Committed {
        at_ns: u64,
        epoch: u64,
        packets_lost: u64,
        rollback: bool,
    },
    /// Replan failed or was a no-op; retrying at `until_ns`.
    BackedOff {
        at_ns: u64,
        until_ns: u64,
        attempt: u32,
    },
    /// Probation completed clean; epoch promoted to last-known-good.
    Promoted { at_ns: u64 },
    /// A recovered link survived its hold-down and was unmasked.
    LinkTrusted { at_ns: u64, server: usize },
    /// Attempts exhausted; parked.
    Degraded { at_ns: u64 },
    /// The engine aborted a staged swap because state migration failed
    /// verification; the previous epoch stayed live.
    MigrationFailed { at_ns: u64, error: MigrationError },
    /// The control plane recovered from an injected crash by replaying
    /// its decision log. `committed_epoch` is what the replay concluded
    /// is live.
    Recovered {
        at_ns: u64,
        committed_epoch: Option<u64>,
    },
    /// The degradation ladder climbed one rung under classified overload
    /// (1 = admission control, 2 = shed `chain`, 3 = replica scale-out,
    /// 4 = parked in [`SupervisorState::GracefulDegraded`]).
    LadderEscalated {
        at_ns: u64,
        rung: u8,
        chain: Option<usize>,
    },
    /// The ladder stepped back down one rung after a calm stretch
    /// (same rung numbering; 2 restores `chain`).
    LadderUnwound {
        at_ns: u64,
        rung: u8,
        chain: Option<usize>,
    },
}

impl SupervisorEvent {
    pub fn at_ns(&self) -> u64 {
        match self {
            SupervisorEvent::Detected { at_ns, .. }
            | SupervisorEvent::Staged { at_ns, .. }
            | SupervisorEvent::Committed { at_ns, .. }
            | SupervisorEvent::BackedOff { at_ns, .. }
            | SupervisorEvent::Promoted { at_ns }
            | SupervisorEvent::LinkTrusted { at_ns, .. }
            | SupervisorEvent::Degraded { at_ns }
            | SupervisorEvent::MigrationFailed { at_ns, .. }
            | SupervisorEvent::Recovered { at_ns, .. }
            | SupervisorEvent::LadderEscalated { at_ns, .. }
            | SupervisorEvent::LadderUnwound { at_ns, .. } => *at_ns,
        }
    }
}

/// Why a replan was kicked off — changes what a no-op candidate means.
#[derive(Clone, Copy, PartialEq)]
enum ReplanReason {
    /// The guard said chains are hurting. A candidate identical to the
    /// running config means repair cannot help → backoff.
    Violation,
    /// A masked resource came back; try to re-admit / re-home. A no-op
    /// candidate just means nothing was displaced → stay put.
    Improve,
}

/// What a commit means for the degradation ladder's bookkeeping. The
/// delta is applied at commit time, not stage time, so an aborted
/// migration never records a rung that was not actually climbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LadderDelta {
    /// The staged epoch sheds `chain` under overload.
    Shed(usize),
    /// The staged epoch re-admits previously-shed `chain`.
    Restore(usize),
    /// The staged epoch is a scale-out re-placement of the survivors.
    ScaleOut,
}

/// Bookkeeping for a staged-but-not-yet-committed configuration.
struct PendingCommit {
    /// Original-chain-indexed assignment after the swap (shed chains keep
    /// their stale entry as a re-admission hint).
    assignment: Assignment,
    admitted: Vec<bool>,
    /// Ladder rung this commit climbs or unwinds, if any.
    ladder: Option<LadderDelta>,
}

/// The online control plane. Implements [`ControlHook`]; hand it to
/// [`lemur_dataplane::Testbed::run_supervised`].
pub struct Supervisor<'a> {
    cfg: SupervisorConfig,
    /// The original (healthy-rack) problem; repairs degrade its topology.
    problem: PlacementProblem,
    oracle: &'a dyn StageOracle,
    /// Original base SPIs per chain, so survivors keep their identifiers.
    entry_spi: Vec<u32>,

    /// What the dataplane is running right now (original-chain indexed).
    current_assignment: Assignment,
    current_admitted: Vec<bool>,
    /// Last configuration that survived probation.
    lkg_assignment: Assignment,
    lkg_admitted: Vec<bool>,

    /// Fault mask the supervisor believes in.
    servers_down: BTreeSet<usize>,
    failed_cores: BTreeSet<(usize, usize)>,
    /// Recovered links serving their hold-down: server → trust time.
    link_trust_at: BTreeMap<usize, u64>,

    state: SupervisorState,
    streak: u32,
    attempts: u32,
    /// Set when the mask shrank (hold-down expiry); prompts an
    /// opportunistic re-admission replan.
    improve_pending: bool,
    pending: Option<PendingCommit>,
    rng: StdRng,
    events: Vec<SupervisorEvent>,
    /// Write-ahead decision log: every intent precedes its commit, so a
    /// crash at any point replays to a consistent state.
    wal: DecisionLog,

    /// Overload classifier; without one every violation is degradation
    /// and the ladder never engages (the pre-surge-aware behavior).
    surge: Option<SurgeDetector>,
    /// Consecutive overload-classified violated windows toward the next
    /// ladder escalation.
    overload_windows: u32,
    /// Consecutive calm windows toward the next ladder unwind.
    calm_windows: u32,
    /// Rung 1: the dataplane is currently denying DDoS-flagged tail mass.
    admission_on: bool,
    /// Rung 2: chains shed by the ladder, in shed order (unwound LIFO).
    overload_shed: Vec<usize>,
    /// Rung 3: the survivors were re-placed with scale-out.
    scaled_out: bool,
    /// Rung 4: `GracefulDegraded` was entered by the ladder (recoverable
    /// on calm), not by exhausting repair attempts (terminal).
    ladder_parked: bool,
    /// Violation-triggered replans actually attempted.
    repair_attempts: u64,
    /// Violated windows where overload classification suppressed the
    /// repair loop.
    suppressed_replans: u64,
}

impl<'a> Supervisor<'a> {
    /// Build a supervisor for a deployed placement. Call *before*
    /// [`lemur_dataplane::Testbed::build`] consumes the deployment — the
    /// supervisor only copies the routing plan's entry SPIs out of it.
    pub fn new(
        problem: &PlacementProblem,
        placement: &EvaluatedPlacement,
        deployment: &Deployment,
        oracle: &'a dyn StageOracle,
        cfg: SupervisorConfig,
    ) -> Supervisor<'a> {
        let n = problem.chains.len();
        Supervisor {
            cfg,
            problem: problem.clone(),
            oracle,
            entry_spi: deployment.routing.entry_spi.clone(),
            current_assignment: placement.assignment.clone(),
            current_admitted: vec![true; n],
            lkg_assignment: placement.assignment.clone(),
            lkg_admitted: vec![true; n],
            servers_down: BTreeSet::new(),
            failed_cores: BTreeSet::new(),
            link_trust_at: BTreeMap::new(),
            state: SupervisorState::Converged,
            streak: 0,
            attempts: 0,
            improve_pending: false,
            pending: None,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x5157_e501),
            events: Vec::new(),
            wal: DecisionLog::new(),
            surge: None,
            overload_windows: 0,
            calm_windows: 0,
            admission_on: false,
            overload_shed: Vec::new(),
            scaled_out: false,
            ladder_parked: false,
            repair_attempts: 0,
            suppressed_replans: 0,
        }
    }

    /// Attach an overload classifier. With one installed, violated
    /// windows classified [`SurgeClass::Overload`] suppress the repair
    /// loop and drive the graceful-degradation ladder instead.
    pub fn with_surge_detector(mut self, detector: SurgeDetector) -> Supervisor<'a> {
        self.surge = Some(detector);
        self
    }

    pub fn state(&self) -> SupervisorState {
        self.state
    }

    /// True in the states a chaos soak is allowed to end in.
    pub fn is_settled(&self) -> bool {
        matches!(
            self.state,
            SupervisorState::Converged | SupervisorState::GracefulDegraded
        )
    }

    /// Chains currently admitted (original indices).
    pub fn admitted(&self) -> &[bool] {
        &self.current_admitted
    }

    /// Failed replan attempts since the last promotion.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Violation-triggered replans actually attempted over the run.
    pub fn repair_attempts(&self) -> u64 {
        self.repair_attempts
    }

    /// Violated windows where overload classification held the repair
    /// loop back.
    pub fn suppressed_replans(&self) -> u64 {
        self.suppressed_replans
    }

    /// True while any ladder rung is active (admission denial, an
    /// overload shed, or a scale-out placement).
    pub fn ladder_engaged(&self) -> bool {
        self.admission_on || !self.overload_shed.is_empty() || self.scaled_out
    }

    /// Chains currently shed by the ladder, in shed order.
    pub fn overload_shed(&self) -> &[usize] {
        &self.overload_shed
    }

    /// The surge detector's current classification, if one is attached.
    pub fn is_overload(&self) -> bool {
        self.surge.as_ref().is_some_and(|d| d.is_overload())
    }

    /// The decision log, in virtual-time order.
    pub fn events(&self) -> &[SupervisorEvent] {
        &self.events
    }

    /// The write-ahead decision log (intents, commits, failures,
    /// recoveries), in virtual-time order.
    pub fn wal(&self) -> &DecisionLog {
        &self.wal
    }

    /// The fault mask the supervisor currently distrusts.
    pub fn mask(&self) -> ResourceMask {
        let mut mask = ResourceMask::none();
        for &s in &self.servers_down {
            mask = mask.with_server_down(s);
        }
        let mut per_server: BTreeMap<usize, usize> = BTreeMap::new();
        for &(s, _) in &self.failed_cores {
            *per_server.entry(s).or_insert(0) += 1;
        }
        for (s, n) in per_server {
            mask = mask.with_cores_down(s, n);
        }
        mask
    }

    /// Unmask links whose hold-down elapsed by `now`.
    fn expire_hold_downs(&mut self, now: u64) {
        let ready: Vec<usize> = self
            .link_trust_at
            .iter()
            .filter(|&(_, &at)| now >= at)
            .map(|(&s, _)| s)
            .collect();
        for s in ready {
            self.link_trust_at.remove(&s);
            if self.servers_down.remove(&s) {
                self.improve_pending = true;
                self.events.push(SupervisorEvent::LinkTrusted {
                    at_ns: now,
                    server: s,
                });
            }
        }
    }

    fn backoff(&mut self, now: u64) -> ControlAction {
        self.attempts += 1;
        if self.attempts > self.cfg.max_attempts {
            self.state = SupervisorState::GracefulDegraded;
            self.events.push(SupervisorEvent::Degraded { at_ns: now });
            return ControlAction::Continue;
        }
        let base = self.cfg.backoff_base_ns << (self.attempts - 1).min(10);
        let jitter = self.rng.gen_range(0..base / 2 + 1);
        let until_ns = now + base + jitter;
        self.state = SupervisorState::Backoff { until_ns };
        self.events.push(SupervisorEvent::BackedOff {
            at_ns: now,
            until_ns,
            attempt: self.attempts,
        });
        ControlAction::Continue
    }

    /// Full admitted/SLO vectors (original-chain indexed) for a kept set.
    fn admission_vectors(&self, kept: &[usize]) -> (Vec<bool>, Vec<Option<Slo>>) {
        let n = self.problem.chains.len();
        let mut admitted = vec![false; n];
        let mut slos = vec![None; n];
        for &c in kept {
            admitted[c] = true;
            slos[c] = self.problem.chains[c].slo;
        }
        (admitted, slos)
    }

    /// Repair against the current mask, validate, and stage a commit.
    fn try_replan(&mut self, now: u64, reason: ReplanReason) -> ControlAction {
        self.streak = 0;
        self.improve_pending = false;
        if reason == ReplanReason::Violation {
            self.repair_attempts += 1;
        }
        let fail = |s: &mut Self| match reason {
            ReplanReason::Violation => s.backoff(now),
            ReplanReason::Improve => ControlAction::Continue,
        };

        let mask = self.mask();
        let r = match repair_assignment(&self.problem, &self.current_assignment, mask, self.oracle)
        {
            Ok(r) => r,
            Err(_) => return fail(self),
        };

        let (admitted, slos) = self.admission_vectors(&r.kept);
        let unchanged = admitted == self.current_admitted
            && r.kept
                .iter()
                .enumerate()
                .all(|(i, &c)| r.placement.assignment[i] == self.current_assignment[c]);
        if unchanged {
            // Repair has nothing to offer (e.g. the violation is a traffic
            // lull or an unmaskable crash): backing off is all we can do.
            return fail(self);
        }

        // Dry-run validation: every survivor must still clear its t_min.
        let valid = r.kept.iter().enumerate().all(|(i, &c)| {
            let t_min = self.problem.chains[c].slo.map_or(0.0, |s| s.t_min_bps);
            r.placement.chain_rates_bps[i] >= t_min * (1.0 - self.cfg.validation_tol)
        });
        if !valid {
            return fail(self);
        }

        let bases: Vec<u32> = r.kept.iter().map(|&c| self.entry_spi[c]).collect();
        let deployment = match compile_repair(&r.problem, &r.placement, &bases) {
            Ok(d) => d,
            Err(_) => return fail(self),
        };
        let staged = match StagedConfig::build(
            &r.problem,
            &r.placement,
            deployment,
            admitted.clone(),
            slos,
            false,
        ) {
            Ok(s) => s,
            Err(_) => return fail(self),
        };

        let moved = r.moved_nodes(&self.current_assignment);
        let mut assignment = self.current_assignment.clone();
        for (i, &c) in r.kept.iter().enumerate() {
            assignment[c] = r.placement.assignment[i].clone();
        }
        self.pending = Some(PendingCommit {
            assignment,
            admitted,
            ladder: None,
        });
        self.state = SupervisorState::Draining;
        // WAL intent first: a crash after this point replays as "swap of
        // unknown outcome", never as silent state loss.
        self.wal.append(WalRecord::Intent {
            at_ns: now,
            rollback: false,
            shed: r.shed.clone(),
        });
        self.events.push(SupervisorEvent::Staged {
            at_ns: now,
            shed: r.shed.clone(),
            moved_nodes: moved,
            rollback: false,
        });
        ControlAction::StageCommit {
            staged: Box::new(staged),
            drain_ns: self.cfg.drain_ns,
        }
    }

    /// Stage a return to the last-known-good placement (on the degraded
    /// topology). Falls back to backoff → fresh repair if LKG no longer
    /// fits the surviving rack.
    fn stage_rollback(&mut self, now: u64) -> ControlAction {
        let kept: Vec<usize> = (0..self.problem.chains.len())
            .filter(|&c| self.lkg_admitted[c])
            .collect();
        let sub = PlacementProblem {
            chains: kept
                .iter()
                .map(|&c| self.problem.chains[c].clone())
                .collect(),
            topology: self.problem.topology.degraded(self.mask()),
            profiles: self.problem.profiles.clone(),
        };
        let sub_assignment: Assignment = kept
            .iter()
            .map(|&c| self.lkg_assignment[c].clone())
            .collect();
        let evaluated = match sub.evaluate(&sub_assignment, CoreStrategy::WaterFill) {
            Ok(ev) => ev,
            Err(_) => return self.backoff(now),
        };
        let bases: Vec<u32> = kept.iter().map(|&c| self.entry_spi[c]).collect();
        let deployment = match compile_repair(&sub, &evaluated, &bases) {
            Ok(d) => d,
            Err(_) => return self.backoff(now),
        };
        let (admitted, slos) = self.admission_vectors(&kept);
        let staged =
            match StagedConfig::build(&sub, &evaluated, deployment, admitted.clone(), slos, true) {
                Ok(s) => s,
                Err(_) => return self.backoff(now),
            };

        let mut assignment = self.current_assignment.clone();
        for &c in &kept {
            assignment[c] = self.lkg_assignment[c].clone();
        }
        self.pending = Some(PendingCommit {
            assignment,
            admitted,
            ladder: None,
        });
        self.state = SupervisorState::Draining;
        self.wal.append(WalRecord::Intent {
            at_ns: now,
            rollback: true,
            shed: Vec::new(),
        });
        self.events.push(SupervisorEvent::Staged {
            at_ns: now,
            shed: Vec::new(),
            moved_nodes: 0,
            rollback: true,
        });
        ControlAction::StageCommit {
            staged: Box::new(staged),
            drain_ns: self.cfg.drain_ns,
        }
    }

    /// Shed-priority of a chain (higher survives longer).
    fn chain_priority(&self, c: usize) -> u8 {
        self.problem.chains[c].slo.map_or(0, |s| s.priority)
    }

    /// The next chain the ladder would shed: lowest [`Slo::priority`]
    /// among the admitted, but never the single most important chain —
    /// something must keep serving all the way to `GracefulDegraded`.
    fn shed_victim(&self) -> Option<usize> {
        let admitted: Vec<usize> = (0..self.problem.chains.len())
            .filter(|&c| self.current_admitted[c])
            .collect();
        let top = admitted
            .iter()
            .copied()
            .max_by_key(|&c| (self.chain_priority(c), std::cmp::Reverse(c)))?;
        admitted
            .iter()
            .copied()
            .filter(|&c| c != top)
            .min_by_key(|&c| (self.chain_priority(c), c))
    }

    /// Flip the dataplane's per-chain junk-admission denial (rung 1).
    /// Takes effect immediately — no epoch swap, no drain loss.
    fn set_admission(&mut self, now: u64, deny: bool) -> ControlAction {
        self.admission_on = deny;
        self.wal
            .append(WalRecord::AdmissionControl { at_ns: now, deny });
        let event = if deny {
            SupervisorEvent::LadderEscalated {
                at_ns: now,
                rung: 1,
                chain: None,
            }
        } else {
            SupervisorEvent::LadderUnwound {
                at_ns: now,
                rung: 1,
                chain: None,
            }
        };
        self.events.push(event);
        ControlAction::SetTailAdmission {
            deny_junk: vec![deny; self.problem.chains.len()],
        }
    }

    /// Stage a two-phase commit whose only change is admission: shed
    /// `victim` (rung 2 up) or re-admit `restore` (rung 2 down). The
    /// survivors keep their placements; the shed chain keeps its stale
    /// assignment entry as the re-admission hint.
    fn stage_ladder_swap(
        &mut self,
        now: u64,
        victim: Option<usize>,
        restore: Option<usize>,
    ) -> ControlAction {
        let kept: Vec<usize> = (0..self.problem.chains.len())
            .filter(|&c| (self.current_admitted[c] || Some(c) == restore) && Some(c) != victim)
            .collect();
        let sub = PlacementProblem {
            chains: kept
                .iter()
                .map(|&c| self.problem.chains[c].clone())
                .collect(),
            topology: self.problem.topology.degraded(self.mask()),
            profiles: self.problem.profiles.clone(),
        };
        let sub_assignment: Assignment = kept
            .iter()
            .map(|&c| self.current_assignment[c].clone())
            .collect();
        let evaluated = match sub.evaluate(&sub_assignment, CoreStrategy::WaterFill) {
            Ok(ev) => ev,
            // Infeasible (e.g. the restored chain no longer fits the
            // degraded rack): leave the rung as it is and retry on the
            // next patience expiry.
            Err(_) => return ControlAction::Continue,
        };
        let bases: Vec<u32> = kept.iter().map(|&c| self.entry_spi[c]).collect();
        let deployment = match compile_repair(&sub, &evaluated, &bases) {
            Ok(d) => d,
            Err(_) => return ControlAction::Continue,
        };
        let (admitted, slos) = self.admission_vectors(&kept);
        let staged = match StagedConfig::build(
            &sub,
            &evaluated,
            deployment,
            admitted.clone(),
            slos,
            false,
        ) {
            Ok(s) => s,
            Err(_) => return ControlAction::Continue,
        };

        let delta = match (victim, restore) {
            (Some(c), _) => LadderDelta::Shed(c),
            (_, Some(c)) => LadderDelta::Restore(c),
            _ => unreachable!("ladder swap needs a victim or a restore"),
        };
        self.pending = Some(PendingCommit {
            assignment: self.current_assignment.clone(),
            admitted,
            ladder: Some(delta),
        });
        self.state = SupervisorState::Draining;
        let shed: Vec<usize> = victim.into_iter().collect();
        self.wal.append(WalRecord::Intent {
            at_ns: now,
            rollback: false,
            shed: shed.clone(),
        });
        let event = match delta {
            LadderDelta::Shed(c) => SupervisorEvent::LadderEscalated {
                at_ns: now,
                rung: 2,
                chain: Some(c),
            },
            LadderDelta::Restore(c) => SupervisorEvent::LadderUnwound {
                at_ns: now,
                rung: 2,
                chain: Some(c),
            },
            LadderDelta::ScaleOut => unreachable!(),
        };
        self.events.push(event);
        self.events.push(SupervisorEvent::Staged {
            at_ns: now,
            shed,
            moved_nodes: 0,
            rollback: false,
        });
        ControlAction::StageCommit {
            staged: Box::new(staged),
            drain_ns: self.cfg.drain_ns,
        }
    }

    /// Rung 3: ask the placer for a fresh scale-out placement of the
    /// surviving chains on the fault-masked topology.
    fn stage_scaleout(&mut self, now: u64) -> ControlAction {
        let kept: Vec<usize> = (0..self.problem.chains.len())
            .filter(|&c| self.current_admitted[c])
            .collect();
        let sub = PlacementProblem {
            chains: kept
                .iter()
                .map(|&c| self.problem.chains[c].clone())
                .collect(),
            topology: self.problem.topology.degraded(self.mask()),
            profiles: self.problem.profiles.clone(),
        };
        let evaluated = match lemur_placer::heuristic::place(&sub, self.oracle) {
            Ok(ev) => ev,
            Err(_) => {
                // No scale-out exists: spend the rung so the ladder can
                // move on to parking rather than retrying forever.
                self.scaled_out = true;
                return ControlAction::Continue;
            }
        };
        let unchanged = kept
            .iter()
            .enumerate()
            .all(|(i, &c)| evaluated.assignment[i] == self.current_assignment[c]);
        if unchanged {
            self.scaled_out = true;
            return ControlAction::Continue;
        }
        let bases: Vec<u32> = kept.iter().map(|&c| self.entry_spi[c]).collect();
        let deployment = match compile_repair(&sub, &evaluated, &bases) {
            Ok(d) => d,
            Err(_) => {
                self.scaled_out = true;
                return ControlAction::Continue;
            }
        };
        let (admitted, slos) = self.admission_vectors(&kept);
        let staged = match StagedConfig::build(
            &sub,
            &evaluated,
            deployment,
            admitted.clone(),
            slos,
            false,
        ) {
            Ok(s) => s,
            Err(_) => {
                self.scaled_out = true;
                return ControlAction::Continue;
            }
        };

        let moved = kept
            .iter()
            .enumerate()
            .filter(|&(i, &c)| evaluated.assignment[i] != self.current_assignment[c])
            .count();
        let mut assignment = self.current_assignment.clone();
        for (i, &c) in kept.iter().enumerate() {
            assignment[c] = evaluated.assignment[i].clone();
        }
        self.pending = Some(PendingCommit {
            assignment,
            admitted,
            ladder: Some(LadderDelta::ScaleOut),
        });
        self.state = SupervisorState::Draining;
        self.wal.append(WalRecord::Intent {
            at_ns: now,
            rollback: false,
            shed: Vec::new(),
        });
        self.events.push(SupervisorEvent::LadderEscalated {
            at_ns: now,
            rung: 3,
            chain: None,
        });
        self.events.push(SupervisorEvent::Staged {
            at_ns: now,
            shed: Vec::new(),
            moved_nodes: moved,
            rollback: false,
        });
        ControlAction::StageCommit {
            staged: Box::new(staged),
            drain_ns: self.cfg.drain_ns,
        }
    }

    /// Climb one rung: admission denial → shed (ascending priority) →
    /// scale-out → park. Each step is the cheapest remaining lever.
    fn escalate_ladder(&mut self, now: u64) -> ControlAction {
        if !self.admission_on {
            return self.set_admission(now, true);
        }
        if let Some(victim) = self.shed_victim() {
            return self.stage_ladder_swap(now, Some(victim), None);
        }
        if !self.scaled_out {
            return self.stage_scaleout(now);
        }
        if self.state != SupervisorState::GracefulDegraded {
            self.ladder_parked = true;
            self.state = SupervisorState::GracefulDegraded;
            self.events.push(SupervisorEvent::LadderEscalated {
                at_ns: now,
                rung: 4,
                chain: None,
            });
            self.events.push(SupervisorEvent::Degraded { at_ns: now });
        }
        ControlAction::Continue
    }

    /// Step one rung back down, in reverse order of escalation.
    fn unwind_ladder(&mut self, now: u64) -> ControlAction {
        if self.scaled_out {
            // The scale-out placement is not harmful on a calm rack;
            // fold it back through the normal improve path instead of a
            // dedicated swap.
            self.scaled_out = false;
            self.improve_pending = true;
            self.events.push(SupervisorEvent::LadderUnwound {
                at_ns: now,
                rung: 3,
                chain: None,
            });
            return ControlAction::Continue;
        }
        if let Some(&chain) = self.overload_shed.last() {
            return self.stage_ladder_swap(now, None, Some(chain));
        }
        if self.admission_on {
            return self.set_admission(now, false);
        }
        ControlAction::Continue
    }
}

impl ControlHook for Supervisor<'_> {
    fn on_fault(&mut self, at_ns: u64, kind: &FaultKind) -> ControlAction {
        match *kind {
            FaultKind::LinkDown { server } => {
                // Distrust is immediate; any pending re-trust is void.
                self.servers_down.insert(server);
                self.link_trust_at.remove(&server);
            }
            FaultKind::LinkUp { server } => {
                // Trust is slow: start the hold-down clock.
                if self.servers_down.contains(&server) {
                    self.link_trust_at
                        .insert(server, at_ns + self.cfg.hold_down_ns);
                }
            }
            FaultKind::CoreFail { server, core } => {
                self.failed_cores.insert((server, core));
            }
            // Crashes, drift, and surges don't map onto rack resources;
            // the guard decides whether they hurt enough to act on.
            // Migration faults arm inside the engine and surface through
            // `on_migration_failed` if a swap is actually attempted.
            FaultKind::NfCrash { .. }
            | FaultKind::NfRecover { .. }
            | FaultKind::ProfileDrift { .. }
            | FaultKind::TrafficSurge { .. }
            | FaultKind::MigrationFault { .. } => {}
        }
        if self.state == SupervisorState::Converged {
            self.state = SupervisorState::Monitoring;
        }
        ControlAction::Continue
    }

    fn on_window(
        &mut self,
        end_ns: u64,
        samples: &[WindowSample],
        violations: &[TimelineEvent],
    ) -> ControlAction {
        // Keep the classifier's hysteresis current in every state, even
        // the ones that take no action this window.
        let overload = match self.surge.as_mut() {
            Some(det) => det.observe(samples) == SurgeClass::Overload,
            None => false,
        };
        let violated = !violations.is_empty();

        if self.state == SupervisorState::GracefulDegraded {
            if !self.ladder_parked {
                // Parked by exhausted repair attempts: terminal.
                return ControlAction::Continue;
            }
            // Parked by the ladder: a calm stretch un-parks it.
            if violated || overload {
                self.calm_windows = 0;
                return ControlAction::Continue;
            }
            self.calm_windows += 1;
            if self.calm_windows >= self.cfg.unwind_patience {
                self.calm_windows = 0;
                self.ladder_parked = false;
                self.attempts = 0;
                self.streak = 0;
                self.state = SupervisorState::Monitoring;
                self.events.push(SupervisorEvent::LadderUnwound {
                    at_ns: end_ns,
                    rung: 4,
                    chain: None,
                });
            }
            return ControlAction::Continue;
        }
        self.expire_hold_downs(end_ns);

        match self.state {
            SupervisorState::Monitoring | SupervisorState::Converged => {
                if violated && overload {
                    // Pure surge: a replan cannot manufacture capacity
                    // that was never provisioned, and churning the
                    // dataplane now maximizes update-time loss. Suppress
                    // the repair loop; climb the ladder instead.
                    self.suppressed_replans += 1;
                    self.streak = 0;
                    self.calm_windows = 0;
                    self.state = SupervisorState::Monitoring;
                    self.overload_windows += 1;
                    if self.overload_windows >= self.cfg.ladder_patience {
                        self.overload_windows = 0;
                        return self.escalate_ladder(end_ns);
                    }
                    return ControlAction::Continue;
                }
                self.overload_windows = 0;
                if violated {
                    self.streak += 1;
                    self.calm_windows = 0;
                    self.state = SupervisorState::Monitoring;
                } else {
                    self.streak = 0;
                    self.state = SupervisorState::Converged;
                    if self.ladder_engaged() {
                        if overload {
                            self.calm_windows = 0;
                        } else {
                            self.calm_windows += 1;
                        }
                        if self.calm_windows >= self.cfg.unwind_patience {
                            self.calm_windows = 0;
                            return self.unwind_ladder(end_ns);
                        }
                    }
                }
                if self.streak >= self.cfg.hysteresis_k {
                    self.events.push(SupervisorEvent::Detected {
                        at_ns: end_ns,
                        streak: self.streak,
                    });
                    return self.try_replan(end_ns, ReplanReason::Violation);
                }
                if self.improve_pending && !overload {
                    return self.try_replan(end_ns, ReplanReason::Improve);
                }
                ControlAction::Continue
            }
            SupervisorState::Backoff { until_ns } => {
                if end_ns < until_ns {
                    return ControlAction::Continue;
                }
                if violated && overload {
                    // The episode is (or became) overload: stop charging
                    // repair attempts and let the ladder logic see it.
                    self.suppressed_replans += 1;
                    self.streak = 0;
                    self.state = SupervisorState::Monitoring;
                    return ControlAction::Continue;
                }
                if violated {
                    return self.try_replan(end_ns, ReplanReason::Violation);
                }
                // The episode resolved itself while we waited.
                self.attempts = 0;
                self.streak = 0;
                self.state = SupervisorState::Monitoring;
                if self.improve_pending && !overload {
                    return self.try_replan(end_ns, ReplanReason::Improve);
                }
                ControlAction::Continue
            }
            SupervisorState::Draining => ControlAction::Continue,
            SupervisorState::Probation {
                windows_left,
                grace,
            } => {
                if grace {
                    // This window straddles the swap; its stats mix epochs.
                    self.state = SupervisorState::Probation {
                        windows_left,
                        grace: false,
                    };
                    return ControlAction::Continue;
                }
                if violated && !overload {
                    return self.stage_rollback(end_ns);
                }
                let left = windows_left.saturating_sub(1);
                if left == 0 {
                    self.lkg_assignment = self.current_assignment.clone();
                    self.lkg_admitted = self.current_admitted.clone();
                    self.attempts = 0;
                    self.streak = 0;
                    self.state = SupervisorState::Converged;
                    self.events
                        .push(SupervisorEvent::Promoted { at_ns: end_ns });
                } else {
                    self.state = SupervisorState::Probation {
                        windows_left: left,
                        grace: false,
                    };
                }
                ControlAction::Continue
            }
            SupervisorState::GracefulDegraded => ControlAction::Continue,
        }
    }

    fn on_commit(&mut self, at_ns: u64, epoch: u64, packets_lost: u64, rollback: bool) {
        if let Some(pending) = self.pending.take() {
            self.current_assignment = pending.assignment;
            self.current_admitted = pending.admitted;
            match pending.ladder {
                Some(LadderDelta::Shed(c)) => self.overload_shed.push(c),
                Some(LadderDelta::Restore(c)) => self.overload_shed.retain(|&x| x != c),
                Some(LadderDelta::ScaleOut) => self.scaled_out = true,
                None => {}
            }
            // A non-ladder commit (repair or rollback) may re-admit
            // chains the ladder had shed; reconcile so the unwind never
            // tries to restore an already-admitted chain.
            self.overload_shed.retain(|&c| !self.current_admitted[c]);
        }
        self.wal.append(WalRecord::Committed {
            at_ns,
            epoch,
            rollback,
        });
        self.events.push(SupervisorEvent::Committed {
            at_ns,
            epoch,
            packets_lost,
            rollback,
        });
        self.streak = 0;
        self.state = if rollback {
            // Back on known-good ground; monitor rather than re-trial.
            SupervisorState::Monitoring
        } else if self.cfg.probation_windows == 0 {
            self.lkg_assignment = self.current_assignment.clone();
            self.lkg_admitted = self.current_admitted.clone();
            self.attempts = 0;
            SupervisorState::Converged
        } else {
            SupervisorState::Probation {
                windows_left: self.cfg.probation_windows,
                grace: true,
            }
        };
    }

    fn on_migration_failed(&mut self, at_ns: u64, error: &MigrationError) {
        // The swap never happened: the engine kept the old epoch (and its
        // NF state) live, so the staged assignment must be forgotten.
        self.pending = None;
        self.wal.append(WalRecord::MigrationFailed {
            at_ns,
            error: error.clone(),
        });
        self.events.push(SupervisorEvent::MigrationFailed {
            at_ns,
            error: error.clone(),
        });
        if *error == MigrationError::ControlCrash {
            // Crash recovery: replay the decision log to re-learn the
            // consistent state (last committed epoch; this attempt is a
            // resolved failure, not a half-applied swap).
            let replayed = self.wal.len();
            let summary = self.wal.replay();
            debug_assert!(
                !summary.in_flight_intent,
                "replay must resolve every intent"
            );
            self.wal.append(WalRecord::Recovered { at_ns, replayed });
            self.events.push(SupervisorEvent::Recovered {
                at_ns,
                committed_epoch: summary.committed_epoch,
            });
        }
        // Either way the episode consumed an attempt: back off before
        // trying to reconfigure again (or park if attempts are spent).
        let _ = self.backoff(at_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_core::chains::{canonical_chain, CanonicalChain};
    use lemur_core::graph::ChainSpec;
    use lemur_dataplane::{SimConfig, Testbed, TrafficSpec, ViolationKind};
    use lemur_metacompiler::compile;
    use lemur_placer::heuristic::place;
    use lemur_placer::oracle::AlwaysFits;
    use lemur_placer::profiles::NfProfiles;
    use lemur_placer::topology::Topology;

    fn problem(n_servers: usize, delta: f64) -> (PlacementProblem, Vec<TrafficSpec>) {
        let mut specs = Vec::new();
        let chains = [CanonicalChain::Chain3, CanonicalChain::Chain2]
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let spec = TrafficSpec::for_chain(i + 1, 1e9).expect("chain index in range");
                let agg = spec.aggregate();
                specs.push(spec);
                ChainSpec {
                    name: format!("chain{}", w.index()),
                    graph: canonical_chain(*w),
                    slo: None,
                    aggregate: Some(agg),
                }
            })
            .collect::<Vec<_>>();
        let mut p = PlacementProblem::new(
            chains,
            Topology::with_servers(n_servers),
            NfProfiles::table4(),
        );
        for i in 0..p.chains.len() {
            let base = p.base_rate_bps(i);
            p.chains[i].slo =
                Some(Slo::elastic_pipe(delta * base, 100e9).with_priority((2 - i) as u8));
        }
        (p, specs)
    }

    fn deployed(p: &PlacementProblem) -> Result<(EvaluatedPlacement, Deployment), String> {
        let placement = place(p, &AlwaysFits).map_err(|e| format!("place: {e:?}"))?;
        let deployment = compile(p, &placement).map_err(|e| format!("compile: {e:?}"))?;
        Ok((placement, deployment))
    }

    fn violation(at_ns: u64) -> TimelineEvent {
        TimelineEvent::SloViolation {
            at_ns,
            chain: 0,
            kind: ViolationKind::RateBelowMin,
            observed: 0.0,
            bound: 1e9,
        }
    }

    const WIN: u64 = 1_000_000;

    /// Feed `sup` a violated window at window-grid time `w`.
    fn violated_window(sup: &mut Supervisor<'_>, w: u64) -> ControlAction {
        sup.on_window(w * WIN, &[], &[violation(w * WIN)])
    }

    fn clean_window(sup: &mut Supervisor<'_>, w: u64) -> ControlAction {
        sup.on_window(w * WIN, &[], &[])
    }

    use surge::SurgeConfig;

    /// A detector declaring 1000 legitimate packets per window per chain,
    /// with single-window hysteresis so tests stay short.
    fn detector() -> SurgeDetector {
        SurgeDetector::new(
            vec![1000.0 / WIN as f64; 2],
            SurgeConfig {
                k_up: 1,
                k_down: 1,
                ..SurgeConfig::default()
            },
        )
    }

    fn sample(chain: usize, w: u64, arrived: u64, junk: u64) -> WindowSample {
        WindowSample {
            start_ns: (w - 1) * WIN,
            end_ns: w * WIN,
            chain,
            delivered_bps: 0.0,
            delivered_packets: arrived,
            dropped_packets: 0,
            mean_latency_ns: 0.0,
            arrived_packets: arrived,
            junk_packets: junk,
            backlog_packets: 0,
        }
    }

    /// A violated window whose samples scream overload (5× declared,
    /// mostly junk).
    fn surge_window(sup: &mut Supervisor<'_>, w: u64) -> ControlAction {
        let samples = [sample(0, w, 5000, 2000), sample(1, w, 5000, 2000)];
        sup.on_window(w * WIN, &samples, &[violation(w * WIN)])
    }

    /// A clean window at exactly the declared intensity.
    fn calm_window(sup: &mut Supervisor<'_>, w: u64) -> ControlAction {
        let samples = [sample(0, w, 1000, 0), sample(1, w, 1000, 0)];
        sup.on_window(w * WIN, &samples, &[])
    }

    /// The whole arc: suppression → admission → shed → scale-out → park
    /// under sustained overload, then a full reverse unwind on calm.
    #[test]
    fn ladder_climbs_under_overload_and_fully_unwinds() -> Result<(), String> {
        let (p, _) = problem(3, 0.4);
        let (placement, deployment) = deployed(&p)?;
        let cfg = SupervisorConfig {
            ladder_patience: 2,
            unwind_patience: 2,
            ..Default::default()
        };
        let mut sup = Supervisor::new(&p, &placement, &deployment, &AlwaysFits, cfg)
            .with_surge_detector(detector());

        // Two overload windows: the repair loop stays silent, then the
        // ladder's first rung flips admission control on.
        assert!(matches!(surge_window(&mut sup, 1), ControlAction::Continue));
        let action = surge_window(&mut sup, 2);
        match action {
            ControlAction::SetTailAdmission { deny_junk } => {
                assert!(deny_junk.iter().all(|&d| d))
            }
            _ => panic!("expected admission denial"),
        }
        assert_eq!(sup.repair_attempts(), 0, "no replans under pure surge");
        assert_eq!(sup.suppressed_replans(), 2);
        assert!(sup.ladder_engaged());

        // Still overloaded: rung 2 sheds the *lowest-priority* chain
        // (chain 1; chain 0 has the higher priority and is untouchable).
        surge_window(&mut sup, 3);
        let action = surge_window(&mut sup, 4);
        assert!(matches!(action, ControlAction::StageCommit { .. }));
        sup.on_commit(4 * WIN + 200_000, 1, 5, false);
        assert_eq!(sup.overload_shed(), &[1]);
        assert_eq!(sup.admitted(), &[true, false]);

        // Probation rides through surge-violated windows as if clean:
        // the fresh epoch is not at fault for the overload.
        surge_window(&mut sup, 5); // grace
        surge_window(&mut sup, 6);
        surge_window(&mut sup, 7);
        assert_eq!(sup.state(), SupervisorState::Converged);
        assert_eq!(sup.lkg_admitted, vec![true, false]);

        // Rung 3: scale out the survivor on the (unmasked) topology. A
        // fresh placement may be identical to the running one, in which
        // case the rung is spent without a swap.
        surge_window(&mut sup, 8);
        let action = surge_window(&mut sup, 9);
        let mut w = 10;
        if matches!(action, ControlAction::StageCommit { .. }) {
            sup.on_commit(9 * WIN + 200_000, 2, 0, false);
            for _ in 0..3 {
                surge_window(&mut sup, w);
                w += 1;
            }
            assert_eq!(sup.state(), SupervisorState::Converged);
        }
        assert!(sup.scaled_out, "rung 3 must be spent");

        // Rung 4: nothing left — park, recoverably.
        surge_window(&mut sup, w);
        surge_window(&mut sup, w + 1);
        assert_eq!(sup.state(), SupervisorState::GracefulDegraded);
        assert!(sup.ladder_parked);
        w += 2;

        // Calm returns: drive clean windows and commit whatever the
        // unwind stages until every rung has stepped back down.
        let mut epoch = 3;
        for i in 0..60 {
            let action = calm_window(&mut sup, w + i);
            match action {
                ControlAction::StageCommit { staged, .. } => {
                    let rb = staged.is_rollback();
                    sup.on_commit((w + i) * WIN + 200_000, epoch, 0, rb);
                    epoch += 1;
                }
                ControlAction::SetTailAdmission { deny_junk } => {
                    assert!(
                        deny_junk.iter().all(|&d| !d),
                        "unwind must clear the denial, not re-arm it"
                    );
                }
                ControlAction::Continue => {}
            }
            if !sup.ladder_engaged() && sup.admitted().iter().all(|&a| a) && sup.is_settled() {
                break;
            }
        }
        assert!(!sup.ladder_engaged(), "residual ladder state after calm");
        assert!(
            sup.admitted().iter().all(|&a| a),
            "shed chains must be restored: {:?}",
            sup.admitted()
        );
        assert!(!sup.admission_on);
        assert_eq!(sup.repair_attempts(), 0, "the whole arc was pure surge");
        assert!(sup
            .events()
            .iter()
            .any(|e| matches!(e, SupervisorEvent::LadderUnwound { rung: 4, .. })));
        // The WAL journaled both admission flips.
        assert!(sup
            .wal()
            .records()
            .iter()
            .any(|r| matches!(r, WalRecord::AdmissionControl { deny: true, .. })));
        assert!(!sup.wal().replay().admission_deny);
        Ok(())
    }

    /// Overload arriving at backoff expiry must neither charge another
    /// repair attempt nor keep the supervisor pinned in backoff.
    #[test]
    fn overload_at_backoff_expiry_suppresses_instead_of_replanning() -> Result<(), String> {
        let (p, _) = problem(3, 0.4);
        let (placement, deployment) = deployed(&p)?;
        let mut sup = Supervisor::new(
            &p,
            &placement,
            &deployment,
            &AlwaysFits,
            SupervisorConfig::default(),
        )
        .with_surge_detector(detector());

        // A non-overload violation episode with nothing to repair lands
        // in backoff, charging one attempt.
        violated_window(&mut sup, 1);
        violated_window(&mut sup, 2);
        let SupervisorState::Backoff { until_ns } = sup.state() else {
            panic!("expected backoff, got {:?}", sup.state());
        };
        assert_eq!(sup.repair_attempts(), 1);

        // At expiry the violation persists but is now classified
        // overload: no replan, no attempt, back to monitoring.
        let w = until_ns / WIN + 1;
        let action = surge_window(&mut sup, w);
        assert!(matches!(action, ControlAction::Continue));
        assert_eq!(sup.state(), SupervisorState::Monitoring);
        assert_eq!(sup.repair_attempts(), 1, "suppression must not replan");
        assert_eq!(sup.attempts(), 1, "surge must not clear the episode");
        assert!(sup.suppressed_replans() >= 1);
        Ok(())
    }

    /// Without a detector the new machinery is inert: violated windows
    /// drive the repair loop exactly as before.
    #[test]
    fn no_detector_means_every_violation_is_degradation() -> Result<(), String> {
        let (p, _) = problem(3, 0.4);
        let (placement, deployment) = deployed(&p)?;
        let mut sup = Supervisor::new(
            &p,
            &placement,
            &deployment,
            &AlwaysFits,
            SupervisorConfig::default(),
        );
        let dead = placement.subgroups[0].server;
        sup.on_fault(100, &FaultKind::LinkDown { server: dead });
        // Even surge-shaped samples cannot suppress anything.
        let samples = [sample(0, 1, 5000, 2000), sample(1, 1, 5000, 2000)];
        sup.on_window(WIN, &samples, &[violation(WIN)]);
        let samples = [sample(0, 2, 5000, 2000), sample(1, 2, 5000, 2000)];
        let action = sup.on_window(2 * WIN, &samples, &[violation(2 * WIN)]);
        assert!(matches!(action, ControlAction::StageCommit { .. }));
        assert_eq!(sup.repair_attempts(), 1);
        assert_eq!(sup.suppressed_replans(), 0);
        Ok(())
    }

    #[test]
    fn hysteresis_delays_action() -> Result<(), String> {
        let (p, _) = problem(3, 0.4);
        let (placement, deployment) = deployed(&p)?;
        let cfg = SupervisorConfig {
            hysteresis_k: 3,
            ..Default::default()
        };
        let mut sup = Supervisor::new(&p, &placement, &deployment, &AlwaysFits, cfg);

        let dead = placement.subgroups[0].server;
        sup.on_fault(100, &FaultKind::LinkDown { server: dead });
        assert_eq!(sup.state(), SupervisorState::Monitoring);

        // K-1 violated windows: still only watching.
        for w in 1..3 {
            assert!(matches!(
                violated_window(&mut sup, w),
                ControlAction::Continue
            ));
        }
        // A clean window resets the streak; the next violation starts over.
        clean_window(&mut sup, 3);
        assert!(matches!(
            violated_window(&mut sup, 4),
            ControlAction::Continue
        ));
        assert!(matches!(
            violated_window(&mut sup, 5),
            ControlAction::Continue
        ));
        // Third consecutive violation crosses the threshold and stages.
        let action = violated_window(&mut sup, 6);
        assert!(matches!(action, ControlAction::StageCommit { .. }));
        assert_eq!(sup.state(), SupervisorState::Draining);
        match action {
            ControlAction::StageCommit { staged, .. } => assert!(!staged.is_rollback()),
            _ => unreachable!(),
        }
        Ok(())
    }

    #[test]
    fn commit_probation_promotion_flow() -> Result<(), String> {
        let (p, _) = problem(3, 0.4);
        let (placement, deployment) = deployed(&p)?;
        let mut sup = Supervisor::new(
            &p,
            &placement,
            &deployment,
            &AlwaysFits,
            SupervisorConfig::default(),
        );

        let dead = placement.subgroups[0].server;
        sup.on_fault(100, &FaultKind::LinkDown { server: dead });
        violated_window(&mut sup, 1);
        assert!(matches!(
            violated_window(&mut sup, 2),
            ControlAction::StageCommit { .. }
        ));

        // Engine swaps; epoch 1 goes live.
        sup.on_commit(2 * WIN + 200_000, 1, 17, false);
        assert!(matches!(
            sup.state(),
            SupervisorState::Probation { grace: true, .. }
        ));

        // Grace window (straddles the swap), then two clean windows.
        clean_window(&mut sup, 3);
        clean_window(&mut sup, 4);
        assert!(matches!(sup.state(), SupervisorState::Probation { .. }));
        clean_window(&mut sup, 5);
        assert_eq!(sup.state(), SupervisorState::Converged);
        assert_eq!(sup.attempts(), 0);
        assert!(sup
            .events()
            .iter()
            .any(|e| matches!(e, SupervisorEvent::Promoted { .. })));
        // The promoted placement is now last-known-good.
        assert_eq!(sup.lkg_assignment, sup.current_assignment);
        Ok(())
    }

    #[test]
    fn probation_violation_stages_rollback() -> Result<(), String> {
        let (p, _) = problem(3, 0.4);
        let (placement, deployment) = deployed(&p)?;
        let mut sup = Supervisor::new(
            &p,
            &placement,
            &deployment,
            &AlwaysFits,
            SupervisorConfig::default(),
        );

        let dead = placement.subgroups[0].server;
        sup.on_fault(100, &FaultKind::LinkDown { server: dead });
        violated_window(&mut sup, 1);
        assert!(matches!(
            violated_window(&mut sup, 2),
            ControlAction::StageCommit { .. }
        ));
        sup.on_commit(2 * WIN + 200_000, 1, 9, false);

        // Hold-down expires mid-probation: the link is trusted again, so
        // the LKG (which used that server) is feasible for rollback.
        sup.on_fault(2 * WIN + 300_000, &FaultKind::LinkUp { server: dead });
        clean_window(&mut sup, 3); // grace
        let action = sup.on_window(9 * WIN, &[], &[violation(9 * WIN)]);
        match action {
            ControlAction::StageCommit { staged, .. } => {
                assert!(
                    staged.is_rollback(),
                    "probation violation must stage a rollback"
                )
            }
            _ => panic!("expected a rollback commit"),
        }
        sup.on_commit(9 * WIN + 200_000, 2, 3, true);
        assert_eq!(sup.state(), SupervisorState::Monitoring);
        // All chains re-admitted by the rollback.
        assert!(sup.admitted().iter().all(|&a| a));
        Ok(())
    }

    #[test]
    fn unfixable_violation_backs_off_then_degrades() -> Result<(), String> {
        let (p, _) = problem(3, 0.4);
        let (placement, deployment) = deployed(&p)?;
        let cfg = SupervisorConfig {
            max_attempts: 2,
            ..Default::default()
        };
        let mut sup = Supervisor::new(&p, &placement, &deployment, &AlwaysFits, cfg);

        // No mask, but the guard screams (e.g. a traffic lull): repair
        // returns the identical placement, so all we can do is back off.
        violated_window(&mut sup, 1);
        violated_window(&mut sup, 2);
        let SupervisorState::Backoff { until_ns } = sup.state() else {
            panic!("expected backoff, got {:?}", sup.state());
        };
        assert_eq!(sup.attempts(), 1);

        // Still violating at expiry → second attempt → still nothing.
        let w = until_ns / WIN + 1;
        violated_window(&mut sup, w);
        assert!(matches!(sup.state(), SupervisorState::Backoff { .. }));
        let SupervisorState::Backoff { until_ns } = sup.state() else {
            unreachable!()
        };
        violated_window(&mut sup, until_ns / WIN + 1);
        assert_eq!(sup.state(), SupervisorState::GracefulDegraded);

        // Parked: further windows do nothing.
        assert!(matches!(
            violated_window(&mut sup, w + 50),
            ControlAction::Continue
        ));
        assert_eq!(sup.state(), SupervisorState::GracefulDegraded);
        Ok(())
    }

    #[test]
    fn backoff_schedule_is_deterministic() -> Result<(), String> {
        let (p, _) = problem(3, 0.4);
        let (placement, deployment) = deployed(&p)?;
        let mk = || {
            Supervisor::new(
                &p,
                &placement,
                &deployment,
                &AlwaysFits,
                SupervisorConfig {
                    seed: 42,
                    ..Default::default()
                },
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for sup in [&mut a, &mut b] {
            violated_window(sup, 1);
            violated_window(sup, 2);
        }
        assert_eq!(a.state(), b.state());
        assert!(matches!(a.state(), SupervisorState::Backoff { .. }));
        // Different seed → different jitter (with overwhelming probability).
        let mut c = Supervisor::new(
            &p,
            &placement,
            &deployment,
            &AlwaysFits,
            SupervisorConfig {
                seed: 43,
                ..Default::default()
            },
        );
        violated_window(&mut c, 1);
        violated_window(&mut c, 2);
        assert_ne!(a.state(), c.state());
        Ok(())
    }

    #[test]
    fn flap_damping_holds_the_mask() -> Result<(), String> {
        let (p, _) = problem(3, 0.4);
        let (placement, deployment) = deployed(&p)?;
        let cfg = SupervisorConfig {
            hold_down_ns: 5 * WIN,
            ..Default::default()
        };
        let mut sup = Supervisor::new(&p, &placement, &deployment, &AlwaysFits, cfg);

        sup.on_fault(WIN / 2, &FaultKind::LinkDown { server: 1 });
        sup.on_fault(WIN / 2 + 1000, &FaultKind::LinkUp { server: 1 });
        // The link is "up" but on probationary hold-down: still masked.
        clean_window(&mut sup, 1);
        assert!(sup.mask().servers_down.contains(&1));

        // A re-flap voids the pending trust entirely.
        sup.on_fault(2 * WIN, &FaultKind::LinkDown { server: 1 });
        clean_window(&mut sup, 8);
        assert!(
            sup.mask().servers_down.contains(&1),
            "re-flap must reset hold-down"
        );

        // Up again; only after a full quiet hold-down does trust return.
        sup.on_fault(8 * WIN + 1000, &FaultKind::LinkUp { server: 1 });
        clean_window(&mut sup, 9);
        assert!(sup.mask().servers_down.contains(&1));
        clean_window(&mut sup, 14);
        assert!(!sup.mask().servers_down.contains(&1), "hold-down elapsed");
        assert!(sup
            .events()
            .iter()
            .any(|e| matches!(e, SupervisorEvent::LinkTrusted { server: 1, .. })));
        Ok(())
    }

    /// End-to-end: a link failure inside the simulation drives the full
    /// detect → repair → drain → commit → probation → promote loop.
    #[test]
    fn supervised_run_commits_and_settles() -> Result<(), String> {
        let (p, mut specs) = problem(3, 0.3);
        let (placement, deployment) = deployed(&p)?;
        let slos: Vec<Option<Slo>> = p.chains.iter().map(|c| c.slo).collect();
        for (i, s) in specs.iter_mut().enumerate() {
            s.offered_bps = (placement.chain_rates_bps[i] * 1.1).max(1e8);
        }

        let mut sup = Supervisor::new(
            &p,
            &placement,
            &deployment,
            &AlwaysFits,
            SupervisorConfig::default(),
        );
        let dead = placement.subgroups[0].server;
        let plan = lemur_dataplane::FaultPlan::new(vec![lemur_dataplane::FaultEvent {
            at_ns: 6_000_000,
            kind: FaultKind::LinkDown { server: dead },
        }]);
        let config = SimConfig {
            duration_s: 0.04,
            warmup_s: 0.002,
            seed: 11,
            window_ns: WIN,
            ..Default::default()
        };
        let mut testbed =
            Testbed::build(&p, &placement, deployment).map_err(|e| format!("build: {e:?}"))?;
        let report = testbed.run_supervised(&specs, config, &plan, &slos, &mut sup);

        assert!(report.commits() >= 1, "the repair must reach the dataplane");
        assert!(
            report.ledger.balanced(),
            "packet conservation: {:?}",
            report.ledger
        );
        assert!(
            sup.is_settled(),
            "soak must end settled, got {:?} (events: {:?})",
            sup.state(),
            sup.events()
        );
        assert!(report.update_time_loss() > 0 || report.ledger.drops_reconfig == 0);
        Ok(())
    }

    /// The SLO guard consumes *hybrid* windows: window samples include
    /// analytic-tail mass, so a `t_min` sitting between the heavy-only
    /// rate and the tail-inclusive rate stays clean, while a `t_min`
    /// above the tail-inclusive rate still violates every window.
    #[test]
    fn guard_consumes_tail_inclusive_hybrid_windows() -> Result<(), String> {
        use lemur_dataplane::{ChainLoad, FlowSizeDist, HybridConfig, HybridMode, ScenarioSpec};

        let (p, specs) = problem(3, 0.3);
        let (placement, deployment) = deployed(&p)?;
        let config = SimConfig {
            duration_s: 0.004,
            warmup_s: 0.001,
            seed: 5,
            window_ns: WIN,
            ..Default::default()
        };
        let horizon_ns = ((config.warmup_s + config.duration_s) * 1e9) as u64;
        // Short mice with a few modest elephants: at θ = 6 roughly 90% of
        // the packet mass is analytic tail.
        let theta = 6u64;
        let load = || ChainLoad {
            flows: 400,
            flow_rate_pps: 400_000.0,
            size: FlowSizeDist {
                alpha: 1.3,
                min_packets: 1,
                max_packets: 8,
            },
            diurnal: None,
            surges: vec![],
        };
        let scenario = ScenarioSpec {
            seed: 23,
            horizon_ns,
            chains: vec![load(), load()],
        }
        .materialize();
        let horizon_s = horizon_ns as f64 / 1e9;
        let frame_bits = (specs[0].payload_len + 42) as f64 * 8.0;
        let rate_of = |chain: usize, heavy_only: bool| -> f64 {
            scenario
                .flows
                .iter()
                .filter(|f| f.chain == chain && (!heavy_only || f.size_packets >= theta))
                .map(|f| f.packets)
                .sum::<u64>() as f64
                * frame_bits
                / horizon_s
        };
        let heavy0 = rate_of(0, true);
        let total0 = rate_of(0, false);
        let t_min0 = 0.5 * total0;
        assert!(
            heavy0 < t_min0,
            "split too heavy-skewed ({heavy0:.0} vs {t_min0:.0}): the test would be vacuous"
        );
        // Chain 1's floor is unreachable even with the tail included.
        let t_min1 = 3.0 * rate_of(1, false);
        let slos = vec![
            Some(Slo::elastic_pipe(t_min0, 100e9)),
            Some(Slo::elastic_pipe(t_min1, 100e9)),
        ];

        // A supervisor that observes but never replans: hybrid windows
        // drive its violation streaks, nothing else.
        let cfg = SupervisorConfig {
            hysteresis_k: 1_000,
            ..Default::default()
        };
        let mut sup = Supervisor::new(&p, &placement, &deployment, &AlwaysFits, cfg);
        let mut testbed =
            Testbed::build(&p, &placement, deployment).map_err(|e| format!("build: {e:?}"))?;
        let report = testbed
            .run_scenario_supervised(
                &scenario,
                &specs,
                config,
                &lemur_dataplane::FaultPlan::empty(),
                &slos,
                &HybridMode::Hybrid(HybridConfig {
                    heavy_min_packets: theta,
                    ..HybridConfig::default()
                }),
                &mut sup,
            )
            .map_err(|e| format!("scenario: {e}"))?;

        assert!(report.ledger.balanced(), "ledger: {:?}", report.ledger);
        let violated_chains: Vec<usize> = report
            .timeline
            .iter()
            .filter_map(|e| match e {
                TimelineEvent::SloViolation { chain, .. } => Some(*chain),
                _ => None,
            })
            .collect();
        // Chain 0 clears its floor only because tail mass is counted.
        assert!(
            !violated_chains.contains(&0),
            "chain 0 violated: the guard is not seeing tail mass ({violated_chains:?})"
        );
        // Chain 1's floor is unreachable: every closed window violates.
        assert!(
            violated_chains.iter().filter(|&&c| c == 1).count() >= 3,
            "chain 1 should violate nearly every window, got {violated_chains:?}"
        );
        // The supervisor consumed those windows (violation streak active).
        assert_eq!(sup.state(), SupervisorState::Monitoring);
        // And the samples themselves carry more than the heavy packets.
        let heavy_pkts: u64 = scenario
            .flows
            .iter()
            .filter(|f| f.chain == 0 && f.size_packets >= theta)
            .map(|f| f.packets)
            .sum();
        let windowed0: u64 = report
            .windows
            .iter()
            .filter(|w| w.chain == 0)
            .map(|w| w.delivered_packets)
            .sum();
        assert!(
            windowed0 > heavy_pkts,
            "windows carry {windowed0} ≤ heavy-only {heavy_pkts}: tail mass missing"
        );
        Ok(())
    }
}
