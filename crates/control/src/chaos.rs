//! Seeded chaos-plan generation for soak tests.
//!
//! Produces a [`FaultPlan`] that is adversarial but *survivable*: faults
//! are drawn from every [`FaultKind`], a link-flap burst is always
//! included (to exercise the supervisor's hold-down damping), link and
//! subgroup outages are paired with recoveries, and permanent damage is
//! bounded so at least one server stays intact. The same
//! [`ChaosConfig`] always yields byte-identical plans.
//!
//! Fleet soaks add a second layer: [`fleet_storm`] generates seeded
//! *control-plane* weather — channel blackouts, asymmetric partitions,
//! brownouts, and coordinator crashes — that the multi-PoP coordinator
//! must ride out on top of whatever per-PoP dataplane chaos is in play.

use lemur_dataplane::{
    ChannelFault, ChannelFaultKind, FaultEvent, FaultKind, FaultPlan, MigrationFaultKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated chaos plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed; same seed → identical plan.
    pub seed: u64,
    /// Minimum number of fault events to emit (pairs count as two).
    pub n_faults: usize,
    /// Earliest injection time (schedule after engine warm-up).
    pub start_ns: u64,
    /// Latest injection time. Leave a tail before the simulation horizon
    /// so the supervisor can converge after the last fault.
    pub end_ns: u64,
    /// Rack shape the plan must stay inside.
    pub n_servers: usize,
    pub cores_per_server: usize,
    pub n_subgroups: usize,
    pub n_chains: usize,
    /// Per-server ceiling on permanent core failures (keeps the rack
    /// repairable).
    pub max_core_fails_per_server: usize,
    /// Migration faults to arm (each aborts the next epoch swap, forcing
    /// a state rollback and a retry). Bounded small — every one consumes
    /// a supervisor repair attempt, and the storm must stay survivable.
    pub n_migration_faults: usize,
    /// Servers ranked busiest-first (most hosted subgroups). Link faults
    /// are biased toward these so the storm actually displaces chains;
    /// empty means uniform.
    pub hot_servers: Vec<usize>,
}

impl ChaosConfig {
    /// A soak sized for the default 4-server rack.
    pub fn soak(seed: u64, n_subgroups: usize, n_chains: usize) -> ChaosConfig {
        ChaosConfig {
            seed,
            n_faults: 20,
            start_ns: 4_000_000,
            end_ns: 28_000_000,
            n_servers: 4,
            cores_per_server: 16,
            n_subgroups,
            n_chains,
            max_core_fails_per_server: 2,
            n_migration_faults: 2,
            hot_servers: Vec::new(),
        }
    }

    /// Bias link faults toward `servers` (busiest-first).
    pub fn with_hot_servers(mut self, servers: Vec<usize>) -> ChaosConfig {
        self.hot_servers = servers;
        self
    }
}

/// A link-fault victim: hot servers ~70% of the time when known.
fn pick_server(rng: &mut StdRng, cfg: &ChaosConfig) -> usize {
    if !cfg.hot_servers.is_empty() && rng.gen_bool(0.7) {
        cfg.hot_servers[rng.gen_range(0..cfg.hot_servers.len().min(2))]
    } else {
        rng.gen_range(0..cfg.n_servers)
    }
}

/// Gap between a flap-burst down and its up (well inside hold-down).
const FLAP_UP_NS: u64 = 150_000;
/// Gap between consecutive flaps in the burst.
const FLAP_PERIOD_NS: u64 = 400_000;
/// Flaps in the guaranteed burst.
const FLAP_COUNT: usize = 3;

/// Generate a seeded chaos plan. Panics if the config leaves no room to
/// schedule (`end_ns` too close to `start_ns`) or describes an empty rack.
pub fn chaos_plan(cfg: &ChaosConfig) -> FaultPlan {
    assert!(
        cfg.n_servers > 0 && cfg.cores_per_server > 1,
        "rack too small for chaos"
    );
    assert!(
        cfg.end_ns > cfg.start_ns + 2 * FLAP_COUNT as u64 * FLAP_PERIOD_NS,
        "chaos window too short"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xc4a0_5e5e);
    let mut events: Vec<FaultEvent> = Vec::new();
    let span = cfg.end_ns - cfg.start_ns;

    // Per-server "busy until" cursors keep link outages on one server
    // disjoint, so every LinkUp matches exactly one open LinkDown.
    let mut link_free_at = vec![cfg.start_ns; cfg.n_servers];
    let mut sg_free_at = vec![cfg.start_ns; cfg.n_subgroups.max(1)];
    let mut core_fails = vec![0usize; cfg.n_servers];

    // The guaranteed link-flap burst: rapid down/up pairs on one server,
    // early in the window so its aftermath is also exercised.
    let flap_server = pick_server(&mut rng, cfg);
    let mut t = cfg.start_ns + rng.gen_range(0..span / 4);
    for _ in 0..FLAP_COUNT {
        events.push(FaultEvent {
            at_ns: t,
            kind: FaultKind::LinkDown {
                server: flap_server,
            },
        });
        events.push(FaultEvent {
            at_ns: t + FLAP_UP_NS,
            kind: FaultKind::LinkUp {
                server: flap_server,
            },
        });
        t += FLAP_PERIOD_NS;
    }
    link_free_at[flap_server] = t + FLAP_PERIOD_NS;

    // One guaranteed *sustained* outage on the busiest server — long
    // enough (span/4) that riding it out is not an option and the
    // supervisor must repair.
    let victim = *cfg.hot_servers.first().unwrap_or(&flap_server);
    let start = link_free_at[victim].max(cfg.start_ns + span / 3);
    let up = start + span / 4;
    if up < cfg.end_ns {
        events.push(FaultEvent {
            at_ns: start,
            kind: FaultKind::LinkDown { server: victim },
        });
        events.push(FaultEvent {
            at_ns: up,
            kind: FaultKind::LinkUp { server: victim },
        });
        link_free_at[victim] = up + FLAP_PERIOD_NS;
    }

    // Migration faults: armed at injection, they fire at the *next* epoch
    // swap — aborting it and forcing the supervisor to retry from the old
    // epoch's intact state. Spread through the window so different repair
    // attempts get hit; kinds cycle deterministically so every seed
    // exercises more than one failure mode.
    for i in 0..cfg.n_migration_faults {
        let slot = span * (i as u64 + 1) / (cfg.n_migration_faults as u64 + 1);
        let jitter = rng.gen_range(0..FLAP_PERIOD_NS);
        let fault = MigrationFaultKind::ALL[rng.gen_range(0..MigrationFaultKind::ALL.len())];
        events.push(FaultEvent {
            at_ns: (cfg.start_ns + slot + jitter).min(cfg.end_ns - 1),
            kind: FaultKind::MigrationFault { fault },
        });
    }

    while events.len() < cfg.n_faults {
        let at_ns = cfg.start_ns + rng.gen_range(0..span);
        match rng.gen_range(0..5u32) {
            // Paired link outage: down for 1–5 ms, then back up.
            0 => {
                let server = pick_server(&mut rng, cfg);
                let start = at_ns.max(link_free_at[server]);
                let up = start + rng.gen_range(1_000_000..5_000_000u64);
                if up >= cfg.end_ns {
                    continue;
                }
                events.push(FaultEvent {
                    at_ns: start,
                    kind: FaultKind::LinkDown { server },
                });
                events.push(FaultEvent {
                    at_ns: up,
                    kind: FaultKind::LinkUp { server },
                });
                link_free_at[server] = up + FLAP_PERIOD_NS;
            }
            // Permanent core failure, budgeted per server.
            1 => {
                let server = rng.gen_range(0..cfg.n_servers);
                if core_fails[server] >= cfg.max_core_fails_per_server {
                    continue;
                }
                // Core 0 is the demux; fail workers only, each at most once.
                let core = 1 + core_fails[server];
                if core >= cfg.cores_per_server {
                    continue;
                }
                core_fails[server] += 1;
                events.push(FaultEvent {
                    at_ns,
                    kind: FaultKind::CoreFail { server, core },
                });
            }
            // Paired subgroup crash/restart (0.5–2 ms outage).
            2 if cfg.n_subgroups > 0 => {
                let subgroup = rng.gen_range(0..cfg.n_subgroups);
                let start = at_ns.max(sg_free_at[subgroup]);
                let up = start + rng.gen_range(500_000..2_000_000u64);
                if up >= cfg.end_ns {
                    continue;
                }
                events.push(FaultEvent {
                    at_ns: start,
                    kind: FaultKind::NfCrash { subgroup },
                });
                events.push(FaultEvent {
                    at_ns: up,
                    kind: FaultKind::NfRecover { subgroup },
                });
                sg_free_at[subgroup] = up + FLAP_PERIOD_NS;
            }
            // Profile drift: the subgroup gets 10–60% more expensive.
            3 if cfg.n_subgroups > 0 => {
                let subgroup = rng.gen_range(0..cfg.n_subgroups);
                let factor = rng.gen_range(1.1..1.6);
                events.push(FaultEvent {
                    at_ns,
                    kind: FaultKind::ProfileDrift { subgroup, factor },
                });
            }
            // Traffic surge: 5–50% extra offered load. (Never a lull —
            // a lull manufactures an unfixable rate violation.)
            4 => {
                let chain = rng.gen_range(0..cfg.n_chains.max(1));
                let factor = rng.gen_range(1.05..1.5);
                events.push(FaultEvent {
                    at_ns,
                    kind: FaultKind::TrafficSurge { chain, factor },
                });
            }
            _ => continue,
        }
    }

    FaultPlan::new(events)
}

/// Shape of a generated fleet-level storm: control-channel weather against
/// individual PoPs plus coordinator crash/replay events, layered on top of
/// each PoP's local [`chaos_plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetChaosConfig {
    /// Seed; same seed → identical storm.
    pub seed: u64,
    /// PoPs in the fleet (channel faults target `0..n_pops`).
    pub n_pops: usize,
    /// Earliest fault window start.
    pub start_ns: u64,
    /// Latest fault window end — leave a tail before the horizon so the
    /// coordinator can re-converge after the last fault clears.
    pub end_ns: u64,
    /// Minimum channel-fault windows to emit (the guaranteed blackout
    /// counts toward this).
    pub n_channel_faults: usize,
    /// Duration of the guaranteed full blackout. Size it past the
    /// coordinator's drain deadline so the victim PoP is provably
    /// `Drained` and its chains fail over cross-site; the other generated
    /// outages stay shorter so those PoPs only visit `Suspect`/
    /// `Unreachable` and recover in place.
    pub blackout_ns: u64,
    /// Which PoP suffers the guaranteed blackout (`None` = seeded pick).
    pub blackout_pop: Option<usize>,
    /// Coordinator crash + WAL-replay events to schedule.
    pub n_coordinator_crashes: usize,
}

impl FleetChaosConfig {
    /// A storm sized for the fleet soak's default geometry.
    pub fn soak(seed: u64, n_pops: usize) -> FleetChaosConfig {
        FleetChaosConfig {
            seed,
            n_pops,
            start_ns: 2_000_000,
            end_ns: 9_000_000,
            n_channel_faults: 8,
            blackout_ns: 3_000_000,
            blackout_pop: None,
            n_coordinator_crashes: 1,
        }
    }
}

/// One fleet-storm event, in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetStormEvent {
    /// A control-channel weather window against one PoP.
    Channel(ChannelFault),
    /// The coordinator crashes; it restarts by replaying its decision log
    /// (grants, revokes, health rungs) from the durable image.
    CoordinatorCrash { at_ns: u64 },
}

impl FleetStormEvent {
    /// When the event begins.
    pub fn at_ns(&self) -> u64 {
        match self {
            FleetStormEvent::Channel(f) => f.from_ns,
            FleetStormEvent::CoordinatorCrash { at_ns } => *at_ns,
        }
    }
}

/// A seeded fleet storm, events sorted by start time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetStorm {
    events: Vec<FleetStormEvent>,
}

impl FleetStorm {
    pub fn events(&self) -> &[FleetStormEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Just the channel-weather windows, for feeding a lossy channel.
    pub fn channel_faults(&self) -> Vec<ChannelFault> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FleetStormEvent::Channel(f) => Some(f.clone()),
                FleetStormEvent::CoordinatorCrash { .. } => None,
            })
            .collect()
    }

    /// Just the coordinator crash times, ascending.
    pub fn coordinator_crashes(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FleetStormEvent::CoordinatorCrash { at_ns } => Some(*at_ns),
                FleetStormEvent::Channel(_) => None,
            })
            .collect()
    }

    /// The PoP under the longest full blackout (the guaranteed drain
    /// victim), if any blackout was generated.
    pub fn blackout_victim(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FleetStormEvent::Channel(f) if f.kind == ChannelFaultKind::Blackout => {
                    Some((f.to_ns - f.from_ns, f.site))
                }
                _ => None,
            })
            .max()
            .map(|(_, site)| site)
    }
}

/// Generate a seeded fleet storm. Panics if the window cannot hold the
/// guaranteed blackout or the fleet is too small to fail over.
pub fn fleet_storm(cfg: &FleetChaosConfig) -> FleetStorm {
    assert!(cfg.n_pops >= 2, "failover needs at least two PoPs");
    assert!(
        cfg.end_ns > cfg.start_ns + 2 * cfg.blackout_ns,
        "storm window too short for the guaranteed blackout"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xf1ee_7057);
    let span = cfg.end_ns - cfg.start_ns;
    let mut events: Vec<FleetStormEvent> = Vec::new();

    // The guaranteed drain-length blackout, early enough that the fleet's
    // recovery (failover + re-join) is also exercised inside the window.
    let victim = cfg
        .blackout_pop
        .unwrap_or_else(|| rng.gen_range(0..cfg.n_pops));
    let latest_start = cfg.end_ns - cfg.blackout_ns;
    let from_ns = cfg.start_ns + rng.gen_range(0..(latest_start - cfg.start_ns) / 2 + 1);
    events.push(FleetStormEvent::Channel(ChannelFault {
        site: victim,
        kind: ChannelFaultKind::Blackout,
        from_ns,
        to_ns: from_ns + cfg.blackout_ns,
    }));

    // Short outages elsewhere: brownouts, asymmetric partitions, and
    // sub-drain blackouts that visit Suspect/Unreachable and come back.
    while events.len() < cfg.n_channel_faults {
        let site = rng.gen_range(0..cfg.n_pops);
        let from_ns = cfg.start_ns + rng.gen_range(0..span);
        let (kind, dur) = match rng.gen_range(0..4u32) {
            0 => (
                ChannelFaultKind::Brownout {
                    drop_permille: rng.gen_range(100..600),
                },
                rng.gen_range(1_000_000..4_000_000u64),
            ),
            1 => (
                ChannelFaultKind::PartitionTo,
                rng.gen_range(500_000..2_000_000u64),
            ),
            2 => (
                ChannelFaultKind::PartitionFrom,
                rng.gen_range(500_000..2_000_000u64),
            ),
            _ => (
                ChannelFaultKind::Blackout,
                rng.gen_range(300_000..1_200_000u64),
            ),
        };
        let to_ns = from_ns + dur;
        if to_ns >= cfg.end_ns {
            continue;
        }
        // Keep extra weather off the drain victim: its fate is already
        // sealed, and piling on would only mask the recovery phase.
        if site == victim {
            continue;
        }
        events.push(FleetStormEvent::Channel(ChannelFault {
            site,
            kind,
            from_ns,
            to_ns,
        }));
    }

    // Coordinator crashes, spread through the window with jitter so some
    // land mid-blackout (replay while a PoP is dark) and some in calm air.
    for i in 0..cfg.n_coordinator_crashes {
        let slot = span * (i as u64 + 1) / (cfg.n_coordinator_crashes as u64 + 1);
        let jitter = rng.gen_range(0..span / 8 + 1);
        events.push(FleetStormEvent::CoordinatorCrash {
            at_ns: (cfg.start_ns + slot + jitter).min(cfg.end_ns - 1),
        });
    }

    events.sort_by_key(|e| e.at_ns());
    FleetStorm { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemur_placer::topology::Topology;

    fn cfg(seed: u64) -> ChaosConfig {
        ChaosConfig::soak(seed, 6, 3)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = chaos_plan(&cfg(7));
        let b = chaos_plan(&cfg(7));
        assert_eq!(a.events(), b.events());
        let c = chaos_plan(&cfg(8));
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn meets_fault_budget_and_validates() {
        for seed in 0..20 {
            let plan = chaos_plan(&cfg(seed));
            assert!(plan.len() >= 20, "seed {seed}: only {} events", plan.len());
            plan.validate(&Topology::with_servers(4), 6, 3)
                .unwrap_or_else(|e| panic!("seed {seed}: invalid plan: {e}"));
        }
    }

    #[test]
    fn contains_a_link_flap_burst() {
        let plan = chaos_plan(&cfg(3));
        // Find ≥ FLAP_COUNT down/up pairs on one server, each shorter
        // than the default hold-down.
        let mut down_at: std::collections::BTreeMap<usize, u64> = Default::default();
        let mut fast_flaps: std::collections::BTreeMap<usize, usize> = Default::default();
        for e in plan.events() {
            match e.kind {
                FaultKind::LinkDown { server } => {
                    down_at.insert(server, e.at_ns);
                }
                FaultKind::LinkUp { server } => {
                    if let Some(t0) = down_at.remove(&server) {
                        if e.at_ns - t0 < crate::SupervisorConfig::default().hold_down_ns {
                            *fast_flaps.entry(server).or_insert(0) += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        assert!(
            fast_flaps.values().any(|&n| n >= FLAP_COUNT),
            "no flap burst: {fast_flaps:?}"
        );
    }

    #[test]
    fn includes_migration_faults() {
        for seed in 0..10 {
            let plan = chaos_plan(&cfg(seed));
            let n = plan
                .events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::MigrationFault { .. }))
                .count();
            assert_eq!(n, 2, "seed {seed}: expected 2 armed migration faults");
        }
        let mut none = cfg(1);
        none.n_migration_faults = 0;
        assert!(!chaos_plan(&none)
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::MigrationFault { .. })));
    }

    #[test]
    fn damage_is_bounded() {
        for seed in 0..20 {
            let plan = chaos_plan(&cfg(seed));
            let mut links_down = std::collections::BTreeSet::new();
            let mut core_fails = std::collections::BTreeMap::new();
            for e in plan.events() {
                match e.kind {
                    FaultKind::LinkDown { server } => {
                        links_down.insert(server);
                    }
                    FaultKind::LinkUp { server } => {
                        links_down.remove(&server);
                    }
                    FaultKind::CoreFail { server, core } => {
                        assert!(core >= 1, "demux core must never fail");
                        *core_fails.entry(server).or_insert(0usize) += 1;
                    }
                    _ => {}
                }
            }
            assert!(links_down.is_empty(), "seed {seed}: a link never recovered");
            for (s, n) in core_fails {
                assert!(n <= 2, "seed {seed}: server {s} lost {n} cores");
            }
        }
    }

    #[test]
    fn fleet_storm_is_deterministic_per_seed() {
        let cfg = FleetChaosConfig::soak(5, 3);
        assert_eq!(fleet_storm(&cfg), fleet_storm(&cfg));
        assert_ne!(
            fleet_storm(&cfg),
            fleet_storm(&FleetChaosConfig::soak(6, 3))
        );
    }

    #[test]
    fn fleet_storm_guarantees_a_drain_length_blackout() {
        for seed in 0..20 {
            let cfg = FleetChaosConfig::soak(seed, 3);
            let storm = fleet_storm(&cfg);
            let victim = storm.blackout_victim().expect("a blackout must exist");
            let full = storm.channel_faults().into_iter().any(|f| {
                f.site == victim
                    && f.kind == ChannelFaultKind::Blackout
                    && f.to_ns - f.from_ns >= cfg.blackout_ns
            });
            assert!(full, "seed {seed}: no drain-length blackout");
        }
    }

    #[test]
    fn fleet_storm_stays_inside_bounds_and_budget() {
        for seed in 0..20 {
            let cfg = FleetChaosConfig::soak(seed, 4);
            let storm = fleet_storm(&cfg);
            assert!(storm.len() >= cfg.n_channel_faults + cfg.n_coordinator_crashes);
            assert_eq!(
                storm.coordinator_crashes().len(),
                cfg.n_coordinator_crashes,
                "seed {seed}"
            );
            for f in storm.channel_faults() {
                assert!(f.site < cfg.n_pops, "seed {seed}: site out of range");
                assert!(
                    f.from_ns >= cfg.start_ns && f.to_ns <= cfg.end_ns,
                    "seed {seed}"
                );
                assert!(f.from_ns < f.to_ns, "seed {seed}: empty window");
            }
            for at in storm.coordinator_crashes() {
                assert!(at >= cfg.start_ns && at < cfg.end_ns, "seed {seed}");
            }
            let sorted = storm
                .events()
                .windows(2)
                .all(|w| w[0].at_ns() <= w[1].at_ns());
            assert!(sorted, "seed {seed}: events not time-ordered");
        }
    }

    #[test]
    fn fleet_storm_spares_the_victim_from_extra_weather() {
        for seed in 0..10 {
            let storm = fleet_storm(&FleetChaosConfig::soak(seed, 3));
            let victim = storm.blackout_victim().expect("a blackout must exist");
            let on_victim = storm
                .channel_faults()
                .into_iter()
                .filter(|f| f.site == victim)
                .count();
            assert_eq!(on_victim, 1, "seed {seed}: victim hit more than once");
        }
    }
}
