//! The supervisor's write-ahead decision log.
//!
//! Every reconfiguration decision is journaled *before* it is handed to
//! the engine, and every outcome is journaled when it lands. If the
//! control plane crashes between snapshot and restore (an injected
//! [`lemur_dataplane::MigrationFaultKind::ControlCrash`]), replaying the
//! log reconstructs a consistent view: either the last committed epoch is
//! live with its NF state intact, or an intent is dangling and the swap is
//! known to have aborted — never a half-applied state.
//!
//! Fleet deployments journal coordinator decisions too: chain-ownership
//! grants and revocations (with their fencing tokens), PoP health-ladder
//! transitions, and fleet-wide sheds. Replaying a coordinator's log after
//! a crash reconstructs exactly which PoP owns which chain under which
//! token, so a restarted coordinator can never re-grant a chain it already
//! gave away.
//!
//! The in-memory log is the simulation's working form; [`WalRecord::encode`]
//! / [`DecisionLog::recover`] give it a durable byte image (length-prefixed
//! frames, each sealed with the same FNV-1a/128 digest the LMSN snapshot
//! wire format uses). A torn write — the journal cut mid-record — recovers
//! to the longest complete prefix and resolves any dangling intent with a
//! synthesized [`WalRecord::Recovered`]: recovery never errors and never
//! leaves a swap half-open.

use std::collections::BTreeMap;

use lemur_core::graph::NodeId;
use lemur_dataplane::MigrationError;
use lemur_nf::snapshot::{Decoder, Encoder, SnapshotError, StateDigest};
use lemur_nf::NfKind;
use serde::{DeError, Deserialize, Serialize, Value};

/// Where a PoP sits on the coordinator's graceful-degradation ladder.
///
/// Transitions only ever step right on missed heartbeats (Healthy →
/// Suspect → Unreachable → Drained) and reset to `Healthy` on contact;
/// `Drained` additionally requires the PoP's lease to have provably
/// expired, which is what makes cross-PoP failover safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PopHealth {
    /// Heartbeats arriving within the suspect threshold.
    Healthy,
    /// Missed enough heartbeats to stop sending it new work.
    Suspect,
    /// Missed enough to start planning failover, but its lease may still
    /// be live — its chains cannot be re-granted yet.
    Unreachable,
    /// Lease provably expired; chains failed over and the PoP must
    /// re-join with a fresh incarnation before it is used again.
    Drained,
}

impl PopHealth {
    /// Every rung, in ladder order.
    pub const ALL: [PopHealth; 4] = [
        PopHealth::Healthy,
        PopHealth::Suspect,
        PopHealth::Unreachable,
        PopHealth::Drained,
    ];

    /// Short human-readable tag used in reports and JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            PopHealth::Healthy => "healthy",
            PopHealth::Suspect => "suspect",
            PopHealth::Unreachable => "unreachable",
            PopHealth::Drained => "drained",
        }
    }

    fn from_tag(tag: &str) -> Option<PopHealth> {
        PopHealth::ALL.into_iter().find(|h| h.tag() == tag)
    }
}

impl std::fmt::Display for PopHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// One journaled decision or outcome, in virtual-time order.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Written *before* a staged commit is handed to the engine: the
    /// supervisor intends to swap. `shed` lists chains the new epoch
    /// refuses (empty for rollbacks).
    Intent {
        at_ns: u64,
        rollback: bool,
        shed: Vec<usize>,
    },
    /// The engine committed the swap; `epoch` is now live.
    Committed {
        at_ns: u64,
        epoch: u64,
        rollback: bool,
    },
    /// The staged swap was aborted by a migration failure; the previous
    /// epoch (and its state) stayed live.
    MigrationFailed { at_ns: u64, error: MigrationError },
    /// The control plane came back from a crash and replayed the log;
    /// `replayed` is the number of records scanned.
    Recovered { at_ns: u64, replayed: usize },
    /// The fleet coordinator granted ownership of `chain` to `pop` under
    /// fencing `token`. Tokens are per-chain monotonic: a receiver that
    /// has seen a newer token rejects this grant as stale.
    FleetGrant {
        at_ns: u64,
        pop: usize,
        chain: usize,
        token: u64,
    },
    /// Ownership of `chain` was revoked from `pop` (graceful drain, or
    /// fencing of a PoP whose lease expired); `token` is the token being
    /// retired.
    FleetRevoke {
        at_ns: u64,
        pop: usize,
        chain: usize,
        token: u64,
    },
    /// `pop` moved to a new rung on the degradation ladder.
    FleetPopHealth {
        at_ns: u64,
        pop: usize,
        health: PopHealth,
    },
    /// `chain` was shed fleet-wide: no surviving PoP could satisfy its
    /// SLO, and by policy the lowest-priority chains go first.
    FleetShed { at_ns: u64, chain: usize },
    /// The supervisor flipped DDoS-junk admission control (the first
    /// rung of the graceful-degradation ladder). Journaled like a swap
    /// intent so a recovered control plane knows whether the dataplane
    /// is still denying junk.
    AdmissionControl { at_ns: u64, deny: bool },
}

impl WalRecord {
    pub fn at_ns(&self) -> u64 {
        match self {
            WalRecord::Intent { at_ns, .. }
            | WalRecord::Committed { at_ns, .. }
            | WalRecord::MigrationFailed { at_ns, .. }
            | WalRecord::Recovered { at_ns, .. }
            | WalRecord::FleetGrant { at_ns, .. }
            | WalRecord::FleetRevoke { at_ns, .. }
            | WalRecord::FleetPopHealth { at_ns, .. }
            | WalRecord::FleetShed { at_ns, .. }
            | WalRecord::AdmissionControl { at_ns, .. } => *at_ns,
        }
    }

    /// Serialize to the durable framed form: `u32` little-endian payload
    /// length, the payload, then the payload's FNV-1a/128 digest (16
    /// bytes). Frames concatenate into a journal image that
    /// [`DecisionLog::recover`] replays even when cut mid-frame.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(4 + payload.len() + RECORD_DIGEST_BYTES);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let mut digest = StateDigest::new();
        digest.bytes(&payload);
        out.extend_from_slice(&digest.finish().to_le_bytes());
        out
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            WalRecord::Intent {
                at_ns,
                rollback,
                shed,
            } => {
                e.u8(0);
                e.u64(*at_ns);
                e.u8(u8::from(*rollback));
                e.u32(shed.len() as u32);
                for chain in shed {
                    e.u64(*chain as u64);
                }
            }
            WalRecord::Committed {
                at_ns,
                epoch,
                rollback,
            } => {
                e.u8(1);
                e.u64(*at_ns);
                e.u64(*epoch);
                e.u8(u8::from(*rollback));
            }
            WalRecord::MigrationFailed { at_ns, error } => {
                e.u8(2);
                e.u64(*at_ns);
                encode_migration_error(&mut e, error);
            }
            WalRecord::Recovered { at_ns, replayed } => {
                e.u8(3);
                e.u64(*at_ns);
                e.u64(*replayed as u64);
            }
            WalRecord::FleetGrant {
                at_ns,
                pop,
                chain,
                token,
            } => {
                e.u8(4);
                e.u64(*at_ns);
                e.u64(*pop as u64);
                e.u64(*chain as u64);
                e.u64(*token);
            }
            WalRecord::FleetRevoke {
                at_ns,
                pop,
                chain,
                token,
            } => {
                e.u8(5);
                e.u64(*at_ns);
                e.u64(*pop as u64);
                e.u64(*chain as u64);
                e.u64(*token);
            }
            WalRecord::FleetPopHealth { at_ns, pop, health } => {
                e.u8(6);
                e.u64(*at_ns);
                e.u64(*pop as u64);
                e.u8(*health as u8);
            }
            WalRecord::FleetShed { at_ns, chain } => {
                e.u8(7);
                e.u64(*at_ns);
                e.u64(*chain as u64);
            }
            WalRecord::AdmissionControl { at_ns, deny } => {
                e.u8(8);
                e.u64(*at_ns);
                e.u8(u8::from(*deny));
            }
        }
        e.finish()
    }

    fn decode_payload(bytes: &[u8]) -> Result<WalRecord, SnapshotError> {
        let mut d = Decoder::new(bytes);
        let rec = match d.u8()? {
            0 => {
                let at_ns = d.u64()?;
                let rollback = d.u8()? != 0;
                let n = d.u32()? as usize;
                let mut shed = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    shed.push(d.u64()? as usize);
                }
                WalRecord::Intent {
                    at_ns,
                    rollback,
                    shed,
                }
            }
            1 => WalRecord::Committed {
                at_ns: d.u64()?,
                epoch: d.u64()?,
                rollback: d.u8()? != 0,
            },
            2 => WalRecord::MigrationFailed {
                at_ns: d.u64()?,
                error: decode_migration_error(&mut d)?,
            },
            3 => WalRecord::Recovered {
                at_ns: d.u64()?,
                replayed: d.u64()? as usize,
            },
            4 => WalRecord::FleetGrant {
                at_ns: d.u64()?,
                pop: d.u64()? as usize,
                chain: d.u64()? as usize,
                token: d.u64()?,
            },
            5 => WalRecord::FleetRevoke {
                at_ns: d.u64()?,
                pop: d.u64()? as usize,
                chain: d.u64()? as usize,
                token: d.u64()?,
            },
            6 => WalRecord::FleetPopHealth {
                at_ns: d.u64()?,
                pop: d.u64()? as usize,
                health: decode_pop_health(&mut d)?,
            },
            7 => WalRecord::FleetShed {
                at_ns: d.u64()?,
                chain: d.u64()? as usize,
            },
            8 => WalRecord::AdmissionControl {
                at_ns: d.u64()?,
                deny: d.u8()? != 0,
            },
            _ => return Err(SnapshotError::Invalid("unknown WAL record tag")),
        };
        d.done()?;
        Ok(rec)
    }
}

const RECORD_DIGEST_BYTES: usize = 16;

fn decode_pop_health(d: &mut Decoder<'_>) -> Result<PopHealth, SnapshotError> {
    PopHealth::ALL
        .get(d.u8()? as usize)
        .copied()
        .ok_or(SnapshotError::Invalid("unknown PoP health rung"))
}

fn nf_kind_from_index(idx: u8) -> Result<NfKind, SnapshotError> {
    NfKind::ALL
        .get(idx as usize)
        .copied()
        .ok_or(SnapshotError::Invalid("unknown NF kind index"))
}

fn encode_u128(e: &mut Encoder, v: u128) {
    e.u64(v as u64);
    e.u64((v >> 64) as u64);
}

fn decode_u128(d: &mut Decoder<'_>) -> Result<u128, SnapshotError> {
    let lo = d.u64()? as u128;
    let hi = d.u64()? as u128;
    Ok(lo | (hi << 64))
}

fn encode_migration_error(e: &mut Encoder, err: &MigrationError) {
    match err {
        MigrationError::Decode {
            chain,
            node,
            replica,
            source,
        } => {
            e.u8(0);
            e.u64(*chain as u64);
            e.u64(node.0 as u64);
            e.u64(*replica as u64);
            encode_snapshot_error(e, source);
        }
        MigrationError::FingerprintMismatch {
            chain,
            node,
            replica,
        } => {
            e.u8(1);
            e.u64(*chain as u64);
            e.u64(node.0 as u64);
            e.u64(*replica as u64);
        }
        MigrationError::Truncated { expected, got } => {
            e.u8(2);
            e.u64(*expected as u64);
            e.u64(*got as u64);
        }
        MigrationError::ControlCrash => e.u8(3),
        MigrationError::RestoreTimeout => e.u8(4),
        MigrationError::StaleFencingToken {
            chain,
            held,
            offered,
        } => {
            e.u8(5);
            e.u64(*chain as u64);
            e.u64(*held);
            e.u64(*offered);
        }
        MigrationError::SiteUnreachable { site } => {
            e.u8(6);
            e.u64(*site as u64);
        }
    }
}

fn decode_migration_error(d: &mut Decoder<'_>) -> Result<MigrationError, SnapshotError> {
    Ok(match d.u8()? {
        0 => MigrationError::Decode {
            chain: d.u64()? as usize,
            node: NodeId(d.u64()? as usize),
            replica: d.u64()? as usize,
            source: decode_snapshot_error(d)?,
        },
        1 => MigrationError::FingerprintMismatch {
            chain: d.u64()? as usize,
            node: NodeId(d.u64()? as usize),
            replica: d.u64()? as usize,
        },
        2 => MigrationError::Truncated {
            expected: d.u64()? as usize,
            got: d.u64()? as usize,
        },
        3 => MigrationError::ControlCrash,
        4 => MigrationError::RestoreTimeout,
        5 => MigrationError::StaleFencingToken {
            chain: d.u64()? as usize,
            held: d.u64()?,
            offered: d.u64()?,
        },
        6 => MigrationError::SiteUnreachable {
            site: d.u64()? as usize,
        },
        _ => return Err(SnapshotError::Invalid("unknown migration error tag")),
    })
}

fn encode_snapshot_error(e: &mut Encoder, err: &SnapshotError) {
    match err {
        SnapshotError::Truncated { need, have } => {
            e.u8(0);
            e.u64(*need as u64);
            e.u64(*have as u64);
        }
        SnapshotError::BadMagic(magic) => {
            e.u8(1);
            e.u32(*magic);
        }
        SnapshotError::UnsupportedVersion(version) => {
            e.u8(2);
            e.u16(*version);
        }
        SnapshotError::ChecksumMismatch { expected, found } => {
            e.u8(3);
            encode_u128(e, *expected);
            encode_u128(e, *found);
        }
        SnapshotError::KindMismatch { expected, found } => {
            e.u8(4);
            e.u8(*expected as u8);
            e.u8(*found as u8);
        }
        SnapshotError::Invalid(msg) => {
            e.u8(5);
            e.str(msg);
        }
        SnapshotError::NoState(kind) => {
            e.u8(6);
            e.u8(*kind as u8);
        }
    }
}

fn decode_snapshot_error(d: &mut Decoder<'_>) -> Result<SnapshotError, SnapshotError> {
    Ok(match d.u8()? {
        0 => SnapshotError::Truncated {
            need: d.u64()? as usize,
            have: d.u64()? as usize,
        },
        1 => SnapshotError::BadMagic(d.u32()?),
        2 => SnapshotError::UnsupportedVersion(d.u16()?),
        3 => SnapshotError::ChecksumMismatch {
            expected: decode_u128(d)?,
            found: decode_u128(d)?,
        },
        4 => SnapshotError::KindMismatch {
            expected: nf_kind_from_index(d.u8()?)?,
            found: nf_kind_from_index(d.u8()?)?,
        },
        5 => SnapshotError::Invalid(intern_invalid(d.str()?)),
        6 => SnapshotError::NoState(nf_kind_from_index(d.u8()?)?),
        _ => return Err(SnapshotError::Invalid("unknown snapshot error tag")),
    })
}

/// Every `&'static str` message `SnapshotError::Invalid` can carry, so the
/// decoder can restore the static reference by interning. A message
/// outside this set (a newer writer) decodes to
/// [`UNKNOWN_INVALID_MESSAGE`] instead of failing the whole replay.
const INVALID_MESSAGES: &[&str] = &[
    "Dedup capacity below minimum",
    "Dedup entry from the future",
    "LB cache index out of range",
    "LB snapshot has no backends",
    "Limiter rate/burst not positive",
    "Limiter tokens outside bucket",
    "Monitor flow seen before it began",
    "NAT binding outside port pool",
    "NAT has more bindings than ports",
    "NAT port hint outside pool",
    "NAT port pool is empty",
    "NF index out of range in subgroup",
    "duplicate Dedup fingerprint",
    "duplicate LB cache flow",
    "duplicate Monitor flow",
    "duplicate NAT external port",
    "duplicate NAT internal endpoint",
    "string field is not UTF-8",
    "trailing bytes after digest",
    "trailing bytes after payload",
    "unknown NF kind index",
    "unknown WAL record tag",
    "unknown PoP health rung",
    "unknown migration error tag",
    "unknown snapshot error tag",
];

/// What an unrecognized `SnapshotError::Invalid` message decodes to.
pub const UNKNOWN_INVALID_MESSAGE: &str = "unrecognized snapshot invariant message";

fn intern_invalid(msg: &str) -> &'static str {
    INVALID_MESSAGES
        .iter()
        .copied()
        .find(|m| *m == msg)
        .unwrap_or(UNKNOWN_INVALID_MESSAGE)
}

/// What a replay of the log concludes the world looks like.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalSummary {
    /// The last epoch known to have committed (`None` = still epoch 0,
    /// the boot configuration).
    pub committed_epoch: Option<u64>,
    /// True if an `Intent` has neither committed nor failed — the crash
    /// hit mid-drain and the engine's swap outcome is still unknown.
    pub in_flight_intent: bool,
    /// Migration failures since the last successful commit.
    pub failures_since_commit: usize,
    /// The last committed swap was a rollback to last-known-good.
    pub last_was_rollback: bool,
    /// Fleet view: chain → (owning PoP, fencing token) as of the end of
    /// the log. Empty for single-PoP supervisor logs.
    pub owners: BTreeMap<usize, (usize, u64)>,
    /// Fleet view: PoP → last journaled ladder rung.
    pub pop_health: BTreeMap<usize, PopHealth>,
    /// Fleet view: chains shed fleet-wide and not since re-granted,
    /// ascending.
    pub fleet_shed: Vec<usize>,
    /// True if the last journaled admission-control flip left the
    /// dataplane denying DDoS-junk tail mass.
    pub admission_deny: bool,
}

/// The outcome of replaying a possibly-torn durable journal image.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecovery {
    /// The recovered log: the longest complete-record prefix, plus a
    /// synthesized [`WalRecord::Recovered`] if that prefix ended on a
    /// dangling intent.
    pub log: DecisionLog,
    /// Records decoded intact from the image.
    pub complete: usize,
    /// Trailing bytes discarded as a torn or corrupt tail.
    pub torn_bytes: usize,
    /// True if the prefix ended mid-swap and a `Recovered` record was
    /// appended to resolve it.
    pub resolved_intent: bool,
}

/// Append-only decision log with deterministic replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionLog {
    records: Vec<WalRecord>,
}

impl DecisionLog {
    pub fn new() -> DecisionLog {
        DecisionLog::default()
    }

    pub fn append(&mut self, rec: WalRecord) {
        self.records.push(rec);
    }

    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialize every record to the durable framed form, concatenated.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for rec in &self.records {
            out.extend_from_slice(&rec.encode());
        }
        out
    }

    /// Replay a durable journal image that may have been cut mid-record
    /// by a crash. Decodes the longest prefix of complete, digest-valid
    /// frames, discards the torn tail, and — if the surviving prefix ends
    /// on a dangling intent — resolves it by appending a
    /// [`WalRecord::Recovered`] stamped `now_ns`. Never errors: the worst
    /// input recovers to an empty log.
    pub fn recover(bytes: &[u8], now_ns: u64) -> WalRecovery {
        let mut records = Vec::new();
        let mut off = 0usize;
        loop {
            let rest = &bytes[off..];
            if rest.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            let frame = 4 + len + RECORD_DIGEST_BYTES;
            if rest.len() < frame {
                break;
            }
            let payload = &rest[4..4 + len];
            let mut stored = [0u8; RECORD_DIGEST_BYTES];
            stored.copy_from_slice(&rest[4 + len..frame]);
            let mut digest = StateDigest::new();
            digest.bytes(payload);
            if digest.finish() != u128::from_le_bytes(stored) {
                break;
            }
            match WalRecord::decode_payload(payload) {
                Ok(rec) => records.push(rec),
                Err(_) => break,
            }
            off += frame;
        }
        let complete = records.len();
        let mut log = DecisionLog { records };
        let resolved_intent = log.replay().in_flight_intent;
        if resolved_intent {
            log.append(WalRecord::Recovered {
                at_ns: now_ns,
                replayed: complete,
            });
        }
        WalRecovery {
            log,
            complete,
            torn_bytes: bytes.len() - off,
            resolved_intent,
        }
    }

    /// Replay the log front to back and report the consistent state it
    /// lands on. A crashed control plane calls this to re-learn which
    /// epoch is live (and, for a coordinator, who owns what under which
    /// fencing token) before touching the dataplane again.
    pub fn replay(&self) -> WalSummary {
        let mut s = WalSummary::default();
        for rec in &self.records {
            match rec {
                WalRecord::Intent { .. } => s.in_flight_intent = true,
                WalRecord::Committed {
                    epoch, rollback, ..
                } => {
                    s.committed_epoch = Some(*epoch);
                    s.in_flight_intent = false;
                    s.failures_since_commit = 0;
                    s.last_was_rollback = *rollback;
                }
                WalRecord::MigrationFailed { .. } => {
                    s.in_flight_intent = false;
                    s.failures_since_commit += 1;
                }
                WalRecord::Recovered { .. } => s.in_flight_intent = false,
                WalRecord::FleetGrant {
                    pop, chain, token, ..
                } => {
                    s.owners.insert(*chain, (*pop, *token));
                    s.fleet_shed.retain(|c| c != chain);
                }
                WalRecord::FleetRevoke { pop, chain, .. } => {
                    // Only the journaled owner's revocation clears the
                    // entry: a late revoke for a superseded grant is a
                    // no-op, exactly like a stale fencing token.
                    if s.owners.get(chain).map(|(p, _)| *p) == Some(*pop) {
                        s.owners.remove(chain);
                    }
                }
                WalRecord::FleetPopHealth { pop, health, .. } => {
                    s.pop_health.insert(*pop, *health);
                }
                WalRecord::FleetShed { chain, .. } => {
                    s.owners.remove(chain);
                    if let Err(at) = s.fleet_shed.binary_search(chain) {
                        s.fleet_shed.insert(at, *chain);
                    }
                }
                WalRecord::AdmissionControl { deny, .. } => s.admission_deny = *deny,
            }
        }
        s
    }

    /// The consistency invariant the soak asserts after every storm: each
    /// intent is resolved (committed, failed, or recovered past) — the
    /// log never ends mid-swap.
    pub fn is_consistent(&self) -> bool {
        !self.replay().in_flight_intent
    }
}

impl Serialize for PopHealth {
    fn to_value(&self) -> Value {
        Value::Str(self.tag().to_string())
    }
}

impl Deserialize for PopHealth {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let tag: String = Deserialize::from_value(v)?;
        PopHealth::from_tag(&tag).ok_or_else(|| DeError::expected("PopHealth tag", v))
    }
}

fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    T::from_value(v.get(name).ok_or_else(|| DeError::missing(name))?)
}

fn tagged(tag: &str, mut fields: Vec<(String, Value)>) -> Value {
    let mut entries = vec![("type".to_string(), Value::Str(tag.to_string()))];
    entries.append(&mut fields);
    Value::object(entries)
}

fn u128_to_value(v: u128) -> Value {
    Value::Str(format!("{v:032x}"))
}

fn u128_from_value(v: &Value) -> Result<u128, DeError> {
    let s: String = Deserialize::from_value(v)?;
    u128::from_str_radix(&s, 16).map_err(|_| DeError::expected("hex u128", v))
}

fn nf_kind_to_value(k: NfKind) -> Value {
    Value::Str(k.name().to_string())
}

fn nf_kind_from_value(v: &Value) -> Result<NfKind, DeError> {
    let name: String = Deserialize::from_value(v)?;
    NfKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| DeError::expected("NF kind name", v))
}

fn snapshot_error_to_value(err: &SnapshotError) -> Value {
    match err {
        SnapshotError::Truncated { need, have } => tagged(
            "truncated",
            vec![
                ("need".to_string(), need.to_value()),
                ("have".to_string(), have.to_value()),
            ],
        ),
        SnapshotError::BadMagic(magic) => tagged(
            "bad_magic",
            vec![("magic".to_string(), (*magic as u64).to_value())],
        ),
        SnapshotError::UnsupportedVersion(version) => tagged(
            "unsupported_version",
            vec![("version".to_string(), (*version as u64).to_value())],
        ),
        SnapshotError::ChecksumMismatch { expected, found } => tagged(
            "checksum_mismatch",
            vec![
                ("expected".to_string(), u128_to_value(*expected)),
                ("found".to_string(), u128_to_value(*found)),
            ],
        ),
        SnapshotError::KindMismatch { expected, found } => tagged(
            "kind_mismatch",
            vec![
                ("expected".to_string(), nf_kind_to_value(*expected)),
                ("found".to_string(), nf_kind_to_value(*found)),
            ],
        ),
        SnapshotError::Invalid(msg) => tagged(
            "invalid",
            vec![("message".to_string(), Value::Str(msg.to_string()))],
        ),
        SnapshotError::NoState(kind) => tagged(
            "no_state",
            vec![("kind".to_string(), nf_kind_to_value(*kind))],
        ),
    }
}

fn snapshot_error_from_value(v: &Value) -> Result<SnapshotError, DeError> {
    let tag: String = de_field(v, "type")?;
    match tag.as_str() {
        "truncated" => Ok(SnapshotError::Truncated {
            need: de_field(v, "need")?,
            have: de_field(v, "have")?,
        }),
        "bad_magic" => {
            let magic: u64 = de_field(v, "magic")?;
            Ok(SnapshotError::BadMagic(magic as u32))
        }
        "unsupported_version" => {
            let version: u64 = de_field(v, "version")?;
            Ok(SnapshotError::UnsupportedVersion(version as u16))
        }
        "checksum_mismatch" => Ok(SnapshotError::ChecksumMismatch {
            expected: u128_from_value(
                v.get("expected")
                    .ok_or_else(|| DeError::missing("expected"))?,
            )?,
            found: u128_from_value(v.get("found").ok_or_else(|| DeError::missing("found"))?)?,
        }),
        "kind_mismatch" => Ok(SnapshotError::KindMismatch {
            expected: nf_kind_from_value(
                v.get("expected")
                    .ok_or_else(|| DeError::missing("expected"))?,
            )?,
            found: nf_kind_from_value(v.get("found").ok_or_else(|| DeError::missing("found"))?)?,
        }),
        "invalid" => {
            let msg: String = de_field(v, "message")?;
            Ok(SnapshotError::Invalid(intern_invalid(&msg)))
        }
        "no_state" => Ok(SnapshotError::NoState(nf_kind_from_value(
            v.get("kind").ok_or_else(|| DeError::missing("kind"))?,
        )?)),
        _ => Err(DeError::expected("snapshot error tag", v)),
    }
}

fn migration_error_to_value(err: &MigrationError) -> Value {
    match err {
        MigrationError::Decode {
            chain,
            node,
            replica,
            source,
        } => tagged(
            "decode",
            vec![
                ("chain".to_string(), chain.to_value()),
                ("node".to_string(), node.0.to_value()),
                ("replica".to_string(), replica.to_value()),
                ("source".to_string(), snapshot_error_to_value(source)),
            ],
        ),
        MigrationError::FingerprintMismatch {
            chain,
            node,
            replica,
        } => tagged(
            "fingerprint_mismatch",
            vec![
                ("chain".to_string(), chain.to_value()),
                ("node".to_string(), node.0.to_value()),
                ("replica".to_string(), replica.to_value()),
            ],
        ),
        MigrationError::Truncated { expected, got } => tagged(
            "truncated",
            vec![
                ("expected".to_string(), expected.to_value()),
                ("got".to_string(), got.to_value()),
            ],
        ),
        MigrationError::ControlCrash => tagged("control_crash", vec![]),
        MigrationError::RestoreTimeout => tagged("restore_timeout", vec![]),
        MigrationError::StaleFencingToken {
            chain,
            held,
            offered,
        } => tagged(
            "stale_fencing_token",
            vec![
                ("chain".to_string(), chain.to_value()),
                ("held".to_string(), held.to_value()),
                ("offered".to_string(), offered.to_value()),
            ],
        ),
        MigrationError::SiteUnreachable { site } => tagged(
            "site_unreachable",
            vec![("site".to_string(), site.to_value())],
        ),
    }
}

fn migration_error_from_value(v: &Value) -> Result<MigrationError, DeError> {
    let tag: String = de_field(v, "type")?;
    match tag.as_str() {
        "decode" => Ok(MigrationError::Decode {
            chain: de_field(v, "chain")?,
            node: NodeId(de_field(v, "node")?),
            replica: de_field(v, "replica")?,
            source: snapshot_error_from_value(
                v.get("source").ok_or_else(|| DeError::missing("source"))?,
            )?,
        }),
        "fingerprint_mismatch" => Ok(MigrationError::FingerprintMismatch {
            chain: de_field(v, "chain")?,
            node: NodeId(de_field(v, "node")?),
            replica: de_field(v, "replica")?,
        }),
        "truncated" => Ok(MigrationError::Truncated {
            expected: de_field(v, "expected")?,
            got: de_field(v, "got")?,
        }),
        "control_crash" => Ok(MigrationError::ControlCrash),
        "restore_timeout" => Ok(MigrationError::RestoreTimeout),
        "stale_fencing_token" => Ok(MigrationError::StaleFencingToken {
            chain: de_field(v, "chain")?,
            held: de_field(v, "held")?,
            offered: de_field(v, "offered")?,
        }),
        "site_unreachable" => Ok(MigrationError::SiteUnreachable {
            site: de_field(v, "site")?,
        }),
        _ => Err(DeError::expected("migration error tag", v)),
    }
}

impl Serialize for WalRecord {
    fn to_value(&self) -> Value {
        match self {
            WalRecord::Intent {
                at_ns,
                rollback,
                shed,
            } => tagged(
                "intent",
                vec![
                    ("at_ns".to_string(), at_ns.to_value()),
                    ("rollback".to_string(), rollback.to_value()),
                    ("shed".to_string(), shed.to_value()),
                ],
            ),
            WalRecord::Committed {
                at_ns,
                epoch,
                rollback,
            } => tagged(
                "committed",
                vec![
                    ("at_ns".to_string(), at_ns.to_value()),
                    ("epoch".to_string(), epoch.to_value()),
                    ("rollback".to_string(), rollback.to_value()),
                ],
            ),
            WalRecord::MigrationFailed { at_ns, error } => tagged(
                "migration_failed",
                vec![
                    ("at_ns".to_string(), at_ns.to_value()),
                    ("error".to_string(), migration_error_to_value(error)),
                ],
            ),
            WalRecord::Recovered { at_ns, replayed } => tagged(
                "recovered",
                vec![
                    ("at_ns".to_string(), at_ns.to_value()),
                    ("replayed".to_string(), replayed.to_value()),
                ],
            ),
            WalRecord::FleetGrant {
                at_ns,
                pop,
                chain,
                token,
            } => tagged(
                "fleet_grant",
                vec![
                    ("at_ns".to_string(), at_ns.to_value()),
                    ("pop".to_string(), pop.to_value()),
                    ("chain".to_string(), chain.to_value()),
                    ("token".to_string(), token.to_value()),
                ],
            ),
            WalRecord::FleetRevoke {
                at_ns,
                pop,
                chain,
                token,
            } => tagged(
                "fleet_revoke",
                vec![
                    ("at_ns".to_string(), at_ns.to_value()),
                    ("pop".to_string(), pop.to_value()),
                    ("chain".to_string(), chain.to_value()),
                    ("token".to_string(), token.to_value()),
                ],
            ),
            WalRecord::FleetPopHealth { at_ns, pop, health } => tagged(
                "fleet_pop_health",
                vec![
                    ("at_ns".to_string(), at_ns.to_value()),
                    ("pop".to_string(), pop.to_value()),
                    ("health".to_string(), health.to_value()),
                ],
            ),
            WalRecord::FleetShed { at_ns, chain } => tagged(
                "fleet_shed",
                vec![
                    ("at_ns".to_string(), at_ns.to_value()),
                    ("chain".to_string(), chain.to_value()),
                ],
            ),
            WalRecord::AdmissionControl { at_ns, deny } => tagged(
                "admission_control",
                vec![
                    ("at_ns".to_string(), at_ns.to_value()),
                    ("deny".to_string(), deny.to_value()),
                ],
            ),
        }
    }
}

impl Deserialize for WalRecord {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let tag: String = de_field(v, "type")?;
        match tag.as_str() {
            "intent" => Ok(WalRecord::Intent {
                at_ns: de_field(v, "at_ns")?,
                rollback: de_field(v, "rollback")?,
                shed: de_field(v, "shed")?,
            }),
            "committed" => Ok(WalRecord::Committed {
                at_ns: de_field(v, "at_ns")?,
                epoch: de_field(v, "epoch")?,
                rollback: de_field(v, "rollback")?,
            }),
            "migration_failed" => Ok(WalRecord::MigrationFailed {
                at_ns: de_field(v, "at_ns")?,
                error: migration_error_from_value(
                    v.get("error").ok_or_else(|| DeError::missing("error"))?,
                )?,
            }),
            "recovered" => Ok(WalRecord::Recovered {
                at_ns: de_field(v, "at_ns")?,
                replayed: de_field(v, "replayed")?,
            }),
            "fleet_grant" => Ok(WalRecord::FleetGrant {
                at_ns: de_field(v, "at_ns")?,
                pop: de_field(v, "pop")?,
                chain: de_field(v, "chain")?,
                token: de_field(v, "token")?,
            }),
            "fleet_revoke" => Ok(WalRecord::FleetRevoke {
                at_ns: de_field(v, "at_ns")?,
                pop: de_field(v, "pop")?,
                chain: de_field(v, "chain")?,
                token: de_field(v, "token")?,
            }),
            "fleet_pop_health" => Ok(WalRecord::FleetPopHealth {
                at_ns: de_field(v, "at_ns")?,
                pop: de_field(v, "pop")?,
                health: de_field(v, "health")?,
            }),
            "fleet_shed" => Ok(WalRecord::FleetShed {
                at_ns: de_field(v, "at_ns")?,
                chain: de_field(v, "chain")?,
            }),
            "admission_control" => Ok(WalRecord::AdmissionControl {
                at_ns: de_field(v, "at_ns")?,
                deny: de_field(v, "deny")?,
            }),
            _ => Err(DeError::expected("WAL record tag", v)),
        }
    }
}

impl Serialize for DecisionLog {
    fn to_value(&self) -> Value {
        Value::object(vec![("records".to_string(), self.records.to_value())])
    }
}

impl Deserialize for DecisionLog {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(DecisionLog {
            records: de_field(v, "records")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_is_boot_state() {
        let log = DecisionLog::new();
        assert!(log.is_empty());
        assert_eq!(log.replay(), WalSummary::default());
        assert!(log.is_consistent());
    }

    #[test]
    fn intent_then_commit_resolves() {
        let mut log = DecisionLog::new();
        log.append(WalRecord::Intent {
            at_ns: 100,
            rollback: false,
            shed: vec![1],
        });
        assert!(!log.is_consistent(), "dangling intent must be visible");
        log.append(WalRecord::Committed {
            at_ns: 300,
            epoch: 1,
            rollback: false,
        });
        let s = log.replay();
        assert!(log.is_consistent());
        assert_eq!(s.committed_epoch, Some(1));
        assert_eq!(s.failures_since_commit, 0);
    }

    #[test]
    fn failure_resolves_intent_without_advancing_epoch() {
        let mut log = DecisionLog::new();
        log.append(WalRecord::Intent {
            at_ns: 100,
            rollback: false,
            shed: vec![],
        });
        log.append(WalRecord::MigrationFailed {
            at_ns: 300,
            error: MigrationError::RestoreTimeout,
        });
        let s = log.replay();
        assert!(log.is_consistent());
        assert_eq!(s.committed_epoch, None, "aborted swap must not commit");
        assert_eq!(s.failures_since_commit, 1);
    }

    #[test]
    fn crash_recovery_replays_to_last_commit() -> Result<(), String> {
        let mut log = DecisionLog::new();
        log.append(WalRecord::Intent {
            at_ns: 100,
            rollback: false,
            shed: vec![],
        });
        log.append(WalRecord::Committed {
            at_ns: 300,
            epoch: 1,
            rollback: false,
        });
        log.append(WalRecord::Intent {
            at_ns: 900,
            rollback: false,
            shed: vec![],
        });
        log.append(WalRecord::MigrationFailed {
            at_ns: 1_100,
            error: MigrationError::ControlCrash,
        });
        let replayed = log.len();
        log.append(WalRecord::Recovered {
            at_ns: 1_100,
            replayed,
        });
        let s = log.replay();
        assert!(log.is_consistent());
        // The world the recovered control plane sees: epoch 1 live, one
        // failed attempt since.
        assert_eq!(s.committed_epoch, Some(1));
        assert_eq!(s.failures_since_commit, 1);
        let last = log.records().last().ok_or("replayed log lost its tail")?;
        assert_eq!(last.at_ns(), 1_100);
        Ok(())
    }

    #[test]
    fn commit_clears_failure_count() {
        let mut log = DecisionLog::new();
        for at in [10, 20] {
            log.append(WalRecord::Intent {
                at_ns: at,
                rollback: false,
                shed: vec![],
            });
            log.append(WalRecord::MigrationFailed {
                at_ns: at + 5,
                error: MigrationError::RestoreTimeout,
            });
        }
        assert_eq!(log.replay().failures_since_commit, 2);
        log.append(WalRecord::Intent {
            at_ns: 30,
            rollback: true,
            shed: vec![],
        });
        log.append(WalRecord::Committed {
            at_ns: 35,
            epoch: 1,
            rollback: true,
        });
        let s = log.replay();
        assert_eq!(s.failures_since_commit, 0);
        assert!(s.last_was_rollback);
    }

    fn fleet_log() -> DecisionLog {
        let mut log = DecisionLog::new();
        log.append(WalRecord::FleetGrant {
            at_ns: 10,
            pop: 0,
            chain: 0,
            token: 1,
        });
        log.append(WalRecord::FleetGrant {
            at_ns: 10,
            pop: 1,
            chain: 1,
            token: 1,
        });
        log.append(WalRecord::FleetPopHealth {
            at_ns: 500,
            pop: 1,
            health: PopHealth::Drained,
        });
        log.append(WalRecord::FleetRevoke {
            at_ns: 500,
            pop: 1,
            chain: 1,
            token: 1,
        });
        log.append(WalRecord::FleetGrant {
            at_ns: 600,
            pop: 0,
            chain: 1,
            token: 2,
        });
        log.append(WalRecord::FleetShed {
            at_ns: 700,
            chain: 2,
        });
        log
    }

    #[test]
    fn fleet_replay_tracks_ownership_health_and_shed() {
        let s = fleet_log().replay();
        assert_eq!(s.owners.get(&0), Some(&(0, 1)));
        assert_eq!(s.owners.get(&1), Some(&(0, 2)), "failover moved chain 1");
        assert_eq!(s.pop_health.get(&1), Some(&PopHealth::Drained));
        assert_eq!(s.fleet_shed, vec![2]);
        assert!(!s.in_flight_intent && s.committed_epoch.is_none());
    }

    #[test]
    fn stale_revoke_does_not_clear_newer_grant() {
        let mut log = fleet_log();
        // A delayed revoke from drained PoP 1 arrives after chain 1 was
        // re-granted to PoP 0: it must not clear the newer ownership.
        log.append(WalRecord::FleetRevoke {
            at_ns: 800,
            pop: 1,
            chain: 1,
            token: 1,
        });
        assert_eq!(log.replay().owners.get(&1), Some(&(0, 2)));
    }

    #[test]
    fn regrant_clears_fleet_shed() {
        let mut log = fleet_log();
        log.append(WalRecord::FleetGrant {
            at_ns: 900,
            pop: 0,
            chain: 2,
            token: 3,
        });
        let s = log.replay();
        assert!(s.fleet_shed.is_empty());
        assert_eq!(s.owners.get(&2), Some(&(0, 3)));
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Intent {
                at_ns: 1,
                rollback: false,
                shed: vec![3, 5],
            },
            WalRecord::Committed {
                at_ns: 2,
                epoch: 7,
                rollback: true,
            },
            WalRecord::MigrationFailed {
                at_ns: 3,
                error: MigrationError::Decode {
                    chain: 2,
                    node: NodeId(9),
                    replica: 1,
                    source: SnapshotError::ChecksumMismatch {
                        expected: u128::MAX - 5,
                        found: 42,
                    },
                },
            },
            WalRecord::MigrationFailed {
                at_ns: 4,
                error: MigrationError::StaleFencingToken {
                    chain: 1,
                    held: 8,
                    offered: 3,
                },
            },
            WalRecord::Recovered {
                at_ns: 5,
                replayed: 4,
            },
            WalRecord::FleetGrant {
                at_ns: 6,
                pop: 2,
                chain: 0,
                token: 11,
            },
            WalRecord::FleetPopHealth {
                at_ns: 7,
                pop: 2,
                health: PopHealth::Suspect,
            },
            WalRecord::FleetShed { at_ns: 8, chain: 4 },
            WalRecord::AdmissionControl {
                at_ns: 9,
                deny: true,
            },
        ]
    }

    #[test]
    fn admission_control_replays_to_last_flip() {
        let mut log = DecisionLog::new();
        log.append(WalRecord::AdmissionControl {
            at_ns: 10,
            deny: true,
        });
        assert!(log.replay().admission_deny);
        log.append(WalRecord::AdmissionControl {
            at_ns: 20,
            deny: false,
        });
        assert!(!log.replay().admission_deny);
        assert!(log.is_consistent(), "admission flips are not intents");
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let mut log = DecisionLog::new();
        for rec in sample_records() {
            log.append(rec);
        }
        let image = log.encode();
        let rec = DecisionLog::recover(&image, 999);
        assert_eq!(rec.log, log);
        assert_eq!(rec.complete, log.len());
        assert_eq!(rec.torn_bytes, 0);
        assert!(!rec.resolved_intent);
    }

    #[test]
    fn torn_tail_recovers_to_last_complete_record() {
        let mut log = DecisionLog::new();
        log.append(WalRecord::Intent {
            at_ns: 1,
            rollback: false,
            shed: vec![],
        });
        log.append(WalRecord::Committed {
            at_ns: 2,
            epoch: 1,
            rollback: false,
        });
        log.append(WalRecord::Intent {
            at_ns: 3,
            rollback: false,
            shed: vec![9],
        });
        let image = log.encode();
        // Cut mid-way through the final record's frame.
        let cut = image.len() - 7;
        let rec = DecisionLog::recover(&image[..cut], 50);
        assert_eq!(rec.complete, 2, "only the complete prefix survives");
        assert!(rec.torn_bytes > 0);
        assert!(!rec.resolved_intent, "surviving prefix ends on a commit");
        assert!(rec.log.is_consistent());
        assert_eq!(rec.log.replay().committed_epoch, Some(1));
    }

    #[test]
    fn torn_tail_after_intent_synthesizes_recovered() {
        let mut log = DecisionLog::new();
        log.append(WalRecord::Intent {
            at_ns: 1,
            rollback: false,
            shed: vec![],
        });
        log.append(WalRecord::Committed {
            at_ns: 2,
            epoch: 1,
            rollback: false,
        });
        log.append(WalRecord::Intent {
            at_ns: 3,
            rollback: false,
            shed: vec![],
        });
        log.append(WalRecord::Committed {
            at_ns: 4,
            epoch: 2,
            rollback: false,
        });
        let image = log.encode();
        // Cut inside the final commit: the surviving prefix dangles an
        // intent, which recovery must resolve rather than error on.
        let rec = DecisionLog::recover(&image[..image.len() - 3], 77);
        assert_eq!(rec.complete, 3);
        assert!(rec.resolved_intent);
        assert!(rec.log.is_consistent());
        let s = rec.log.replay();
        assert_eq!(s.committed_epoch, Some(1), "epoch 2 never provably landed");
        assert_eq!(
            rec.log.records().last(),
            Some(&WalRecord::Recovered {
                at_ns: 77,
                replayed: 3
            })
        );
    }

    #[test]
    fn corrupt_byte_in_tail_is_discarded_by_digest() {
        let mut log = DecisionLog::new();
        log.append(WalRecord::Committed {
            at_ns: 2,
            epoch: 1,
            rollback: false,
        });
        log.append(WalRecord::FleetShed { at_ns: 9, chain: 1 });
        let mut image = log.encode();
        let n = image.len();
        image[n - 20] ^= 0x40; // flip a payload byte in the last frame
        let rec = DecisionLog::recover(&image, 0);
        assert_eq!(rec.complete, 1, "digest must reject the corrupt frame");
        assert_eq!(rec.log.replay().committed_epoch, Some(1));
    }

    #[test]
    fn serde_round_trip_preserves_records() -> Result<(), String> {
        let mut log = DecisionLog::new();
        for rec in sample_records() {
            log.append(rec);
        }
        let v = log.to_value();
        let back = DecisionLog::from_value(&v).map_err(|e| format!("{e:?}"))?;
        assert_eq!(back, log);
        Ok(())
    }
}
