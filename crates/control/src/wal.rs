//! The supervisor's write-ahead decision log.
//!
//! Every reconfiguration decision is journaled *before* it is handed to
//! the engine, and every outcome is journaled when it lands. If the
//! control plane crashes between snapshot and restore (an injected
//! [`lemur_dataplane::MigrationFaultKind::ControlCrash`]), replaying the
//! log reconstructs a consistent view: either the last committed epoch is
//! live with its NF state intact, or an intent is dangling and the swap is
//! known to have aborted — never a half-applied state.
//!
//! The log is ordered, append-only, and in-memory (the simulation's
//! stand-in for a durable journal): determinism of the run makes the
//! replay itself reproducible bit-for-bit.

use lemur_dataplane::MigrationError;

/// One journaled decision or outcome, in virtual-time order.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Written *before* a staged commit is handed to the engine: the
    /// supervisor intends to swap. `shed` lists chains the new epoch
    /// refuses (empty for rollbacks).
    Intent {
        at_ns: u64,
        rollback: bool,
        shed: Vec<usize>,
    },
    /// The engine committed the swap; `epoch` is now live.
    Committed {
        at_ns: u64,
        epoch: u64,
        rollback: bool,
    },
    /// The staged swap was aborted by a migration failure; the previous
    /// epoch (and its state) stayed live.
    MigrationFailed { at_ns: u64, error: MigrationError },
    /// The control plane came back from a crash and replayed the log;
    /// `replayed` is the number of records scanned.
    Recovered { at_ns: u64, replayed: usize },
}

impl WalRecord {
    pub fn at_ns(&self) -> u64 {
        match self {
            WalRecord::Intent { at_ns, .. }
            | WalRecord::Committed { at_ns, .. }
            | WalRecord::MigrationFailed { at_ns, .. }
            | WalRecord::Recovered { at_ns, .. } => *at_ns,
        }
    }
}

/// What a replay of the log concludes the world looks like.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalSummary {
    /// The last epoch known to have committed (`None` = still epoch 0,
    /// the boot configuration).
    pub committed_epoch: Option<u64>,
    /// True if an `Intent` has neither committed nor failed — the crash
    /// hit mid-drain and the engine's swap outcome is still unknown.
    pub in_flight_intent: bool,
    /// Migration failures since the last successful commit.
    pub failures_since_commit: usize,
    /// The last committed swap was a rollback to last-known-good.
    pub last_was_rollback: bool,
}

/// Append-only decision log with deterministic replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionLog {
    records: Vec<WalRecord>,
}

impl DecisionLog {
    pub fn new() -> DecisionLog {
        DecisionLog::default()
    }

    pub fn append(&mut self, rec: WalRecord) {
        self.records.push(rec);
    }

    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Replay the log front to back and report the consistent state it
    /// lands on. A crashed control plane calls this to re-learn which
    /// epoch is live before touching the dataplane again.
    pub fn replay(&self) -> WalSummary {
        let mut s = WalSummary::default();
        for rec in &self.records {
            match rec {
                WalRecord::Intent { .. } => s.in_flight_intent = true,
                WalRecord::Committed {
                    epoch, rollback, ..
                } => {
                    s.committed_epoch = Some(*epoch);
                    s.in_flight_intent = false;
                    s.failures_since_commit = 0;
                    s.last_was_rollback = *rollback;
                }
                WalRecord::MigrationFailed { .. } => {
                    s.in_flight_intent = false;
                    s.failures_since_commit += 1;
                }
                WalRecord::Recovered { .. } => s.in_flight_intent = false,
            }
        }
        s
    }

    /// The consistency invariant the soak asserts after every storm: each
    /// intent is resolved (committed, failed, or recovered past) — the
    /// log never ends mid-swap.
    pub fn is_consistent(&self) -> bool {
        !self.replay().in_flight_intent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_is_boot_state() {
        let log = DecisionLog::new();
        assert!(log.is_empty());
        assert_eq!(log.replay(), WalSummary::default());
        assert!(log.is_consistent());
    }

    #[test]
    fn intent_then_commit_resolves() {
        let mut log = DecisionLog::new();
        log.append(WalRecord::Intent {
            at_ns: 100,
            rollback: false,
            shed: vec![1],
        });
        assert!(!log.is_consistent(), "dangling intent must be visible");
        log.append(WalRecord::Committed {
            at_ns: 300,
            epoch: 1,
            rollback: false,
        });
        let s = log.replay();
        assert!(log.is_consistent());
        assert_eq!(s.committed_epoch, Some(1));
        assert_eq!(s.failures_since_commit, 0);
    }

    #[test]
    fn failure_resolves_intent_without_advancing_epoch() {
        let mut log = DecisionLog::new();
        log.append(WalRecord::Intent {
            at_ns: 100,
            rollback: false,
            shed: vec![],
        });
        log.append(WalRecord::MigrationFailed {
            at_ns: 300,
            error: MigrationError::RestoreTimeout,
        });
        let s = log.replay();
        assert!(log.is_consistent());
        assert_eq!(s.committed_epoch, None, "aborted swap must not commit");
        assert_eq!(s.failures_since_commit, 1);
    }

    #[test]
    fn crash_recovery_replays_to_last_commit() {
        let mut log = DecisionLog::new();
        log.append(WalRecord::Intent {
            at_ns: 100,
            rollback: false,
            shed: vec![],
        });
        log.append(WalRecord::Committed {
            at_ns: 300,
            epoch: 1,
            rollback: false,
        });
        log.append(WalRecord::Intent {
            at_ns: 900,
            rollback: false,
            shed: vec![],
        });
        log.append(WalRecord::MigrationFailed {
            at_ns: 1_100,
            error: MigrationError::ControlCrash,
        });
        let replayed = log.len();
        log.append(WalRecord::Recovered {
            at_ns: 1_100,
            replayed,
        });
        let s = log.replay();
        assert!(log.is_consistent());
        // The world the recovered control plane sees: epoch 1 live, one
        // failed attempt since.
        assert_eq!(s.committed_epoch, Some(1));
        assert_eq!(s.failures_since_commit, 1);
        assert_eq!(log.records().last().unwrap().at_ns(), 1_100);
    }

    #[test]
    fn commit_clears_failure_count() {
        let mut log = DecisionLog::new();
        for at in [10, 20] {
            log.append(WalRecord::Intent {
                at_ns: at,
                rollback: false,
                shed: vec![],
            });
            log.append(WalRecord::MigrationFailed {
                at_ns: at + 5,
                error: MigrationError::RestoreTimeout,
            });
        }
        assert_eq!(log.replay().failures_since_commit, 2);
        log.append(WalRecord::Intent {
            at_ns: 30,
            rollback: true,
            shed: vec![],
        });
        log.append(WalRecord::Committed {
            at_ns: 35,
            epoch: 1,
            rollback: true,
        });
        let s = log.replay();
        assert_eq!(s.failures_since_commit, 0);
        assert!(s.last_was_rollback);
    }
}
