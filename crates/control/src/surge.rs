//! Surge detection: telling *overload* apart from *degradation*.
//!
//! The supervisor's repair loop assumes a violated guard window means
//! the rack got worse — a dead link, a failed core, a drifted profile.
//! Under a DDoS or flash crowd that assumption inverts: the rack is
//! fine, the *offered load* is the anomaly, and replanning placements
//! cannot manufacture capacity that was never provisioned. Worse, a
//! replan under overload churns the dataplane exactly when it can least
//! afford update-time loss.
//!
//! The [`SurgeDetector`] classifies each guard window from three
//! tail-inclusive signals the dataplane already measures per
//! [`WindowSample`]:
//!
//! * **rate residual** — arrivals exceed the workload's *declared*
//!   intensity (the scenario's non-junk packet rate) by more than
//!   `residual_frac`;
//! * **junk fraction** — DDoS-flagged arrivals exceed `junk_frac` of
//!   the window's arrivals;
//! * **backlog level** — the fluid queue holds at least `backlog_min`
//!   packets at window close. This is a *level*, not a growth rate, so
//!   the drain windows after a burst stay classified as overload
//!   instead of triggering a spurious repair while the queue empties.
//!
//! Classification is hysteretic in both directions (`k_up` surging
//! windows to enter [`SurgeClass::Overload`], `k_down` calm windows to
//! leave), mirroring the supervisor's own violation hysteresis so the
//! two state machines cannot chatter against each other.

use lemur_dataplane::{Scenario, WindowSample};

/// What a violation burst looks like to the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurgeClass {
    /// The offered load is anomalous (flash crowd, DDoS, or residual
    /// queue drain): repair cannot help; the degradation ladder can.
    Overload,
    /// No load anomaly: violations mean something actually broke, and
    /// the normal detect → repair → commit loop applies.
    Degradation,
}

/// Detector thresholds. Times are virtual; rates are packets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurgeConfig {
    /// Fractional headroom over the declared per-window arrival mass
    /// before arrivals alone mark the window surging (0.5 = 50% over).
    pub residual_frac: f64,
    /// Junk fraction of arrivals above which the window is surging.
    pub junk_frac: f64,
    /// Fluid-queue backlog (packets, at window close) at or above which
    /// the window is surging. A level, not a growth rate — see module
    /// docs for why drain windows must stay classified as overload.
    pub backlog_min: u64,
    /// Consecutive surging windows before the class flips to Overload.
    pub k_up: u32,
    /// Consecutive calm windows before it flips back to Degradation.
    pub k_down: u32,
}

impl Default for SurgeConfig {
    fn default() -> SurgeConfig {
        SurgeConfig {
            residual_frac: 0.5,
            junk_frac: 0.1,
            backlog_min: 1,
            k_up: 2,
            k_down: 2,
        }
    }
}

/// Windowed overload classifier; feed it every guard-window batch.
#[derive(Debug, Clone)]
pub struct SurgeDetector {
    cfg: SurgeConfig,
    /// Declared legitimate intensity per chain, packets per nanosecond.
    declared_ppns: Vec<f64>,
    up_streak: u32,
    down_streak: u32,
    overload: bool,
}

impl SurgeDetector {
    /// Build from explicit per-chain declared intensities (packets/ns).
    pub fn new(declared_ppns: Vec<f64>, cfg: SurgeConfig) -> SurgeDetector {
        SurgeDetector {
            cfg,
            declared_ppns,
            up_streak: 0,
            down_streak: 0,
            overload: false,
        }
    }

    /// Derive declared intensities from a materialized scenario: each
    /// chain's *non-junk* packet mass averaged over the horizon. Junk
    /// flows are excluded by construction — they are the anomaly the
    /// detector exists to notice.
    pub fn for_scenario(scenario: &Scenario, cfg: SurgeConfig) -> SurgeDetector {
        let horizon = scenario.horizon_ns.max(1) as f64;
        let mut packets = vec![0u64; scenario.n_chains];
        for f in &scenario.flows {
            if !f.ddos {
                if let Some(p) = packets.get_mut(f.chain) {
                    *p += f.packets;
                }
            }
        }
        let declared = packets.iter().map(|&p| p as f64 / horizon).collect();
        SurgeDetector::new(declared, cfg)
    }

    /// Current classification without observing anything new.
    pub fn class(&self) -> SurgeClass {
        if self.overload {
            SurgeClass::Overload
        } else {
            SurgeClass::Degradation
        }
    }

    /// True while the detector classifies the episode as overload.
    pub fn is_overload(&self) -> bool {
        self.overload
    }

    /// Feed one guard-window close (all chains' samples for the window)
    /// and return the updated classification.
    pub fn observe(&mut self, samples: &[WindowSample]) -> SurgeClass {
        let surging = samples.iter().any(|w| self.window_is_surging(w));
        if surging {
            self.up_streak += 1;
            self.down_streak = 0;
            if self.up_streak >= self.cfg.k_up {
                self.overload = true;
            }
        } else {
            self.down_streak += 1;
            self.up_streak = 0;
            if self.down_streak >= self.cfg.k_down {
                self.overload = false;
            }
        }
        self.class()
    }

    fn window_is_surging(&self, w: &WindowSample) -> bool {
        let span_ns = w.end_ns.saturating_sub(w.start_ns) as f64;
        let declared = self.declared_ppns.get(w.chain).copied().unwrap_or(0.0) * span_ns;
        let rate_hot = span_ns > 0.0
            && declared > 0.0
            && w.arrived_packets as f64 > declared * (1.0 + self.cfg.residual_frac);
        let junk_hot = w.arrived_packets > 0
            && w.junk_packets as f64 > self.cfg.junk_frac * w.arrived_packets as f64;
        let backlog_hot = w.backlog_packets >= self.cfg.backlog_min.max(1);
        rate_hot || junk_hot || backlog_hot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(chain: usize, start_ns: u64, arrived: u64, junk: u64, backlog: u64) -> WindowSample {
        WindowSample {
            start_ns,
            end_ns: start_ns + 1_000_000,
            chain,
            delivered_bps: 0.0,
            delivered_packets: arrived,
            dropped_packets: 0,
            mean_latency_ns: 0.0,
            arrived_packets: arrived,
            junk_packets: junk,
            backlog_packets: backlog,
        }
    }

    /// 1000 packets per 1 ms window declared on chain 0.
    fn detector(cfg: SurgeConfig) -> SurgeDetector {
        SurgeDetector::new(vec![1000.0 / 1_000_000.0], cfg)
    }

    #[test]
    fn calm_traffic_stays_degradation() {
        let mut d = detector(SurgeConfig::default());
        for w in 0..10 {
            let class = d.observe(&[window(0, w * 1_000_000, 1000, 0, 0)]);
            assert_eq!(class, SurgeClass::Degradation, "window {w}");
        }
    }

    #[test]
    fn rate_residual_flips_after_k_up() {
        let mut d = detector(SurgeConfig::default());
        // 3× declared arrivals: first window is not yet enough (k_up = 2).
        assert_eq!(
            d.observe(&[window(0, 0, 3000, 0, 0)]),
            SurgeClass::Degradation
        );
        assert_eq!(
            d.observe(&[window(0, 1_000_000, 3000, 0, 0)]),
            SurgeClass::Overload
        );
    }

    #[test]
    fn junk_fraction_alone_is_enough() {
        let mut d = detector(SurgeConfig::default());
        // Arrival mass within declared bounds, but 40% of it is junk.
        for w in 0..2 {
            d.observe(&[window(0, w * 1_000_000, 1000, 400, 0)]);
        }
        assert!(d.is_overload());
    }

    #[test]
    fn backlog_level_keeps_drain_windows_overloaded() {
        let mut d = detector(SurgeConfig::default());
        for w in 0..2 {
            d.observe(&[window(0, w * 1_000_000, 3000, 0, 500)]);
        }
        assert!(d.is_overload());
        // Burst over: arrivals back to declared, but the queue is still
        // draining. The backlog *level* holds the classification.
        for w in 2..6 {
            let class = d.observe(&[window(0, w * 1_000_000, 1000, 0, 100 - w * 10)]);
            assert_eq!(class, SurgeClass::Overload, "drain window {w}");
        }
        // Queue empty: k_down calm windows flip it back.
        d.observe(&[window(0, 6_000_000, 1000, 0, 0)]);
        assert_eq!(
            d.observe(&[window(0, 7_000_000, 1000, 0, 0)]),
            SurgeClass::Degradation
        );
    }

    #[test]
    fn single_calm_window_does_not_reset_an_episode() {
        let mut d = detector(SurgeConfig::default());
        for w in 0..2 {
            d.observe(&[window(0, w * 1_000_000, 3000, 0, 0)]);
        }
        assert!(d.is_overload());
        // One calm window (k_down = 2): still overload.
        d.observe(&[window(0, 2_000_000, 1000, 0, 0)]);
        assert!(d.is_overload(), "hysteresis must ride through one lull");
        d.observe(&[window(0, 3_000_000, 1000, 0, 0)]);
        assert!(!d.is_overload());
    }

    #[test]
    fn for_scenario_excludes_junk_from_declared() {
        use lemur_dataplane::{ChainLoad, FlowSizeDist, ScenarioSpec, Surge, SurgeKind};
        let spec = ScenarioSpec {
            seed: 9,
            horizon_ns: 10_000_000,
            chains: vec![ChainLoad {
                flows: 200,
                flow_rate_pps: 200_000.0,
                size: FlowSizeDist {
                    alpha: 1.3,
                    min_packets: 1,
                    max_packets: 64,
                },
                diurnal: None,
                surges: vec![Surge {
                    kind: SurgeKind::Ddos,
                    start_ns: 2_000_000,
                    duration_ns: 5_000_000,
                    factor: 4.0,
                }],
            }],
        };
        let scenario = spec.materialize();
        let junk: u64 = scenario
            .flows
            .iter()
            .filter(|f| f.ddos)
            .map(|f| f.packets)
            .sum();
        assert!(junk > 0, "the surge must generate junk flows");
        let legit: u64 = scenario
            .flows
            .iter()
            .filter(|f| !f.ddos)
            .map(|f| f.packets)
            .sum();
        let d = SurgeDetector::for_scenario(&scenario, SurgeConfig::default());
        let expected = legit as f64 / scenario.horizon_ns as f64;
        assert!((d.declared_ppns[0] - expected).abs() < 1e-12);
    }
}
