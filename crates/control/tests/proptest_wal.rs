//! Property-based tests for the decision log's durable forms.
//!
//! Two families: (1) serde and binary round-trips are exact for arbitrary
//! record mixes (including fleet records and every migration/snapshot
//! error shape), and (2) a journal image cut or corrupted at an arbitrary
//! point always recovers — to the longest complete prefix, consistently,
//! with any dangling intent resolved — and never errors.

use lemur_control::wal::{DecisionLog, PopHealth, WalRecord};
use lemur_core::graph::NodeId;
use lemur_dataplane::MigrationError;
use lemur_nf::snapshot::SnapshotError;
use lemur_nf::NfKind;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

/// Raw fuzz tuple → one WAL record. Every variant (and nested error
/// shape) is reachable, so round-trips cover the full wire grammar.
fn record_from(raw: (u8, u64, u64, u64, u64)) -> WalRecord {
    let (tag, a, b, c, d) = raw;
    match tag % 8 {
        0 => WalRecord::Intent {
            at_ns: a,
            rollback: b % 2 == 1,
            shed: vec![(c % 64) as usize, (d % 64) as usize],
        },
        1 => WalRecord::Committed {
            at_ns: a,
            epoch: b,
            rollback: c % 2 == 1,
        },
        2 => WalRecord::MigrationFailed {
            at_ns: a,
            error: migration_error_from(b, c, d),
        },
        3 => WalRecord::Recovered {
            at_ns: a,
            replayed: (b % 1_000) as usize,
        },
        4 => WalRecord::FleetGrant {
            at_ns: a,
            pop: (b % 8) as usize,
            chain: (c % 64) as usize,
            token: d,
        },
        5 => WalRecord::FleetRevoke {
            at_ns: a,
            pop: (b % 8) as usize,
            chain: (c % 64) as usize,
            token: d,
        },
        6 => WalRecord::FleetPopHealth {
            at_ns: a,
            pop: (b % 8) as usize,
            health: PopHealth::ALL[(c % 4) as usize],
        },
        _ => WalRecord::FleetShed {
            at_ns: a,
            chain: (b % 64) as usize,
        },
    }
}

fn migration_error_from(b: u64, c: u64, d: u64) -> MigrationError {
    match b % 7 {
        0 => MigrationError::Decode {
            chain: (c % 64) as usize,
            node: NodeId((d % 256) as usize),
            replica: (c % 4) as usize,
            source: snapshot_error_from(c, d),
        },
        1 => MigrationError::FingerprintMismatch {
            chain: (c % 64) as usize,
            node: NodeId((d % 256) as usize),
            replica: (d % 4) as usize,
        },
        2 => MigrationError::Truncated {
            expected: (c % 1_000) as usize,
            got: (d % 1_000) as usize,
        },
        3 => MigrationError::ControlCrash,
        4 => MigrationError::RestoreTimeout,
        5 => MigrationError::StaleFencingToken {
            chain: (c % 64) as usize,
            held: c,
            offered: d,
        },
        _ => MigrationError::SiteUnreachable {
            site: (c % 8) as usize,
        },
    }
}

fn snapshot_error_from(c: u64, d: u64) -> SnapshotError {
    match d % 7 {
        0 => SnapshotError::Truncated {
            need: (c % 10_000) as usize,
            have: (d % 10_000) as usize,
        },
        1 => SnapshotError::BadMagic(c as u32),
        2 => SnapshotError::UnsupportedVersion(c as u16),
        3 => SnapshotError::ChecksumMismatch {
            expected: ((c as u128) << 64) | d as u128,
            found: d as u128,
        },
        4 => SnapshotError::KindMismatch {
            expected: NfKind::ALL[(c % 14) as usize],
            found: NfKind::ALL[(d % 14) as usize],
        },
        // The decoder restores `Invalid` by interning against the known
        // message set, so only real messages round-trip exactly.
        5 => SnapshotError::Invalid(if c.is_multiple_of(2) {
            "NAT port pool is empty"
        } else {
            "duplicate Dedup fingerprint"
        }),
        _ => SnapshotError::NoState(NfKind::ALL[(c % 14) as usize]),
    }
}

fn log_from(raws: Vec<(u8, u64, u64, u64, u64)>) -> DecisionLog {
    let mut log = DecisionLog::new();
    for raw in raws {
        log.append(record_from(raw));
    }
    log
}

proptest! {
    /// serde round-trip is exact for arbitrary record mixes.
    #[test]
    fn serde_round_trip(
        raws in prop::collection::vec(
            (0u8..8, 0u64..1_000_000, 0u64..1_000, 0u64..1_000, 0u64..1_000), 0..12),
    ) {
        let log = log_from(raws);
        let back = DecisionLog::from_value(&log.to_value())
            .map_err(|e| TestCaseError::fail(format!("deserialize: {e:?}")))?;
        prop_assert_eq!(back, log);
    }

    /// Binary round-trip of an untruncated image is exact: every record
    /// survives, nothing is torn, and no recovery record is invented
    /// unless the log really ended mid-swap.
    #[test]
    fn binary_round_trip(
        raws in prop::collection::vec(
            (0u8..8, 0u64..1_000_000, 0u64..1_000, 0u64..1_000, 0u64..1_000), 0..12),
    ) {
        let log = log_from(raws);
        let rec = DecisionLog::recover(&log.encode(), 42);
        prop_assert_eq!(rec.complete, log.len());
        prop_assert_eq!(rec.torn_bytes, 0);
        prop_assert_eq!(&rec.log.records()[..rec.complete], log.records());
        prop_assert_eq!(rec.resolved_intent, !log.is_consistent());
        prop_assert!(rec.log.is_consistent());
    }

    /// A journal cut at an arbitrary byte recovers to exactly the records
    /// whose frames fit before the cut, replays to the last complete
    /// decision, and never errors or dangles an intent.
    #[test]
    fn torn_tail_recovers_to_last_complete_decision(
        raws in prop::collection::vec(
            (0u8..8, 0u64..1_000_000, 0u64..1_000, 0u64..1_000, 0u64..1_000), 1..12),
        cut_seed in 0usize..100_000,
    ) {
        let log = log_from(raws);
        let image = log.encode();
        let cut = cut_seed % (image.len() + 1);
        let rec = DecisionLog::recover(&image[..cut], 7);

        // The survivor count is exactly the frames wholly inside the cut.
        let mut fit = 0usize;
        let mut off = 0usize;
        for r in log.records() {
            off += r.encode().len();
            if off <= cut {
                fit += 1;
            } else {
                break;
            }
        }
        prop_assert_eq!(rec.complete, fit);
        let consumed: usize = log.records()[..fit].iter().map(|r| r.encode().len()).sum();
        prop_assert_eq!(rec.torn_bytes, cut - consumed);
        prop_assert_eq!(&rec.log.records()[..fit], &log.records()[..fit]);

        // Replay of the recovered log matches replay of the true prefix,
        // modulo the synthesized resolution of a dangling intent.
        let mut prefix = DecisionLog::new();
        for r in &log.records()[..fit] {
            prefix.append(r.clone());
        }
        prop_assert!(rec.log.is_consistent(), "recovery must never dangle an intent");
        let got = rec.log.replay();
        let want = prefix.replay();
        prop_assert_eq!(got.committed_epoch, want.committed_epoch);
        prop_assert_eq!(got.owners, want.owners);
        prop_assert_eq!(got.fleet_shed, want.fleet_shed);
        prop_assert_eq!(rec.resolved_intent, want.in_flight_intent);
    }

    /// A single flipped byte anywhere in the image never panics the
    /// recovery and never yields an inconsistent log.
    #[test]
    fn corrupt_byte_never_breaks_recovery(
        raws in prop::collection::vec(
            (0u8..8, 0u64..1_000_000, 0u64..1_000, 0u64..1_000, 0u64..1_000), 1..10),
        pos_seed in 0usize..100_000,
        mask in 1u8..=255,
    ) {
        let log = log_from(raws);
        let mut image = log.encode();
        let pos = pos_seed % image.len();
        image[pos] ^= mask;
        let rec = DecisionLog::recover(&image, 3);
        prop_assert!(rec.complete <= log.len());
        prop_assert!(rec.log.is_consistent());
    }
}
