//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the minimal serialization machinery the workspace needs: a
//! JSON [`Value`] tree and a [`Serialize`] trait producing it. There is
//! no derive macro — types implement `Serialize::to_value` by hand (the
//! workspace has only a handful of serializable types). `serde_json`
//! (also vendored) renders [`Value`] to text.

use std::collections::{BTreeMap, HashMap};

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integers are kept exact (not routed through f64).
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object constructor preserving insertion order.
    pub fn object(entries: Vec<(String, Value)>) -> Value {
        Value::Object(entries)
    }
}

/// Conversion to a JSON [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}
impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // i128 covers every value this workspace serializes; saturate
        // rather than panic for the pathological remainder.
        Value::Int((*self).min(i128::MAX as u128) as i128)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(42u64.to_value(), Value::Int(42));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(
            Some(1u8).to_value(),
            Value::Int(1)
        );
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            (1u8, "a", 2.0f64).to_value(),
            Value::Array(vec![Value::Int(1), Value::Str("a".into()), Value::Float(2.0)])
        );
    }
}
