//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the minimal serialization machinery the workspace needs: a
//! JSON [`Value`] tree and a [`Serialize`] trait producing it. There is
//! no derive macro — types implement `Serialize::to_value` by hand (the
//! workspace has only a handful of serializable types). `serde_json`
//! (also vendored) renders [`Value`] to text.

use std::collections::{BTreeMap, HashMap};

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integers are kept exact (not routed through f64).
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object constructor preserving insertion order.
    pub fn object(entries: Vec<(String, Value)>) -> Value {
        Value::Object(entries)
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric accessor: integers widen to f64, floats pass through.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str, found: &Value) -> DeError {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }

    pub fn missing(field: &str) -> DeError {
        DeError(format!("missing field `{field}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion from a JSON [`Value`] — the stand-in for serde's
/// `Deserialize` derive (types implement `from_value` by hand).
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Conversion to a JSON [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}
impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // i128 covers every value this workspace serializes; saturate
        // rather than panic for the pathological remainder.
        Value::Int((*self).min(i128::MAX as u128) as i128)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i128().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(i)
                    .map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(42u64.to_value(), Value::Int(42));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(Some(1u8).to_value(), Value::Int(1));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            (1u8, "a", 2.0f64).to_value(),
            Value::Array(vec![
                Value::Int(1),
                Value::Str("a".into()),
                Value::Float(2.0)
            ])
        );
    }

    #[test]
    fn deserialize_primitives() {
        assert_eq!(u64::from_value(&Value::Int(42)), Ok(42));
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert_eq!(f64::from_value(&Value::Int(2)), Ok(2.0));
        assert_eq!(f64::from_value(&Value::Float(2.5)), Ok(2.5));
        assert_eq!(
            String::from_value(&Value::Str("x".into())),
            Ok("x".to_string())
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            Vec::<u32>::from_value(&Value::Array(vec![Value::Int(1), Value::Int(2)])),
            Ok(vec![1, 2])
        );
        assert!(bool::from_value(&Value::Int(1)).is_err());
    }

    #[test]
    fn value_accessors() {
        let obj = Value::object(vec![("k".to_string(), Value::Int(7))]);
        assert_eq!(obj.get("k"), Some(&Value::Int(7)));
        assert_eq!(obj.get("missing"), None);
        assert_eq!(Value::Int(1).get("k"), None);
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
        assert_eq!(Value::Int(3).as_i128(), Some(3));
    }
}
