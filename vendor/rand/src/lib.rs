//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! supplies the (small) subset of the `rand` 0.8 API the workspace uses:
//! a seedable deterministic generator ([`rngs::StdRng`]) plus the
//! [`Rng`]/[`SeedableRng`] traits with `gen`, `gen_bool`, `gen_range`,
//! and `fill_bytes`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high-quality,
//! fast, and fully deterministic across platforms. It is NOT the upstream
//! `StdRng` (ChaCha12), so absolute sampled sequences differ from real
//! `rand`, but every experiment in this repository defines its own seeds
//! and only relies on *reproducibility*, which this crate guarantees.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution in real rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is ~2^-64 for the spans used here.
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u8..=32);
            assert!(w <= 32);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
