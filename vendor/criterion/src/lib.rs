//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion 0.5 API this workspace's benches
//! use — `Criterion`, `BenchmarkGroup`, `Bencher::{iter, iter_batched}`,
//! `BenchmarkId`, `Throughput`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs its closure for roughly
//! `measurement_time` after `warm_up_time` and prints the mean wall-clock
//! time per iteration. No statistical analysis, plots, or baselines.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing driver handed to bench closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// (total elapsed, iterations) recorded by the last routine.
    recorded: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration) -> Self {
        Bencher {
            warm_up,
            measurement,
            recorded: None,
        }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(routine());
        }
        // Measurement: batches of doubling size until the budget is spent.
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut batch: u64 = 1;
        while total < self.measurement {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.recorded = Some((total, iters));
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Setup cost is excluded from the timed section, as in criterion.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let wall = Instant::now();
        // Bound by wall-clock too, so expensive setups cannot run unbounded.
        while total < self.measurement && wall.elapsed() < self.measurement * 4 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.recorded = Some((total, iters.max(1)));
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(name: &str, recorded: Option<(Duration, u64)>, throughput: Option<Throughput>) {
    let Some((total, iters)) = recorded else {
        println!("{name:<40} (no measurement recorded)");
        return;
    };
    let per_iter = total / iters.max(1) as u32;
    let mut line = String::new();
    let _ = write!(
        line,
        "{name:<40} {:>12}/iter  ({iters} iters)",
        format_duration(per_iter)
    );
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    let _ = write!(line, "  {:.2} Melem/s", n as f64 / secs / 1e6);
                }
                Throughput::Bytes(n) => {
                    let _ = write!(line, "  {:.2} MiB/s", n as f64 / secs / (1024.0 * 1024.0));
                }
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    #[allow(dead_code)]
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(500),
            sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Self {
        // Keep runs quick: the stub reports a mean, not a distribution, so
        // scale the requested budget down while preserving relative sizes.
        self.measurement = t / 5;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up = t / 5;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.warm_up, self.measurement);
        f(&mut b);
        report(name, b.recorded, None);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement = t / 5;
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.warm_up, self.criterion.measurement);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.recorded,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.warm_up, self.criterion.measurement);
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.recorded,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

/// Declare a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            sample_size: 10,
        }
    }

    #[test]
    fn iter_records_timing() {
        let mut c = quick();
        let mut group = c.benchmark_group("test");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = quick();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
    }
}
