//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! supplies the subset of proptest's API used by this workspace's
//! property tests: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! `any::<T>()`, numeric-range and tuple strategies,
//! `prop::collection::vec`, `prop::bool::ANY`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug`
//!   where available in the assertion message) and the case seed; re-run
//!   with `PROPTEST_SEED=<seed>` to reproduce.
//! * **Fixed case count** of 32 per test (env `PROPTEST_CASES`
//!   overrides; `#![cases = N]` inside the macro block overrides both).
//! * Generation is uniform, with none of proptest's bias toward edge
//!   values — the tests here are invariant checks, not fuzzers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error type carried by `prop_assert*` failures.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// A value generator. Unlike real proptest there is no value tree and no
/// shrinking: a strategy simply samples a value from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool);

impl<A: Arbitrary, const N: usize> Arbitrary for [A; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        core::array::from_fn(|_| A::arbitrary(rng))
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<A> {
    _marker: core::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for a type: uniform over its value space.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy {
        _marker: core::marker::PhantomData,
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Length spec for [`vec`]: an exact `usize` or a range, mirroring
    /// proptest's `Into<SizeRange>` argument.
    pub trait IntoSizeRange {
        fn into_size_range(self) -> core::ops::Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> core::ops::Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn into_size_range(self) -> core::ops::Range<usize> {
            self
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn into_size_range(self) -> core::ops::Range<usize> {
            *self.start()..*self.end() + 1
        }
    }

    /// `prop::collection::vec(strategy, length)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_size_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Uniform over `{false, true}`.
    pub struct BoolAny;

    /// `prop::bool::ANY`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = ::core::primitive::bool;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            rng.gen()
        }
    }
}

/// The `prop` namespace as tests reference it (`prop::collection::vec`).
pub mod prop {
    pub use super::bool;
    pub use super::collection;
}

pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy,
        TestCaseError,
    };
}

/// Number of cases to run: `PROPTEST_CASES` env or the default.
pub fn default_cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Base seed: `PROPTEST_SEED` env or a fixed default.
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x1e3a_c0de)
}

/// Fresh RNG for one case.
pub fn case_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Generate one value and run the test body on it. Exists as a named fn so
/// the closure's parameter type is pinned to `S::Value` — method calls
/// inside the body then resolve without explicit annotations.
pub fn run_one_case<S, F>(strategy: &S, rng: &mut StdRng, body: F) -> Result<(), TestCaseError>
where
    S: Strategy,
    F: FnOnce(S::Value) -> Result<(), TestCaseError>,
{
    body(strategy.generate(rng))
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// The test-defining macro. Supports the two proptest parameter forms
/// (`pattern in strategy` and `name: Type`, the latter meaning
/// `any::<Type>()`), doc comments and attributes on each test, and an
/// optional leading `#![cases = N]` applying to every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![cases = $cases:expr] $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: usize = $cases;
                $crate::__proptest_case!(@munch [] [] [$($params)*] {cases} $body);
            }
        )+
    };
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: usize = $crate::default_cases();
                $crate::__proptest_case!(@munch [] [] [$($params)*] {cases} $body);
            }
        )+
    };
}

/// Internal: munch the parameter list into (patterns, strategies), then
/// emit the case loop. Patterns are accumulated brace-wrapped so they can
/// be re-expanded.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // `pattern in strategy, rest...`
    (@munch [$($pats:tt)*] [$($strats:tt)*] [$p:pat_param in $s:expr, $($rest:tt)*] {$cases:expr} $body:block) => {
        $crate::__proptest_case!(@munch [$($pats)* {$p}] [$($strats)* {$s}] [$($rest)*] {$cases} $body)
    };
    // `pattern in strategy` (final)
    (@munch [$($pats:tt)*] [$($strats:tt)*] [$p:pat_param in $s:expr] {$cases:expr} $body:block) => {
        $crate::__proptest_case!(@emit [$($pats)* {$p}] [$($strats)* {$s}] {$cases} $body)
    };
    // Trailing comma consumed: parameter list exhausted.
    (@munch [$($pats:tt)*] [$($strats:tt)*] [] {$cases:expr} $body:block) => {
        $crate::__proptest_case!(@emit [$($pats)*] [$($strats)*] {$cases} $body)
    };
    // `name: Type, rest...`
    (@munch [$($pats:tt)*] [$($strats:tt)*] [$p:ident : $t:ty, $($rest:tt)*] {$cases:expr} $body:block) => {
        $crate::__proptest_case!(@munch [$($pats)* {$p}] [$($strats)* {$crate::any::<$t>()}] [$($rest)*] {$cases} $body)
    };
    // `name: Type` (final)
    (@munch [$($pats:tt)*] [$($strats:tt)*] [$p:ident : $t:ty] {$cases:expr} $body:block) => {
        $crate::__proptest_case!(@emit [$($pats)* {$p}] [$($strats)* {$crate::any::<$t>()}] {$cases} $body)
    };
    (@emit [$({$p:pat_param})+] [$({$s:expr})+] {$cases:expr} $body:block) => {{
        let strategy = ($($s,)+);
        let base = $crate::base_seed();
        for case in 0..$cases {
            let seed = base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = $crate::case_rng(seed);
            #[allow(unreachable_code)]
            let result = $crate::run_one_case(&strategy, &mut rng, |($($p,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(e) = result {
                panic!(
                    "proptest case {case} failed (re-run with PROPTEST_SEED={seed}): {}",
                    e.message
                );
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn tuple_and_range_forms(x in 1u32..10, y: u8, v in prop::collection::vec(0i32..5, 0..8)) {
            prop_assert!((1..10).contains(&x));
            let _ = y;
            prop_assert!(v.len() < 8);
            for e in v {
                prop_assert!((0..5).contains(&e), "element {e} out of range");
            }
        }

        #[test]
        fn map_and_bool(b in prop::bool::ANY, z in (0u8..4, 0u8..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(z <= 6);
            prop_assert_eq!(u8::from(b) <= 1, true);
        }
    }

    proptest! {
        #![cases = 3]
        #[test]
        fn case_count_override(x: u64) {
            // Runs exactly 3 times; nothing to assert beyond type checks.
            let _ = x;
        }
    }

    #[test]
    fn deterministic_across_invocations() {
        let mut a = crate::case_rng(42);
        let mut b = crate::case_rng(42);
        let s = crate::prop::collection::vec(crate::any::<u8>(), 0..32);
        assert_eq!(
            crate::Strategy::generate(&s, &mut a),
            crate::Strategy::generate(&s, &mut b)
        );
    }
}
