//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and provides a
//! [`json!`] macro covering the flat object/array literals this workspace
//! uses (values are any `serde::Serialize` expression; nested literals
//! must be built with nested `json!` calls).

pub use serde::{Deserialize, Serialize, Value};

/// Serialization/parse error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert any serializable value to a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON text (two-space indent, like real serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a typed value via its [`Deserialize`] impl.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(b: &[u8], pos: &mut usize, want: u8) -> Result<(), Error> {
    if b.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected `{}` at byte {pos}", want as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".to_string())),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect_byte(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                entries.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect_byte(b, pos, b'"')?;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out)
                    .map_err(|_| Error("invalid UTF-8 in string".to_string()))
            }
            b'\\' => {
                let esc = b
                    .get(*pos)
                    .ok_or_else(|| Error("truncated escape".to_string()))?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".to_string()))?,
                            16,
                        )
                        .map_err(|_| Error("invalid \\u escape".to_string()))?;
                        *pos += 4;
                        let ch = char::from_u32(code)
                            .ok_or_else(|| Error("invalid codepoint".to_string()))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(Error(format!("unknown escape at byte {pos}"))),
                }
            }
            c => out.push(c),
        }
    }
    Err(Error("unterminated string".to_string()))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&b[start..*pos]).map_err(|_| Error("invalid number".to_string()))?;
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    } else {
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Distinguish floats from ints on re-read, like serde_json does.
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; real serde_json errors, we emit null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

/// Build a [`Value`] from a flat literal: `json!({"k": expr, ...})`,
/// `json!([expr, ...])`, or `json!(expr)`. Values are any `Serialize`
/// expression; build nested structures with nested `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$val))),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$elem)),*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_rendering() {
        let v = json!({
            "name": "lemur",
            "rate_gbps": 38.5,
            "stages": 11u32,
            "feasible": true,
            "chains": vec![1u32, 2, 3],
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"lemur\""), "{s}");
        assert!(s.contains("\"rate_gbps\": 38.5"), "{s}");
        assert!(s.contains("\"stages\": 11"), "{s}");
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn compact_and_escapes() {
        let s = to_string(&json!(["a\"b", 1u8])).unwrap();
        assert_eq!(s, "[\"a\\\"b\",1]");
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parse_roundtrip() {
        let v = json!({
            "name": "a\"b",
            "count": 3u32,
            "rate": 1.5f64,
            "flag": true,
            "none": Value::Null,
            "items": vec![1u8, 2, 3],
        });
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value_str(&text).unwrap(), v);
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value_str(&compact).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_value_str("{").is_err());
        assert!(parse_value_str("[1,]").is_err());
        assert!(parse_value_str("12 34").is_err());
        assert!(parse_value_str("\"unterminated").is_err());
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(parse_value_str("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse_value_str("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse_value_str("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn typed_from_str() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(from_str::<Vec<u64>>("[1, -2]").is_err());
    }
}
