//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and provides a
//! [`json!`] macro covering the flat object/array literals this workspace
//! uses (values are any `serde::Serialize` expression; nested literals
//! must be built with nested `json!` calls).

pub use serde::{Serialize, Value};

/// Serialization error. Rendering a [`Value`] cannot fail; the type
/// exists so call sites match the real serde_json signatures.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert any serializable value to a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON text (two-space indent, like real serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Distinguish floats from ints on re-read, like serde_json does.
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; real serde_json errors, we emit null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

/// Build a [`Value`] from a flat literal: `json!({"k": expr, ...})`,
/// `json!([expr, ...])`, or `json!(expr)`. Values are any `Serialize`
/// expression; build nested structures with nested `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$val))),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$elem)),*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_rendering() {
        let v = json!({
            "name": "lemur",
            "rate_gbps": 38.5,
            "stages": 11u32,
            "feasible": true,
            "chains": vec![1u32, 2, 3],
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"lemur\""), "{s}");
        assert!(s.contains("\"rate_gbps\": 38.5"), "{s}");
        assert!(s.contains("\"stages\": 11"), "{s}");
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn compact_and_escapes() {
        let s = to_string(&json!(["a\"b", 1u8])).unwrap();
        assert_eq!(s, "[\"a\\\"b\",1]");
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
