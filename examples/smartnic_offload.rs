//! SmartNIC offload scenario (the paper's §5.3 / Figure 3b): Chain 5's
//! ChaCha encryption moves from server cores to an eBPF program on a 40 G
//! Netronome-class NIC, and the placement difference shows up directly in
//! achievable rate. Also dumps the generated (and verifier-checked) eBPF
//! program.
//!
//! ```sh
//! cargo run --release --example smartnic_offload
//! ```

use lemur::core::chains::{canonical_chain, CanonicalChain};
use lemur::core::graph::ChainSpec;
use lemur::core::Slo;
use lemur::placer::placement::PlacementProblem;
use lemur::placer::profiles::NfProfiles;
use lemur::placer::profiles::Platform;
use lemur::placer::topology::{SmartNicSpec, Topology};

fn build_problem(with_nic: bool) -> PlacementProblem {
    let mut topology = Topology::with_servers(1); // a single 8-core box
    if with_nic {
        topology.smartnics.push(SmartNicSpec::agilio_cx_40g(0));
    }
    let mut p = PlacementProblem::new(
        vec![ChainSpec {
            name: "chain5".into(),
            graph: canonical_chain(CanonicalChain::Chain5),
            slo: None,
            aggregate: None,
        }],
        topology,
        NfProfiles::table4(),
    );
    let base = p.base_rate_bps(0);
    p.chains[0].slo = Some(Slo::elastic_pipe(base, 100e9));
    p
}

fn main() {
    let oracle = lemur::metacompiler::CompilerOracle::new();

    for with_nic in [false, true] {
        let p = build_problem(with_nic);
        println!(
            "\n=== {} ===",
            if with_nic {
                "with 40G SmartNIC"
            } else {
                "server only"
            }
        );
        match lemur::placer::heuristic::place(&p, &oracle) {
            Ok(e) => {
                for (id, n) in p.chains[0].graph.nodes() {
                    println!("  {:<12} -> {:?}", n.name, e.assignment[0][&id]);
                }
                println!("  predicted rate: {:.2} Gbps", e.chain_rates_bps[0] / 1e9);
                let offloaded = p.chains[0]
                    .graph
                    .nodes()
                    .any(|(id, _)| matches!(e.assignment[0][&id], Platform::SmartNic(_)));
                if offloaded {
                    // Show the generated eBPF program that would be loaded
                    // onto the NIC (it has already passed the verifier with
                    // its 512 B stack / 4096-insn / no-back-edge limits).
                    let dep = lemur::metacompiler::compile(&p, &e).expect("codegen");
                    let prog = &dep.ebpf[0];
                    println!(
                        "  generated eBPF: {} instructions, handles {:?}",
                        prog.program.len(),
                        prog.handled
                    );
                    let listing = prog.program.disassemble();
                    for line in listing.lines().take(12) {
                        println!("    {line}");
                    }
                    println!(
                        "    ... ({} more lines)",
                        listing.lines().count().saturating_sub(12)
                    );
                }
            }
            Err(err) => println!("  infeasible: {err}"),
        }
    }
    println!(
        "\nPaper shape (§5.3): the eBPF ChaCha is >10x faster than the server \
         implementation, so the NIC placement approaches the 40 G line rate \
         while the server-only placement saturates its cores first."
    );
}
