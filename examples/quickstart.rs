//! Quickstart: specify a chain, place it, meta-compile it, and run traffic
//! through the simulated testbed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lemur::core::spec::parse_spec;
use lemur::dataplane::{SimConfig, Testbed, TrafficSpec};
use lemur::metacompiler::CompilerOracle;
use lemur::placer::placement::PlacementProblem;
use lemur::placer::profiles::NfProfiles;
use lemur::placer::topology::Topology;

fn main() {
    // 1. Specify an NF chain with its SLO in the dataflow language (§2).
    //    The operator says *what* to run, never *where*.
    let spec = parse_spec(
        "
        # Residential customer aggregate: filter, encrypt, forward.
        c1 = ACL(rules=[{'dst_ip': '10.0.0.0/8', 'drop': False}]) -> Encrypt -> IPv4Fwd
        slo(c1, t_min='2G', t_max='100G')
        aggregate(c1, src='10.1.0.0/16')
        ",
    )
    .expect("spec parses");
    println!("parsed {} chain(s)", spec.chains.len());

    // 2. Build the placement problem: the rack topology (PISA ToR + one
    //    dual-socket server) and the Table 4 cycle-cost profiles.
    let problem = PlacementProblem::new(spec.chains, Topology::testbed(), NfProfiles::table4());
    println!(
        "chain base rate: {:.2} Gbps",
        problem.base_rate_bps(0) / 1e9
    );

    // 3. Run Lemur's placement heuristic. Stage feasibility is checked by
    //    actually synthesizing the P4 program and invoking the stage-packing
    //    compiler (§3.2).
    let oracle = CompilerOracle::new();
    let placement = lemur::placer::heuristic::place(&problem, &oracle).expect("feasible");
    println!(
        "placement: predicted {:.2} Gbps, {} switch stages, {} server subgroup(s)",
        placement.aggregate_bps / 1e9,
        placement.stages_used.unwrap_or(0),
        placement.subgroups.len()
    );
    for sg in &placement.subgroups {
        let names: Vec<&str> = sg
            .nodes
            .iter()
            .map(|id| problem.chains[sg.chain].graph.node(*id).name.as_str())
            .collect();
        println!(
            "  subgroup [{}] on server {} with {} core(s)",
            names.join(" -> "),
            sg.server,
            sg.cores
        );
    }

    // 4. Meta-compile: P4 for the ToR, a BESS pipeline for the server.
    let deployment = lemur::metacompiler::compile(&problem, &placement).expect("codegen");
    println!(
        "meta-compiler emitted {} P4 lines ({} steering) and {} BESS lines",
        deployment.stats.p4_generated,
        deployment.stats.p4_steering,
        deployment.stats.bess_generated
    );

    // 5. Execute on the simulated testbed and check the SLO held.
    let mut testbed = Testbed::build(&problem, &placement, deployment).expect("testbed");
    let mut traffic = TrafficSpec::for_chain(1, placement.chain_rates_bps[0] * 1.1)
        .expect("chain index in range");
    traffic.src_prefix = "10.1.0.0/16".parse().unwrap();
    let report = testbed.run(&[traffic], SimConfig::default());
    let c = &report.per_chain[0];
    println!(
        "measured: {:.2} Gbps ({} packets, {} drops, mean latency {:.1} us)",
        c.delivered_bps / 1e9,
        c.delivered_packets,
        c.dropped_packets,
        c.mean_latency_ns / 1e3
    );
    assert!(
        c.delivered_bps >= 2e9 * 0.95,
        "t_min SLO must hold on the measured dataplane"
    );
    println!("SLO satisfied: measured >= t_min (2 Gbps)");
}
