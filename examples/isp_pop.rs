//! ISP point-of-presence scenario: the paper's intro use case, then the
//! repo's multi-PoP extension of it.
//!
//! **Act 1 — one PoP.** Four customer aggregates share one rack (PISA
//! ToR + a 16-core server), each processed by one of the Table 2
//! canonical chains with a different Table 1 SLO class — a virtual pipe,
//! two elastic pipes, and metered bulk. Lemur places all four, and the
//! run shows where every NF landed, how cores were split, and that every
//! contracted minimum held on the executed dataplane.
//!
//! **Act 2 — two PoPs, one storm.** The same operator runs two such
//! PoPs under a global coordinator talking over a lossy control channel.
//! A scheduled blackout silences one PoP completely; the coordinator
//! walks it down the Suspect → Unreachable → Drained ladder (waiting out
//! the lease bound so no stale heartbeat can revive it), then fails its
//! chains over to the survivor — stateful NATs restored from replicated
//! snapshots under fresh fencing tokens, everything else re-placed or
//! shed by SLO priority. The run ends settled, with exact packet and
//! channel conservation and zero fencing violations.
//!
//! ```sh
//! cargo run --release --example isp_pop
//! ```

use lemur::core::chains::{canonical_chain, CanonicalChain};
use lemur::core::graph::ChainSpec;
use lemur::core::Slo;
use lemur::dataplane::{SimConfig, Testbed, TrafficSpec};
use lemur::fleet::sim::{FleetSim, FleetSimConfig, FleetSpec};
use lemur::placer::placement::PlacementProblem;
use lemur::placer::profiles::{NfProfiles, Platform};
use lemur::placer::topology::Topology;

fn main() {
    one_pop_slo_book();
    two_pop_drain_and_failover();
}

/// Act 1: the paper's single-rack scenario, end to end.
fn one_pop_slo_book() {
    // Customer SLO book: (chain, SLO class).
    let customers: Vec<(CanonicalChain, &str)> = vec![
        (CanonicalChain::Chain1, "enterprise elastic pipe"),
        (CanonicalChain::Chain2, "VPN virtual pipe"),
        (CanonicalChain::Chain3, "WAN-optimized elastic pipe"),
        (CanonicalChain::Chain4, "residential metered bulk"),
    ];

    let mut specs = Vec::new();
    let chains: Vec<ChainSpec> = customers
        .iter()
        .enumerate()
        .map(|(i, (which, _))| {
            let traffic = TrafficSpec::for_chain(i + 1, 1e9).expect("chain index in range");
            let aggregate = traffic.aggregate();
            specs.push(traffic);
            ChainSpec {
                name: format!("customer{}", i + 1),
                graph: canonical_chain(*which),
                slo: None,
                aggregate: Some(aggregate),
            }
        })
        .collect();
    let mut problem = PlacementProblem::new(chains, Topology::testbed(), NfProfiles::table4());

    // Assign SLOs from each chain's base rate (§5.1's δ methodology).
    for (i, (_, cname)) in customers.iter().enumerate().take(problem.chains.len()) {
        let base = problem.base_rate_bps(i);
        problem.chains[i].slo = Some(match i {
            0 => Slo::elastic_pipe(base, 100e9),
            1 => Slo::virtual_pipe((2.0 * base).min(10e9)),
            2 => Slo::elastic_pipe(0.5 * base, 100e9),
            _ => Slo::metered_bulk(20e9),
        });
        println!(
            "customer {} ({}): base {:.2} G, SLO {}",
            i + 1,
            cname,
            base / 1e9,
            problem.chains[i].slo.unwrap()
        );
    }

    // Place with the real compiler oracle.
    let oracle = lemur::metacompiler::CompilerOracle::new();
    let placement = lemur::placer::heuristic::place(&problem, &oracle).expect("feasible");
    println!(
        "\nplacement found: predicted aggregate {:.2} G over {} stages",
        placement.aggregate_bps / 1e9,
        placement.stages_used.unwrap_or(0)
    );
    for (ci, chain) in problem.chains.iter().enumerate() {
        let mut on_switch = Vec::new();
        let mut on_server = Vec::new();
        for (id, n) in chain.graph.nodes() {
            match placement.assignment[ci][&id] {
                Platform::Pisa => on_switch.push(n.name.clone()),
                Platform::Server(_) => on_server.push(n.name.clone()),
                other => on_server.push(format!("{}@{other:?}", n.name)),
            }
        }
        println!(
            "  customer {}: switch[{}] server[{}] predicted {:.2} G (bounces {:.1})",
            ci + 1,
            on_switch.join(","),
            on_server.join(","),
            placement.chain_rates_bps[ci] / 1e9,
            placement.bounces[ci]
        );
    }

    // Meta-compile and execute.
    let deployment = lemur::metacompiler::compile(&problem, &placement).expect("codegen");
    let mut testbed = Testbed::build(&problem, &placement, deployment).expect("testbed");
    for (i, s) in specs.iter_mut().enumerate() {
        s.offered_bps = (placement.chain_rates_bps[i] * 1.1).max(1e8);
    }
    let report = testbed.run(
        &specs,
        SimConfig {
            duration_s: 0.02,
            ..SimConfig::default()
        },
    );

    println!("\nmeasured on the executed dataplane:");
    let mut all_met = true;
    for (i, c) in report.per_chain.iter().enumerate() {
        let slo = problem.chains[i].slo.unwrap();
        let met = slo.satisfied_by(c.delivered_bps * 1.02);
        all_met &= met;
        println!(
            "  customer {}: {:.2} G delivered, marginal {:.2} G, latency {:.0} us — SLO {}",
            i + 1,
            c.delivered_bps / 1e9,
            slo.marginal_bps(c.delivered_bps) / 1e9,
            c.mean_latency_ns / 1e3,
            if met { "MET" } else { "VIOLATED" }
        );
    }
    println!(
        "\naggregate {:.2} G; every contracted minimum {}",
        report.aggregate_bps() / 1e9,
        if all_met { "held" } else { "DID NOT hold" }
    );
}

/// Act 2: two PoPs under one coordinator; a blackout drains PoP 0 and
/// its chains — stateful NAT tables included — fail over to PoP 1.
fn two_pop_drain_and_failover() {
    // Seed 3's storm schedule blacks out PoP 0 mid-run (and crashes the
    // coordinator with a torn journal tail for good measure); the whole
    // run is deterministic, so the narration below is reproducible.
    let spec = FleetSpec::canonical(2);
    let cfg = FleetSimConfig::soak(3, 2);
    println!("\n=== two PoPs, one storm (seed {}) ===", cfg.seed);
    println!(
        "{} chains across 2 PoPs, {} ms of storm weather on the control channel",
        spec.chains.len(),
        cfg.duration_ns / 1_000_000
    );

    let oracle = lemur::metacompiler::CompilerOracle::new();
    let report = FleetSim::new(spec, cfg).run(&oracle);

    if let Some(victim) = report.blackout_victim {
        println!(
            "blackout silenced PoP {victim}: {} drain(s) after the lease bound expired, \
             {} coordinator crash-recovery(ies) along the way",
            report.drains, report.coordinator_recoveries
        );
    }
    println!(
        "failover: {} chain(s) re-homed ({} stateful, {} NAT table(s) restored \
         from replicated snapshots), {} shed",
        report.failovers, report.state_failovers, report.state_restores, report.sheds
    );
    for &(chain, pop, token) in &report.final_owners {
        println!(
            "  chain {chain} -> PoP {pop} (fencing token epoch {})",
            token >> 40
        );
    }
    println!(
        "fencing violations: {}; packet ledger {}; channel copy ledger {}; \
         journals replay to live state: {}",
        report.fencing_events,
        if report.conservation_ok {
            "balanced"
        } else {
            "UNBALANCED"
        },
        if report.channel_conserved {
            "balanced"
        } else {
            "UNBALANCED"
        },
        report.wal_consistent
    );
    for v in &report.validations {
        println!(
            "  PoP {} post-storm dataplane validation: ran={} settled={} balanced={}",
            v.pop, v.ran, v.settled, v.balanced
        );
    }
    assert!(report.invariants_hold(), "fleet invariants must hold");
    println!(
        "run {}; all four fleet invariants held",
        if report.settled {
            "settled"
        } else {
            "DID NOT settle"
        }
    );
}
