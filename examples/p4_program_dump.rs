//! Inspect the meta-compiler's P4 synthesis: parser-tree unification
//! (§A.2.1), the DAG→tree conversion with exclusive branches (§A.2.2), and
//! the stage packing the platform compiler produces. Prints the generated
//! P4-like source and the per-stage table layout for Chain 2 under an
//! HW-preferred placement.
//!
//! ```sh
//! cargo run --release --example p4_program_dump
//! ```

use lemur::core::chains::{canonical_chain, CanonicalChain};
use lemur::core::graph::ChainSpec;
use lemur::core::Slo;
use lemur::metacompiler::{p4gen, routing};
use lemur::p4sim::compiler::{compile, CompileOptions};
use lemur::placer::corealloc::CoreStrategy;
use lemur::placer::placement::PlacementProblem;
use lemur::placer::profiles::NfProfiles;
use lemur::placer::topology::Topology;

fn main() {
    let mut p = PlacementProblem::new(
        vec![ChainSpec {
            name: "chain2".into(),
            graph: canonical_chain(CanonicalChain::Chain2),
            slo: None,
            aggregate: None,
        }],
        Topology::testbed(),
        NfProfiles::table4(),
    );
    let base = p.base_rate_bps(0);
    p.chains[0].slo = Some(Slo::elastic_pipe(0.5 * base, 100e9));

    let assignment = lemur::placer::baselines::hw_preferred_assignment(&p);
    let _eval = p
        .evaluate(&assignment, CoreStrategy::WaterFill)
        .expect("feasible");
    let plan = routing::plan(&p, &assignment);

    println!("=== service paths (NSH SPI/SI assignment) ===");
    for path in &plan.paths {
        let segs: Vec<String> = path
            .segments
            .iter()
            .map(|s| {
                let names: Vec<&str> = s
                    .nodes
                    .iter()
                    .map(|id| p.chains[0].graph.node(*id).name.as_str())
                    .collect();
                format!("{:?}@si{}[{}]", s.location, s.si, names.join(","))
            })
            .collect();
        println!(
            "  spi={} weight={:.2}: {}",
            path.spi,
            path.weight,
            segs.join(" -> ")
        );
    }

    let synth = p4gen::synthesize(&p, &assignment, &plan, p4gen::P4GenOptions::default())
        .expect("synthesis");

    println!("\n=== unified parser (merged from NF-local trees, §A.2.1) ===");
    print!("{}", synth.parser.to_p4_source());

    println!(
        "=== generated P4 source ({} lines, {} steering) ===",
        synth.source.lines().count(),
        synth.steering_lines
    );
    for line in synth.source.lines().take(40) {
        println!("{line}");
    }
    println!("... (truncated; full source in SynthesizedP4::source)");

    println!("\n=== stage packing ===");
    let model = *p.topology.pisa().unwrap();
    let out = compile(&synth.program, &model, CompileOptions::default()).expect("fits");
    println!(
        "{} stages used of {}",
        out.num_stages_used, model.num_stages
    );
    for (s, tables) in out.stages.iter().enumerate() {
        let names: Vec<&str> = tables
            .iter()
            .map(|t| synth.program.table(*t).name.as_str())
            .collect();
        println!("  stage {s:>2}: {}", names.join(", "));
    }
    println!(
        "\nExclusive NAT branches share stages — the §4.2 optimization (d) \
         that lets 10 parallel NATs fit where naive generation needs ~2x \
         the stages (run exp_stages for the full experiment)."
    );
}
